//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses: `StdRng::seed_from_u64`,
//! `Rng::gen`, and `Rng::gen_range` over integer and float ranges. The
//! generator is xoshiro256** seeded through splitmix64 — deterministic
//! across platforms, which the simulator's reproducibility tests rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their full domain.
pub trait Standard: Sized {
    /// Draws one uniformly-distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A half-open or inclusive range a value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges,
    /// matching upstream `rand`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level sampling methods, automatically available on any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly-distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the workspace's deterministic standard generator.
    ///
    /// Upstream `StdRng` is ChaCha-based; determinism across *versions* is
    /// not part of upstream's contract, so swapping the algorithm is safe
    /// as long as it is deterministic for a fixed seed, which this is.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same algorithm here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5usize..=8);
            assert!((5..=8).contains(&w));
            let f = r.gen_range(1e-6..1.0);
            assert!((1e-6..1.0).contains(&f));
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
