//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std synchronization primitives with parking_lot's
//! poison-free API: `lock()` returns a guard directly instead of a
//! `Result`, recovering the inner state if a previous holder panicked.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock whose `lock` never returns an error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock whose acquisition methods never return errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable working with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks on the guard until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_mut_guard(&mut guard.inner, |g| {
            self.inner.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks with a timeout; returns true when the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let mut timed_out = false;
        take_mut_guard(&mut guard.inner, |g| {
            let (g, r) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = r.timed_out();
            g
        });
        timed_out
    }
}

/// Replaces a guard in place through a closure that consumes and returns
/// it (std's condvar API consumes the guard; parking_lot's borrows it).
fn take_mut_guard<'a, T: ?Sized, F>(slot: &mut std::sync::MutexGuard<'a, T>, f: F)
where
    F: FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
{
    // SAFETY: `slot` is forgotten before being overwritten, and `f` always
    // returns a valid guard for the same mutex, so the slot is never read
    // in an invalid state and exactly one guard exists throughout.
    unsafe {
        let guard = std::ptr::read(slot);
        let new_guard = f(guard);
        std::ptr::write(slot, new_guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().unwrap();
    }
}
