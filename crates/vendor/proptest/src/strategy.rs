//! Strategy trait and combinators for the proptest stand-in.

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: `generate`
/// directly produces a value.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Retries until `f` accepts the value (bounded; panics if the filter
    /// rejects too often, mirroring upstream's rejection limit).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.whence);
    }
}

macro_rules! full_and_range_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range(self.clone())
            }
        }
    )*};
}

full_and_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `any::<int>()` — full domain from raw bits.
pub struct FullInt<T>(pub PhantomData<T>);

macro_rules! full_int_impl {
    ($($t:ty),*) => {$(
        impl Strategy for FullInt<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

full_int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `any::<bool>()`.
pub struct FullBool;

impl Strategy for FullBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// `any::<[u8; N]>()`.
pub struct FullByteArray<const N: usize>;

impl<const N: usize> Strategy for FullByteArray<N> {
    type Value = [u8; N];
    fn generate(&self, rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// Length specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Exclusive upper bound.
    pub max_excl: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max_excl: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_excl: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_excl: n + 1,
        }
    }
}

/// See [`crate::prop::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.max_excl > self.size.min {
            rng.range(self.size.min..self.size.max_excl)
        } else {
            self.size.min
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` of strategies acts as a strategy for a `Vec` of values
/// (upstream-compatible; used to build heterogeneous-length records).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// See [`crate::prop::sample::select`].
pub struct Select<T: Clone> {
    pub(crate) values: Vec<T>,
}

impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.values[rng.index(self.values.len())].clone()
    }
}

/// See [`crate::prop::option::of`].
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Upstream defaults to Some with probability 3/4.
        if rng.unit_f64() < 0.25 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! requires at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.index(self.options.len())].generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// A string literal is a strategy generating strings matching a small
/// regex subset: atoms are character classes `[a-z0-9 ]`, the escape
/// `\PC` (any printable character), or literal characters; each atom may
/// carry a `{m,n}`, `{n}`, `?`, `*`, or `+` quantifier.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (atom, min, max) in &atoms {
            let n = if max > min {
                rng.range(*min..=*max)
            } else {
                *min
            };
            for _ in 0..n {
                atom.push_char(rng, &mut out);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

enum Atom {
    /// Explicit candidate characters.
    Class(Vec<char>),
    /// Any printable (non-control) character, `\PC`.
    Printable,
    /// A fixed character.
    Literal(char),
}

impl Atom {
    fn push_char(&self, rng: &mut TestRng, out: &mut String) {
        match self {
            Atom::Class(chars) => out.push(chars[rng.index(chars.len())]),
            Atom::Literal(c) => out.push(*c),
            Atom::Printable => {
                // Mostly printable ASCII, sometimes wider Unicode — the
                // decoder-robustness tests want multi-byte sequences too.
                if rng.unit_f64() < 0.9 {
                    out.push(rng.range(0x20u32..0x7F) as u8 as char);
                } else {
                    loop {
                        let cp = rng.range(0xA0u32..0x3000);
                        if let Some(c) = char::from_u32(cp) {
                            if !c.is_control() {
                                out.push(c);
                                break;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Parses the supported regex subset into (atom, min, max) repetitions.
fn parse_pattern(pat: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut class = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                        for cp in lo..=hi {
                            if let Some(c) = char::from_u32(cp) {
                                class.push(c);
                            }
                        }
                        i += 3;
                    } else {
                        class.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                assert!(!class.is_empty(), "empty character class in {pat:?}");
                Atom::Class(class)
            }
            '\\' => {
                // Only `\PC` (printable) is recognized; any other escape
                // falls back to the escaped literal character.
                if i + 2 < chars.len() && chars[i + 1] == 'P' && chars[i + 2] == 'C' {
                    i += 3;
                    Atom::Printable
                } else if i + 1 < chars.len() {
                    let c = chars[i + 1];
                    i += 2;
                    Atom::Literal(c)
                } else {
                    i += 1;
                    Atom::Literal('\\')
                }
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unterminated {{}} in {pat:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad {m,n} lower bound"),
                            hi.trim().parse().expect("bad {m,n} upper bound"),
                        ),
                        None => {
                            let n: usize = body.trim().parse().expect("bad {n} count");
                            (n, n)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        out.push((atom, min, max));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestRng;

    #[test]
    fn string_pattern_lengths() {
        let mut rng = TestRng::deterministic("string_pattern_lengths");
        for _ in 0..200 {
            let s = "[a-zA-Z0-9]{0,16}".generate(&mut rng);
            assert!(s.len() <= 16);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
            let p = "\\PC{0,200}".generate(&mut rng);
            assert!(p.chars().count() <= 200);
            assert!(p.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::deterministic("ranges_and_tuples");
        let strat = (
            0u32..=2,
            5u64..10,
            crate::prop::collection::vec(0u8..4, 1..5),
        );
        for _ in 0..100 {
            let (a, b, v) = strat.generate(&mut rng);
            assert!(a <= 2);
            assert!((5..10).contains(&b));
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn oneof_and_select() {
        let mut rng = TestRng::deterministic("oneof_and_select");
        let s = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
        let sel = crate::prop::sample::select(vec!["a", "b"]);
        for _ in 0..10 {
            let v = sel.generate(&mut rng);
            assert!(v == "a" || v == "b");
        }
    }
}
