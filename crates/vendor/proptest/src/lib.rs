//! Offline stand-in for `proptest`.
//!
//! Supports the strategy combinators and macros this workspace's property
//! tests use: integer/float range strategies, `any::<T>()`, `Just`,
//! tuples, `Vec<Strategy>`, `prop::collection::vec`, `prop::sample::select`,
//! `prop::option::of`, regex-subset string strategies, `prop_map`,
//! `prop_flat_map`, `prop_oneof!`, and the `proptest! { ... }` test macro
//! with `#![proptest_config(...)]`.
//!
//! Differences from upstream: inputs are generated from a seed derived
//! deterministically from the test name (reproducible runs, no
//! `PROPTEST_CASES` env handling), and failing cases are **not shrunk** —
//! the failing input is printed as-is by the panic message.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod strategy;
pub use strategy::{Just, Strategy};

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; that is also fast enough here.
            Config { cases: 256 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// The deterministic generator threaded through strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds from a test-identifying string (typically the test name), so
    /// every run of the same test explores the same inputs.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from an integer/float range.
    pub fn range<T, S: rand::SampleRange<T>>(&mut self, r: S) -> T {
        self.inner.gen_range(r)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Uniform index below `n` (n > 0).
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// The `prop::` namespace of strategy factories.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{SizeRange, Strategy, VecStrategy};

        /// A vector whose length is drawn from `size` and whose elements
        /// come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Sampling from explicit value lists.
    pub mod sample {
        use crate::strategy::Select;

        /// Uniformly selects one of the given values.
        pub fn select<T: Clone + std::fmt::Debug>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select requires at least one value");
            Select { values }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::strategy::{OptionStrategy, Strategy};

        /// `None` a quarter of the time, `Some(inner)` otherwise
        /// (matching upstream's default Some-bias).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }

    /// Numeric strategy namespace (ranges implement `Strategy` directly).
    pub mod num {}
}

/// `any::<T>()` — the full domain of `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Strategy type produced by [`Arbitrary::arbitrary`].
    type Strategy: Strategy<Value = Self>;
    /// The full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = strategy::FullInt<$t>;
            fn arbitrary() -> Self::Strategy {
                strategy::FullInt(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = strategy::FullBool;
    fn arbitrary() -> Self::Strategy {
        strategy::FullBool
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    type Strategy = strategy::FullByteArray<N>;
    fn arbitrary() -> Self::Strategy {
        strategy::FullByteArray
    }
}

/// Everything a property-test module typically imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Arbitrary, ProptestConfig, TestRng};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@inner $cfg; $($rest)*);
    };
    (@inner $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                    { $body }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@inner $crate::ProptestConfig::default(); $($rest)*);
    };
}
