//! Property tests: the writer and parser are mutual inverses over
//! arbitrary well-formed specification models.

use netqos_spec::ast::*;
use netqos_spec::{parse, write_spec};
use netqos_topology::NodeKind;
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = NodeKind> {
    prop::sample::select(vec![
        NodeKind::Host,
        NodeKind::Switch,
        NodeKind::Hub,
        NodeKind::Router,
    ])
}

fn arb_speed() -> impl Strategy<Value = u64> {
    prop::sample::select(vec![
        10_000u64,
        1_000_000,
        10_000_000,
        100_000_000,
        1_000_000_000,
        1234,
    ])
}

fn arb_interface(ix: usize) -> impl Strategy<Value = InterfaceDecl> {
    prop::option::of(arb_speed()).prop_map(move |speed_bps| InterfaceDecl {
        local_name: format!("if{ix}"),
        speed_bps,
        span: Default::default(),
    })
}

fn arb_node(ix: usize) -> impl Strategy<Value = NodeDecl> {
    (
        arb_kind(),
        prop::option::of("[a-zA-Z ]{1,12}"),
        prop::option::of((0u8..255, 0u8..255).prop_map(|(a, b)| format!("10.{a}.{b}.1"))),
        prop::option::of("[a-z]{1,8}"),
        prop::option::of(arb_speed()),
        prop::collection::vec(Just(()), 0..4),
    )
        .prop_flat_map(move |(kind, os, address, community, default_speed, ifs)| {
            let n = ifs.len();
            (0..n)
                .map(arb_interface)
                .collect::<Vec<_>>()
                .prop_map(move |interfaces| NodeDecl {
                    name: format!("n{ix}"),
                    kind,
                    os: os.clone(),
                    address: address.clone(),
                    snmp_community: community.clone(),
                    default_speed,
                    interfaces,
                    span: Default::default(),
                })
        })
}

fn arb_spec() -> impl Strategy<Value = SpecFile> {
    prop::collection::vec(Just(()), 1..5).prop_flat_map(|nodes| {
        let n = nodes.len();
        (0..n)
            .map(arb_node)
            .collect::<Vec<_>>()
            .prop_map(|nodes| SpecFile {
                nodes,
                connections: Vec::new(),
                applications: Vec::new(),
                qos_paths: Vec::new(),
            })
    })
}

fn semantically_equal(a: &SpecFile, b: &SpecFile) -> bool {
    if a.nodes.len() != b.nodes.len() {
        return false;
    }
    a.nodes.iter().zip(&b.nodes).all(|(x, y)| {
        x.name == y.name
            && x.kind == y.kind
            && x.os == y.os
            && x.address == y.address
            && x.snmp_community == y.snmp_community
            && x.default_speed == y.default_speed
            && x.interfaces
                .iter()
                .map(|i| (&i.local_name, i.speed_bps))
                .eq(y.interfaces.iter().map(|i| (&i.local_name, i.speed_bps)))
    })
}

proptest! {
    /// write → parse recovers the same model.
    #[test]
    fn write_parse_identity(spec in arb_spec()) {
        let text = write_spec(&spec);
        let back = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        prop_assert!(semantically_equal(&spec, &back), "mismatch:\n{text}");
    }

    /// write is idempotent modulo parse: writing the reparsed AST yields
    /// identical text.
    #[test]
    fn write_is_canonical(spec in arb_spec()) {
        let t1 = write_spec(&spec);
        let back = parse(&t1).unwrap();
        let t2 = write_spec(&back);
        prop_assert_eq!(t1, t2);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(src in "\\PC{0,200}") {
        let _ = parse(&src);
    }
}
