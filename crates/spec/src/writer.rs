//! Pretty-printer: turns an AST back into canonical specification text.
//!
//! `parse(write_spec(parse(src)))` is identical to `parse(src)` (asserted
//! by property tests), so the writer can be used to normalize hand-written
//! files and to persist programmatically built topologies.

use crate::ast::*;

fn fmt_bandwidth(bps: u64) -> String {
    if bps >= 1_000_000_000 && bps.is_multiple_of(1_000_000_000) {
        format!("{}Gbps", bps / 1_000_000_000)
    } else if bps >= 1_000_000 && bps.is_multiple_of(1_000_000) {
        format!("{}Mbps", bps / 1_000_000)
    } else if bps >= 1_000 && bps.is_multiple_of(1_000) {
        format!("{}Kbps", bps / 1_000)
    } else {
        format!("{bps}bps")
    }
}

/// Renders a specification file as canonical text.
pub fn write_spec(file: &SpecFile) -> String {
    let mut out = String::new();
    for node in &file.nodes {
        let header = match node.kind {
            netqos_topology::NodeKind::Host => format!("host {}", node.name),
            kind => format!("device {} {}", node.name, kind.name()),
        };
        out.push_str(&header);
        out.push_str(" {\n");
        if let Some(os) = &node.os {
            out.push_str(&format!("    os \"{os}\";\n"));
        }
        if let Some(addr) = &node.address {
            out.push_str(&format!("    address {addr};\n"));
        }
        if let Some(c) = &node.snmp_community {
            out.push_str(&format!("    snmp community \"{c}\";\n"));
        }
        if let Some(s) = node.default_speed {
            out.push_str(&format!("    speed {};\n", fmt_bandwidth(s)));
        }
        for iface in &node.interfaces {
            match iface.speed_bps {
                Some(s) => out.push_str(&format!(
                    "    interface {} {{ speed {}; }}\n",
                    iface.local_name,
                    fmt_bandwidth(s)
                )),
                None => out.push_str(&format!("    interface {};\n", iface.local_name)),
            }
        }
        out.push_str("}\n\n");
    }
    for c in &file.connections {
        out.push_str(&format!("connection {} <-> {};\n", c.a, c.b));
    }
    if !file.connections.is_empty() && !file.applications.is_empty() {
        out.push('\n');
    }
    for a in &file.applications {
        if a.pinned {
            out.push_str(&format!(
                "application {} on {} {{ pinned; }}\n",
                a.name, a.host
            ));
        } else {
            out.push_str(&format!("application {} on {};\n", a.name, a.host));
        }
    }
    if !file.connections.is_empty() && !file.qos_paths.is_empty() {
        out.push('\n');
    }
    for q in &file.qos_paths {
        out.push_str(&format!(
            "qospath {} from {} to {} {{\n",
            q.name, q.from, q.to
        ));
        if let Some(v) = q.min_available_bps {
            out.push_str(&format!("    min_available {};\n", fmt_bandwidth(v)));
        }
        if let Some(u) = q.max_utilization {
            out.push_str(&format!("    max_utilization {}%;\n", u * 100.0));
        }
        if let Some(app) = &q.application {
            out.push_str(&format!("    application {app};\n"));
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use netqos_topology::NodeKind;

    #[test]
    fn bandwidth_formatting() {
        assert_eq!(fmt_bandwidth(100_000_000), "100Mbps");
        assert_eq!(fmt_bandwidth(10_000), "10Kbps");
        assert_eq!(fmt_bandwidth(2_000_000_000), "2Gbps");
        assert_eq!(fmt_bandwidth(1234), "1234bps");
    }

    #[test]
    fn round_trip_sample() {
        let src = r#"
            host L {
                os "Linux";
                address 10.0.0.1;
                snmp community "public";
                interface eth0 { speed 100Mbps; }
            }
            device hubby hub { speed 10Mbps; interface h1; interface h2; }
            connection L.eth0 <-> hubby.h1;
            qospath t from L to L { min_available 1Mbps; max_utilization 75%; }
        "#;
        let ast1 = parse(src).unwrap();
        let text = write_spec(&ast1);
        let ast2 = parse(&text).unwrap();
        // Spans differ; compare the semantic content.
        assert_eq!(ast1.nodes.len(), ast2.nodes.len());
        for (a, b) in ast1.nodes.iter().zip(&ast2.nodes) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.os, b.os);
            assert_eq!(a.address, b.address);
            assert_eq!(a.snmp_community, b.snmp_community);
            assert_eq!(a.default_speed, b.default_speed);
            assert_eq!(
                a.interfaces
                    .iter()
                    .map(|i| (&i.local_name, i.speed_bps))
                    .collect::<Vec<_>>(),
                b.interfaces
                    .iter()
                    .map(|i| (&i.local_name, i.speed_bps))
                    .collect::<Vec<_>>()
            );
        }
        assert_eq!(ast1.connections[0].a, ast2.connections[0].a);
        assert_eq!(
            ast1.qos_paths[0].min_available_bps,
            ast2.qos_paths[0].min_available_bps
        );
        assert_eq!(
            ast1.qos_paths[0].max_utilization,
            ast2.qos_paths[0].max_utilization
        );
    }

    #[test]
    fn writes_device_kinds() {
        let mut f = SpecFile::default();
        f.nodes.push(NodeDecl::new("s", NodeKind::Switch));
        f.nodes.push(NodeDecl::new("h", NodeKind::Hub));
        let text = write_spec(&f);
        assert!(text.contains("device s switch"));
        assert!(text.contains("device h hub"));
    }
}
