//! # netqos-spec
//!
//! The DeSiDeRaTa specification-language extension for network resources —
//! the concrete syntax behind the paper's §3.2 and its companion paper
//! \[12\] (*Specification and Modeling of Network Resources in Dynamic,
//! Distributed Real-time Systems*, PDCS 2001).
//!
//! The resource-management middleware "has to know exactly what resources
//! are under its control"; rather than discovering the network, the
//! monitor reads it from specification files. This crate provides the
//! lexer, recursive-descent parser, pretty-printer, and the conversion to
//! a validated [`netqos_topology::NetworkTopology`].
//!
//! ## Language
//!
//! ```text
//! # The LIRTSS testbed (paper Figure 3), abridged
//! host L {
//!     os "Linux";
//!     address 10.0.0.1;
//!     snmp community "public";
//!     interface eth0 { speed 100Mbps; }
//! }
//! device sw switch {
//!     address 10.0.0.100;
//!     snmp community "public";
//!     speed 100Mbps;          # default for all interfaces
//!     interface p1;
//!     interface p2;
//! }
//! device hub1 hub {
//!     speed 10Mbps;
//!     interface h1; interface h2; interface h3;
//! }
//! connection L.eth0 <-> sw.p1;
//! connection sw.p2 <-> hub1.h1;
//!
//! qospath track from L to N1 {
//!     min_available 500KBps;
//!     max_utilization 80%;
//! }
//! ```
//!
//! Bandwidth quantities accept `bps`, `Kbps`, `Mbps`, `Gbps` (bits) and
//! `Bps`, `KBps`, `MBps` (bytes, ×8); a bare number is bits per second.
//! `#` starts a line comment.
//!
//! ## Example
//!
//! ```
//! let src = r#"
//!     host A { address 10.0.0.1; interface eth0 { speed 100Mbps; } }
//!     host B { address 10.0.0.2; interface eth0 { speed 100Mbps; } }
//!     connection A.eth0 <-> B.eth0;
//! "#;
//! let model = netqos_spec::parse_and_validate(src).unwrap();
//! assert_eq!(model.topology.node_count(), 2);
//! assert_eq!(model.topology.connection_count(), 1);
//! ```

pub mod ast;
pub mod error;
pub mod gen;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod writer;

pub use ast::SpecFile;
pub use error::{Span, SpecError};
pub use gen::{generate_spec, GenParams};
pub use model::{parse_and_validate, QosPathSpec, SpecModel};
pub use parser::parse;
pub use writer::write_spec;
