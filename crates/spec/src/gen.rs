//! Parameterized ISP-scale topology generation.
//!
//! The paper's LIRTSS testbed is a handful of hosts; measuring how the
//! monitor *scales* needs specs three orders of magnitude larger. This
//! module emits synthetic-but-realistic specification source in the
//! shape of an access network:
//!
//! ```text
//! core ──trunk──> site switches ──trunk──> access points ──> hosts
//! ```
//!
//! One 10Gbps core switch fans out to 1Gbps site switches; each site
//! fans out to 100Mbps access-point switches (every `hub_every`-th AP
//! is a shared 10Mbps hub instead — the monitor must handle mixed
//! layer-1/layer-2 gear); each AP serves `hosts_per_ap` subscriber
//! hosts. Every host is SNMP-capable, and `qos_paths` cross-AP QoS
//! paths ride on top so path evaluation is exercised, not just device
//! polling.
//!
//! Generation is fully deterministic — same parameters, byte-identical
//! spec — so generated topologies can anchor benchmarks and regression
//! baselines.

use std::fmt::Write as _;

/// Parameters for [`generate_spec`]. `Default` is a small smoke-test
/// topology; scale `hosts` up to 10⁵ for ISP-sized benchmarks.
#[derive(Debug, Clone)]
pub struct GenParams {
    /// Total subscriber hosts (the generator rounds the tree shape
    /// around this; the exact count is always honored).
    pub hosts: usize,
    /// Hosts behind each access point (last AP takes the remainder).
    /// Clamped to 1..=249 so per-AP /24-style addressing stays valid.
    pub hosts_per_ap: usize,
    /// Access points aggregated by each site switch.
    pub aps_per_site: usize,
    /// Every n-th access point is a 10Mbps hub instead of a 100Mbps
    /// switch; `0` disables hubs entirely.
    pub hub_every: usize,
    /// Cross-AP QoS paths to declare (capped at what the host count
    /// supports).
    pub qos_paths: usize,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            hosts: 100,
            hosts_per_ap: 25,
            aps_per_site: 8,
            hub_every: 4,
            qos_paths: 8,
        }
    }
}

impl GenParams {
    fn hosts_per_ap(&self) -> usize {
        self.hosts_per_ap.clamp(1, 249)
    }

    /// Access points needed for `hosts`.
    pub fn ap_count(&self) -> usize {
        self.hosts.div_ceil(self.hosts_per_ap()).max(1)
    }

    /// Site switches needed for the access points.
    pub fn site_count(&self) -> usize {
        self.ap_count().div_ceil(self.aps_per_site.max(1))
    }

    /// Total nodes the generated spec declares (hosts + APs + site
    /// switches + the core).
    pub fn node_count(&self) -> usize {
        self.hosts + self.ap_count() + self.site_count() + 1
    }
}

/// Whether access point `g` is generated as a shared hub.
fn is_hub(params: &GenParams, g: usize) -> bool {
    params.hub_every != 0 && (g + 1).is_multiple_of(params.hub_every)
}

/// The host name for subscriber `i` of access point `g`.
fn host_name(g: usize, i: usize) -> String {
    format!("h{g}-{i}")
}

/// Emits deterministic specification source for `params`: the full
/// core→site→access-point→host tree, every connection, and the
/// cross-AP QoS paths. The output parses and validates with
/// [`crate::parse_and_validate`].
pub fn generate_spec(params: &GenParams) -> String {
    let per_ap = params.hosts_per_ap();
    let aps = params.ap_count();
    let sites = params.site_count();
    let aps_per_site = params.aps_per_site.max(1);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Generated access-network topology: {} hosts, {} access points, {} sites.",
        params.hosts, aps, sites
    );
    let _ = writeln!(
        out,
        "# netqos gen-topology --hosts {} --hosts-per-ap {} --aps-per-site {} --hub-every {} --qos-paths {}",
        params.hosts, per_ap, aps_per_site, params.hub_every, params.qos_paths
    );
    out.push('\n');

    // Core: one trunk port per site.
    let _ = writeln!(out, "device core switch {{");
    let _ = writeln!(out, "    speed 10Gbps;");
    for s in 0..sites {
        let _ = writeln!(out, "    interface t{s};");
    }
    let _ = writeln!(out, "}}");

    // Site switches: an uplink plus one port per attached AP.
    for s in 0..sites {
        let ap_lo = s * aps_per_site;
        let ap_hi = (ap_lo + aps_per_site).min(aps);
        let _ = writeln!(out, "device site{s} switch {{");
        let _ = writeln!(out, "    speed 1Gbps;");
        let _ = writeln!(out, "    interface up;");
        for g in ap_lo..ap_hi {
            let _ = writeln!(out, "    interface d{g};");
        }
        let _ = writeln!(out, "}}");
    }

    // Access points and their hosts.
    for g in 0..aps {
        let lo = g * per_ap;
        let hi = (lo + per_ap).min(params.hosts);
        let kind = if is_hub(params, g) { "hub" } else { "switch" };
        let speed = if is_hub(params, g) {
            "10Mbps"
        } else {
            "100Mbps"
        };
        let _ = writeln!(out, "device ap{g} {kind} {{");
        let _ = writeln!(out, "    speed {speed};");
        let _ = writeln!(out, "    interface up;");
        for i in lo..hi {
            let _ = writeln!(out, "    interface p{};", i - lo);
        }
        let _ = writeln!(out, "}}");
        for i in lo..hi {
            let _ = writeln!(out, "host {} {{", host_name(g, i - lo));
            let _ = writeln!(out, "    os \"Linux\";");
            let _ = writeln!(
                out,
                "    address 10.{}.{}.{};",
                g / 250,
                g % 250,
                i - lo + 1
            );
            let _ = writeln!(out, "    snmp community \"public\";");
            let _ = writeln!(out, "    interface eth0 {{ speed {speed}; }}");
            let _ = writeln!(out, "}}");
        }
    }
    out.push('\n');

    // Trunks, uplinks, subscriber drops.
    for s in 0..sites {
        let _ = writeln!(out, "connection core.t{s} <-> site{s}.up;");
    }
    for g in 0..aps {
        let s = g / aps_per_site;
        let _ = writeln!(out, "connection site{s}.d{g} <-> ap{g}.up;");
    }
    for g in 0..aps {
        let lo = g * per_ap;
        let hi = (lo + per_ap).min(params.hosts);
        for i in lo..hi {
            let _ = writeln!(
                out,
                "connection {}.eth0 <-> ap{g}.p{};",
                host_name(g, i - lo),
                i - lo
            );
        }
    }
    out.push('\n');

    // Cross-AP QoS paths: endpoint pairs stride the AP ring so paths
    // traverse site and core trunks, not just one access switch.
    let max_paths = if params.hosts >= 2 {
        params.qos_paths
    } else {
        0
    };
    for k in 0..max_paths {
        let from_ap = k % aps;
        let to_ap = (k + aps / 2 + 1) % aps;
        let from_i = k % hosts_in_ap(params, from_ap);
        let to_i = (k + 1) % hosts_in_ap(params, to_ap);
        let from = host_name(from_ap, from_i);
        let to = host_name(to_ap, to_i);
        if from == to {
            continue;
        }
        let _ = writeln!(out, "qospath p{k} from {from} to {to} {{");
        let _ = writeln!(out, "    min_available 100KBps;");
        let _ = writeln!(out, "    max_utilization 80%;");
        let _ = writeln!(out, "}}");
    }
    out
}

/// Hosts actually attached to access point `g` (the last AP may be
/// partial).
fn hosts_in_ap(params: &GenParams, g: usize) -> usize {
    let per_ap = params.hosts_per_ap();
    let lo = g * per_ap;
    let hi = (lo + per_ap).min(params.hosts);
    hi.saturating_sub(lo).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_generate_a_valid_spec() {
        let params = GenParams::default();
        let src = generate_spec(&params);
        let model = crate::parse_and_validate(&src).expect("generated spec must validate");
        assert_eq!(model.topology.node_count(), params.node_count());
        assert_eq!(model.qos_paths.len(), params.qos_paths);
        // Every host is SNMP-capable — the monitor needs agents to poll.
        assert_eq!(model.snmp_nodes().len(), params.hosts);
    }

    #[test]
    fn generation_is_deterministic() {
        let params = GenParams {
            hosts: 37,
            ..GenParams::default()
        };
        assert_eq!(generate_spec(&params), generate_spec(&params));
    }

    #[test]
    fn mixed_hub_and_switch_layers_appear() {
        let params = GenParams {
            hosts: 200,
            hub_every: 3,
            ..GenParams::default()
        };
        let src = generate_spec(&params);
        assert!(src.contains(" hub {"), "expected hub APs:\n{src}");
        assert!(src.contains("device ap0 switch {"), "{src}");
        crate::parse_and_validate(&src).expect("mixed-layer spec must validate");
    }

    #[test]
    fn uneven_host_counts_leave_a_partial_last_ap() {
        let params = GenParams {
            hosts: 26,
            hosts_per_ap: 25,
            ..GenParams::default()
        };
        let src = generate_spec(&params);
        let model = crate::parse_and_validate(&src).unwrap();
        assert_eq!(params.ap_count(), 2);
        assert_eq!(model.snmp_nodes().len(), 26);
    }

    #[test]
    fn single_host_topology_drops_qos_paths() {
        let params = GenParams {
            hosts: 1,
            qos_paths: 4,
            ..GenParams::default()
        };
        let model = crate::parse_and_validate(&generate_spec(&params)).unwrap();
        assert!(model.qos_paths.is_empty());
    }

    #[test]
    fn round_trips_through_the_parser_at_1k_hosts() {
        let params = GenParams {
            hosts: 1_000,
            ..GenParams::default()
        };
        let src = generate_spec(&params);
        let model = crate::parse_and_validate(&src).expect("1k-host spec must validate");
        assert_eq!(model.topology.node_count(), params.node_count());
        assert_eq!(model.snmp_nodes().len(), 1_000);
        assert_eq!(model.qos_paths.len(), params.qos_paths);
    }

    #[test]
    fn round_trips_through_the_parser_at_10k_hosts() {
        let params = GenParams {
            hosts: 10_000,
            ..GenParams::default()
        };
        let src = generate_spec(&params);
        let model = crate::parse_and_validate(&src).expect("10k-host spec must validate");
        assert_eq!(model.topology.node_count(), params.node_count());
        assert_eq!(model.snmp_nodes().len(), 10_000);
    }
}
