//! Validation and conversion: AST → [`SpecModel`].
//!
//! A [`SpecModel`] is what the rest of the system consumes: a validated
//! [`NetworkTopology`], the per-node IP addresses (needed to build the
//! simulator and to address SNMP agents), and the QoS-path requirements
//! for the resource manager.

use crate::ast::{EndpointRef, SpecFile};
use crate::error::{Span, SpecError};
use netqos_topology::{NetworkTopology, NodeId, TopologyError};
use std::collections::{HashMap, HashSet};

/// A QoS requirement on a host-to-host communication path.
#[derive(Debug, Clone, PartialEq)]
pub struct QosPathSpec {
    /// Path name.
    pub name: String,
    /// Source host node.
    pub from: NodeId,
    /// Destination host node.
    pub to: NodeId,
    /// Minimum acceptable available bandwidth (bits/s).
    pub min_available_bps: Option<u64>,
    /// Maximum acceptable per-connection utilisation fraction.
    pub max_utilization: Option<f64>,
    /// Declared application implementing the movable endpoint.
    pub application: Option<String>,
}

/// A validated real-time application declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppSpec {
    /// Application name.
    pub name: String,
    /// Host node it runs on.
    pub host: NodeId,
    /// Whether the RM may relocate it.
    pub movable: bool,
}

/// The validated output of a specification file.
#[derive(Debug, Clone)]
pub struct SpecModel {
    /// The network topology.
    pub topology: NetworkTopology,
    /// Node IP addresses (hosts and managed devices), by node id.
    pub addresses: HashMap<NodeId, String>,
    /// Operating-system annotations, by node id.
    pub os: HashMap<NodeId, String>,
    /// QoS path requirements.
    pub qos_paths: Vec<QosPathSpec>,
    /// Real-time applications and their initial allocation.
    pub applications: Vec<AppSpec>,
}

impl SpecModel {
    /// Node ids of every SNMP-capable node.
    pub fn snmp_nodes(&self) -> Vec<NodeId> {
        self.topology
            .nodes()
            .filter(|(_, n)| n.snmp_capable)
            .map(|(id, _)| id)
            .collect()
    }
}

fn convert_topology_error(e: TopologyError, span: Span) -> SpecError {
    match e {
        TopologyError::DuplicateNodeName(name) => SpecError::DuplicateNode { span, name },
        TopologyError::DuplicateInterfaceName { node, interface } => {
            SpecError::DuplicateInterface {
                span,
                node,
                interface,
            }
        }
        other => SpecError::Topology(other.to_string()),
    }
}

/// Validates an AST and lowers it to a [`SpecModel`].
pub fn validate(file: &SpecFile) -> Result<SpecModel, SpecError> {
    let mut topology = NetworkTopology::new();
    let mut addresses = HashMap::new();
    let mut os = HashMap::new();

    for node in &file.nodes {
        let id = topology
            .add_node(&node.name, node.kind)
            .map_err(|e| convert_topology_error(e, node.span))?;
        if let Some(addr) = &node.address {
            addresses.insert(id, addr.clone());
        }
        if let Some(o) = &node.os {
            os.insert(id, o.clone());
        }
        if let Some(community) = &node.snmp_community {
            topology
                .set_snmp(id, community)
                .map_err(|e| convert_topology_error(e, node.span))?;
        }
        for iface in &node.interfaces {
            let speed =
                iface
                    .speed_bps
                    .or(node.default_speed)
                    .ok_or_else(|| SpecError::MissingSpeed {
                        span: iface.span,
                        node: node.name.clone(),
                        interface: iface.local_name.clone(),
                    })?;
            topology
                .add_interface(id, &iface.local_name, speed)
                .map_err(|e| convert_topology_error(e, iface.span))?;
        }
    }

    let resolve =
        |ep: &EndpointRef, span: Span| -> Result<(NodeId, netqos_topology::IfIx), SpecError> {
            let node = topology
                .node_by_name(&ep.node)
                .map_err(|_| SpecError::UnknownEndpoint {
                    span,
                    endpoint: ep.to_string(),
                })?;
            let ifix = topology
                .interface_by_name(node, &ep.interface)
                .map_err(|_| SpecError::UnknownEndpoint {
                    span,
                    endpoint: ep.to_string(),
                })?;
            Ok((node, ifix))
        };

    // Resolve endpoints first (immutably), then connect.
    let mut resolved = Vec::with_capacity(file.connections.len());
    let mut used: HashSet<(NodeId, netqos_topology::IfIx)> = HashSet::new();
    for conn in &file.connections {
        let a = resolve(&conn.a, conn.span)?;
        let b = resolve(&conn.b, conn.span)?;
        for (ep, parsed) in [(&conn.a, a), (&conn.b, b)] {
            if !used.insert(parsed) {
                return Err(SpecError::InterfaceReused {
                    span: conn.span,
                    endpoint: ep.to_string(),
                });
            }
        }
        resolved.push((a, b, conn.span));
    }
    for (a, b, span) in resolved {
        topology
            .connect(a, b)
            .map_err(|e| convert_topology_error(e, span))?;
    }

    // Applications: unique names on declared hosts.
    let mut applications = Vec::with_capacity(file.applications.len());
    let mut app_names: HashSet<&str> = HashSet::new();
    for a in &file.applications {
        if !app_names.insert(&a.name) {
            return Err(SpecError::DuplicateProperty {
                span: a.span,
                name: format!("application {}", a.name),
            });
        }
        let host = topology
            .node_by_name(&a.host)
            .map_err(|_| SpecError::QosEndpointNotHost {
                span: a.span,
                name: a.host.clone(),
            })?;
        if !topology
            .node(host)
            .map(|n| n.kind.is_host())
            .unwrap_or(false)
        {
            return Err(SpecError::QosEndpointNotHost {
                span: a.span,
                name: a.host.clone(),
            });
        }
        applications.push(AppSpec {
            name: a.name.clone(),
            host,
            movable: !a.pinned,
        });
    }

    let mut qos_paths = Vec::with_capacity(file.qos_paths.len());
    for q in &file.qos_paths {
        let resolve_host = |name: &str| -> Result<NodeId, SpecError> {
            let id = topology
                .node_by_name(name)
                .map_err(|_| SpecError::QosEndpointNotHost {
                    span: q.span,
                    name: name.to_owned(),
                })?;
            if !topology.node(id).map(|n| n.kind.is_host()).unwrap_or(false) {
                return Err(SpecError::QosEndpointNotHost {
                    span: q.span,
                    name: name.to_owned(),
                });
            }
            Ok(id)
        };
        if let Some(app) = &q.application {
            if !applications.iter().any(|a| &a.name == app) {
                return Err(SpecError::UnknownEndpoint {
                    span: q.span,
                    endpoint: format!("application {app}"),
                });
            }
        }
        qos_paths.push(QosPathSpec {
            name: q.name.clone(),
            from: resolve_host(&q.from)?,
            to: resolve_host(&q.to)?,
            min_available_bps: q.min_available_bps,
            max_utilization: q.max_utilization,
            application: q.application.clone(),
        });
    }

    Ok(SpecModel {
        topology,
        addresses,
        os,
        qos_paths,
        applications,
    })
}

/// One-shot: parse source text and validate it.
pub fn parse_and_validate(src: &str) -> Result<SpecModel, SpecError> {
    let r = netqos_telemetry::global();
    let result = crate::parser::parse(src).and_then(|ast| validate(&ast));
    match &result {
        Ok(_) => r.counter("netqos_spec_parses_total").inc(),
        Err(_) => r.counter("netqos_spec_parse_failures_total").inc(),
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
        host A { address 10.0.0.1; snmp community "pub"; interface eth0 { speed 100Mbps; } }
        device sw switch { speed 100Mbps; interface p1; interface p2; }
        host B { address 10.0.0.2; interface eth0 { speed 10Mbps; } }
        connection A.eth0 <-> sw.p1;
        connection sw.p2 <-> B.eth0;
        qospath ab from A to B { min_available 1Mbps; }
    "#;

    #[test]
    fn validates_good_spec() {
        let m = parse_and_validate(GOOD).unwrap();
        assert_eq!(m.topology.node_count(), 3);
        assert_eq!(m.topology.connection_count(), 2);
        let a = m.topology.node_by_name("A").unwrap();
        assert!(m.topology.node(a).unwrap().snmp_capable);
        assert_eq!(m.addresses[&a], "10.0.0.1");
        assert_eq!(m.qos_paths.len(), 1);
        assert_eq!(m.snmp_nodes(), vec![a]);
    }

    #[test]
    fn default_speed_flows_to_interfaces() {
        let m = parse_and_validate("device sw switch { speed 100Mbps; interface p1; }").unwrap();
        let sw = m.topology.node_by_name("sw").unwrap();
        assert_eq!(
            m.topology.node(sw).unwrap().interfaces[0].speed_bps,
            100_000_000
        );
    }

    #[test]
    fn missing_speed_rejected() {
        let err = parse_and_validate("host A { interface eth0; }").unwrap_err();
        assert!(matches!(err, SpecError::MissingSpeed { .. }));
    }

    #[test]
    fn unknown_endpoint_rejected() {
        let err =
            parse_and_validate("host A { interface e { speed 1Mbps; } } connection A.e <-> B.e;")
                .unwrap_err();
        assert!(matches!(err, SpecError::UnknownEndpoint { .. }));
        let err = parse_and_validate(
            "host A { interface e { speed 1Mbps; } } host B { interface e { speed 1Mbps; } } connection A.e <-> B.zz;",
        )
        .unwrap_err();
        assert!(matches!(err, SpecError::UnknownEndpoint { .. }));
    }

    #[test]
    fn interface_reuse_rejected() {
        let err = parse_and_validate(
            r#"
            host A { interface e { speed 1Mbps; } }
            host B { interface e { speed 1Mbps; } }
            host C { interface e { speed 1Mbps; } }
            connection A.e <-> B.e;
            connection A.e <-> C.e;
            "#,
        )
        .unwrap_err();
        assert!(matches!(err, SpecError::InterfaceReused { .. }));
    }

    #[test]
    fn duplicate_node_rejected_with_span() {
        let err = parse_and_validate("host A { }\nhost A { }").unwrap_err();
        match err {
            SpecError::DuplicateNode { span, name } => {
                assert_eq!(name, "A");
                assert_eq!(span.line, 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn qos_endpoint_must_be_host() {
        let err =
            parse_and_validate("device sw switch { } qospath q from sw to sw { }").unwrap_err();
        assert!(matches!(err, SpecError::QosEndpointNotHost { .. }));
    }

    #[test]
    fn os_annotation_collected() {
        let m = parse_and_validate("host N1 { os \"Windows NT\"; }").unwrap();
        let n1 = m.topology.node_by_name("N1").unwrap();
        assert_eq!(m.os[&n1], "Windows NT");
    }
}

#[cfg(test)]
mod app_tests {
    use super::*;

    const WITH_APPS: &str = r#"
        host A { address 10.0.0.1; interface e { speed 10Mbps; } }
        host B { address 10.0.0.2; interface e { speed 10Mbps; } }
        connection A.e <-> B.e;
        application radar on A;
        application logger on B { pinned; }
        qospath ab from A to B { min_available 1Mbps; application radar; }
    "#;

    #[test]
    fn applications_validated_and_collected() {
        let m = parse_and_validate(WITH_APPS).unwrap();
        assert_eq!(m.applications.len(), 2);
        let radar = &m.applications[0];
        assert_eq!(radar.name, "radar");
        assert!(radar.movable);
        assert_eq!(radar.host, m.topology.node_by_name("A").unwrap());
        assert!(!m.applications[1].movable);
        assert_eq!(m.qos_paths[0].application.as_deref(), Some("radar"));
    }

    #[test]
    fn duplicate_application_rejected() {
        let err =
            parse_and_validate("host A { } application x on A; application x on A;").unwrap_err();
        assert!(matches!(err, SpecError::DuplicateProperty { .. }));
    }

    #[test]
    fn application_on_non_host_rejected() {
        let err = parse_and_validate("device sw switch { } application x on sw;").unwrap_err();
        assert!(matches!(err, SpecError::QosEndpointNotHost { .. }));
        let err = parse_and_validate("host A { } application x on ghost;").unwrap_err();
        assert!(matches!(err, SpecError::QosEndpointNotHost { .. }));
    }

    #[test]
    fn qospath_referencing_unknown_application_rejected() {
        let err = parse_and_validate(
            "host A { } host B { } qospath p from A to B { application ghost; }",
        )
        .unwrap_err();
        assert!(matches!(err, SpecError::UnknownEndpoint { .. }));
    }

    #[test]
    fn application_round_trips_through_writer() {
        let ast = crate::parser::parse(WITH_APPS).unwrap();
        let text = crate::writer::write_spec(&ast);
        let back = crate::parser::parse(&text).unwrap();
        assert_eq!(ast.applications.len(), back.applications.len());
        for (a, b) in ast.applications.iter().zip(&back.applications) {
            assert_eq!((&a.name, &a.host, a.pinned), (&b.name, &b.host, b.pinned));
        }
        assert_eq!(ast.qos_paths[0].application, back.qos_paths[0].application);
    }
}
