//! Spec-language errors with source positions.

use std::fmt;

/// A position range in the source text (1-based line and column of the
/// start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Span {
    /// Builds a span.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors from lexing, parsing, or validating a specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A character the lexer does not understand.
    UnexpectedChar { span: Span, ch: char },
    /// A string literal missing its closing quote.
    UnterminatedString { span: Span },
    /// A number that does not fit or has a malformed suffix.
    BadNumber { span: Span, text: String },
    /// An unknown bandwidth unit suffix.
    UnknownUnit { span: Span, unit: String },
    /// The parser expected something else.
    Expected {
        span: Span,
        expected: &'static str,
        found: String,
    },
    /// A declaration property appears twice.
    DuplicateProperty { span: Span, name: String },
    /// Unknown node kind in a `device` declaration.
    UnknownKind { span: Span, kind: String },
    /// Validation: duplicate node name.
    DuplicateNode { span: Span, name: String },
    /// Validation: duplicate interface on a node.
    DuplicateInterface {
        span: Span,
        node: String,
        interface: String,
    },
    /// Validation: an endpoint references an unknown node or interface.
    UnknownEndpoint { span: Span, endpoint: String },
    /// Validation: an interface has no speed (neither its own nor a node
    /// default).
    MissingSpeed {
        span: Span,
        node: String,
        interface: String,
    },
    /// Validation: an interface appears in more than one connection.
    InterfaceReused { span: Span, endpoint: String },
    /// Validation: a qospath endpoint is not a declared host.
    QosEndpointNotHost { span: Span, name: String },
    /// Validation failure propagated from the topology builder.
    Topology(String),
}

impl SpecError {
    /// The source position of the error, when known.
    pub fn span(&self) -> Option<Span> {
        match self {
            SpecError::UnexpectedChar { span, .. }
            | SpecError::UnterminatedString { span }
            | SpecError::BadNumber { span, .. }
            | SpecError::UnknownUnit { span, .. }
            | SpecError::Expected { span, .. }
            | SpecError::DuplicateProperty { span, .. }
            | SpecError::UnknownKind { span, .. }
            | SpecError::DuplicateNode { span, .. }
            | SpecError::DuplicateInterface { span, .. }
            | SpecError::UnknownEndpoint { span, .. }
            | SpecError::MissingSpeed { span, .. }
            | SpecError::InterfaceReused { span, .. }
            | SpecError::QosEndpointNotHost { span, .. } => Some(*span),
            SpecError::Topology(_) => None,
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnexpectedChar { span, ch } => {
                write!(f, "{span}: unexpected character `{ch}`")
            }
            SpecError::UnterminatedString { span } => {
                write!(f, "{span}: unterminated string literal")
            }
            SpecError::BadNumber { span, text } => {
                write!(f, "{span}: malformed number `{text}`")
            }
            SpecError::UnknownUnit { span, unit } => {
                write!(
                    f,
                    "{span}: unknown bandwidth unit `{unit}` \
                         (expected bps, Kbps, Mbps, Gbps, Bps, KBps, or MBps)"
                )
            }
            SpecError::Expected {
                span,
                expected,
                found,
            } => write!(f, "{span}: expected {expected}, found {found}"),
            SpecError::DuplicateProperty { span, name } => {
                write!(f, "{span}: property `{name}` given twice")
            }
            SpecError::UnknownKind { span, kind } => {
                write!(f, "{span}: unknown device kind `{kind}`")
            }
            SpecError::DuplicateNode { span, name } => {
                write!(f, "{span}: node `{name}` declared twice")
            }
            SpecError::DuplicateInterface {
                span,
                node,
                interface,
            } => write!(
                f,
                "{span}: interface `{interface}` declared twice on `{node}`"
            ),
            SpecError::UnknownEndpoint { span, endpoint } => {
                write!(f, "{span}: unknown endpoint `{endpoint}`")
            }
            SpecError::MissingSpeed {
                span,
                node,
                interface,
            } => write!(
                f,
                "{span}: interface `{node}.{interface}` has no speed and its node has no default"
            ),
            SpecError::InterfaceReused { span, endpoint } => write!(
                f,
                "{span}: interface `{endpoint}` used by more than one connection \
                     (connections must be 1-to-1)"
            ),
            SpecError::QosEndpointNotHost { span, name } => {
                write!(
                    f,
                    "{span}: qospath endpoint `{name}` is not a declared host"
                )
            }
            SpecError::Topology(msg) => write!(f, "topology validation: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_render_as_line_col() {
        let e = SpecError::UnexpectedChar {
            span: Span::new(3, 14),
            ch: '%',
        };
        assert!(e.to_string().starts_with("3:14:"));
        assert_eq!(e.span(), Some(Span::new(3, 14)));
    }

    #[test]
    fn topology_errors_have_no_span() {
        assert_eq!(SpecError::Topology("x".into()).span(), None);
    }
}
