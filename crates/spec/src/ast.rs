//! The abstract syntax tree — the Rust rendering of the paper's Figure 2
//! data structures (`Host`, `Interface`, `HostPairConnection`,
//! `NetworkTopology`), extended with QoS-path requirements.

use crate::error::Span;
use netqos_topology::NodeKind;

/// A parsed specification file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpecFile {
    /// Host and device declarations.
    pub nodes: Vec<NodeDecl>,
    /// Connection declarations.
    pub connections: Vec<ConnectionDecl>,
    /// Real-time application declarations.
    pub applications: Vec<AppDecl>,
    /// QoS path requirements.
    pub qos_paths: Vec<QosPathDecl>,
}

/// One `application NAME on HOST;` declaration — the software side of the
/// DeSiDeRaTa specification: a real-time application endpoint the resource
/// manager may relocate (unless `pinned`).
#[derive(Debug, Clone, PartialEq)]
pub struct AppDecl {
    /// Application name (unique).
    pub name: String,
    /// Host the application initially runs on.
    pub host: String,
    /// `pinned;` — the RM must not move it.
    pub pinned: bool,
    /// Source position.
    pub span: Span,
}

/// One `host` or `device` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeDecl {
    /// Node name (system-wide unique).
    pub name: String,
    /// Node kind (`host`, or the kind keyword after a `device` name).
    pub kind: NodeKind,
    /// `os "..."` — informational.
    pub os: Option<String>,
    /// `address a.b.c.d` — management/host IP.
    pub address: Option<String>,
    /// `snmp community "..."` — present iff the node runs an SNMP agent.
    pub snmp_community: Option<String>,
    /// `speed ...` — default interface speed.
    pub default_speed: Option<u64>,
    /// Interface declarations.
    pub interfaces: Vec<InterfaceDecl>,
    /// Source position of the declaration.
    pub span: Span,
}

impl NodeDecl {
    /// A bare node declaration with the given name and kind.
    pub fn new(name: &str, kind: NodeKind) -> Self {
        NodeDecl {
            name: name.to_owned(),
            kind,
            os: None,
            address: None,
            snmp_community: None,
            default_speed: None,
            interfaces: Vec::new(),
            span: Span::default(),
        }
    }
}

/// One `interface` declaration inside a node.
#[derive(Debug, Clone, PartialEq)]
pub struct InterfaceDecl {
    /// Local interface name, unique within the node.
    pub local_name: String,
    /// `speed ...` — overrides the node default.
    pub speed_bps: Option<u64>,
    /// Source position.
    pub span: Span,
}

/// One endpoint of a connection: `node.interface`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointRef {
    /// Node name.
    pub node: String,
    /// Interface local name.
    pub interface: String,
}

impl std::fmt::Display for EndpointRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.node, self.interface)
    }
}

/// One `connection A.if <-> B.if;` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionDecl {
    /// First endpoint.
    pub a: EndpointRef,
    /// Second endpoint.
    pub b: EndpointRef,
    /// Source position.
    pub span: Span,
}

/// One `qospath` declaration: a real-time communication path with
/// bandwidth requirements for the resource manager.
#[derive(Debug, Clone, PartialEq)]
pub struct QosPathDecl {
    /// Path name.
    pub name: String,
    /// Source host.
    pub from: String,
    /// Destination host.
    pub to: String,
    /// `min_available ...` — violation when path available bandwidth drops
    /// below this.
    pub min_available_bps: Option<u64>,
    /// `max_utilization N%` — violation when any path connection exceeds
    /// this utilisation fraction.
    pub max_utilization: Option<f64>,
    /// `application NAME;` — which declared application implements this
    /// path's movable endpoint (enables reallocation advice).
    pub application: Option<String>,
    /// Source position.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_display() {
        let e = EndpointRef {
            node: "L".into(),
            interface: "eth0".into(),
        };
        assert_eq!(e.to_string(), "L.eth0");
    }

    #[test]
    fn node_decl_defaults() {
        let n = NodeDecl::new("L", NodeKind::Host);
        assert_eq!(n.name, "L");
        assert!(n.interfaces.is_empty());
        assert!(n.snmp_community.is_none());
    }
}
