//! The tokenizer.
//!
//! Token kinds: identifiers (including dotted endpoint refs handled by the
//! parser), string literals, bandwidth quantities (`100Mbps`), bare
//! integers, percentages (`80%`), and punctuation (`{ } ; . <->`).
//! `#` starts a comment running to end of line.

use crate::error::{Span, SpecError};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Double-quoted string (contents, unescaped).
    Str(String),
    /// A bare integer.
    Int(u64),
    /// A bandwidth quantity resolved to bits/second.
    Bandwidth(u64),
    /// A percentage resolved to a fraction in `[0, +∞)`.
    Percent(f64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `<->`
    Arrow,
    /// End of input.
    Eof,
}

impl Token {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("identifier `{s}`"),
            Token::Str(s) => format!("string {s:?}"),
            Token::Int(n) => format!("number `{n}`"),
            Token::Bandwidth(b) => format!("bandwidth `{b}bps`"),
            Token::Percent(p) => format!("percentage `{}%`", p * 100.0),
            Token::LBrace => "`{`".to_owned(),
            Token::RBrace => "`}`".to_owned(),
            Token::Semi => "`;`".to_owned(),
            Token::Dot => "`.`".to_owned(),
            Token::Arrow => "`<->`".to_owned(),
            Token::Eof => "end of input".to_owned(),
        }
    }
}

/// A token plus its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Where it starts.
    pub span: Span,
}

/// Converts a unit suffix to a bits-per-second multiplier.
fn unit_multiplier(unit: &str) -> Option<u64> {
    Some(match unit {
        "bps" => 1,
        "Kbps" | "kbps" => 1_000,
        "Mbps" | "mbps" => 1_000_000,
        "Gbps" | "gbps" => 1_000_000_000,
        "Bps" => 8,
        "KBps" | "kBps" => 8_000,
        "MBps" | "mBps" => 8_000_000,
        _ => return None,
    })
}

/// Tokenizes the whole input.
pub fn lex(src: &str) -> Result<Vec<Spanned>, SpecError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if let Some(c) = c {
                if c == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
            c
        }};
    }

    loop {
        // Skip whitespace and comments.
        loop {
            match chars.peek() {
                Some(c) if c.is_whitespace() => {
                    bump!();
                }
                Some('#') => {
                    while let Some(&c) = chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        bump!();
                    }
                }
                _ => break,
            }
        }

        let span = Span::new(line, col);
        let Some(&c) = chars.peek() else {
            out.push(Spanned {
                token: Token::Eof,
                span,
            });
            return Ok(out);
        };

        let token = if c.is_ascii_alphabetic() || c == '_' {
            let mut s = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                    s.push(c);
                    bump!();
                } else {
                    break;
                }
            }
            Token::Ident(s)
        } else if c.is_ascii_digit() {
            let mut digits = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_digit() {
                    digits.push(c);
                    bump!();
                } else {
                    break;
                }
            }
            // A dot may begin a fractional quantity (`1.5Mbps`) or an IP
            // address / endpoint separator (`10.0.0.1`). Tentatively scan
            // a fraction and backtrack unless a unit letter follows.
            if chars.peek() == Some(&'.') {
                let save = (chars.clone(), line, col);
                bump!();
                let mut frac = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        frac.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                let unit_follows =
                    !frac.is_empty() && matches!(chars.peek(), Some(c) if c.is_ascii_alphabetic());
                if unit_follows {
                    digits.push('.');
                    digits.push_str(&frac);
                } else {
                    (chars, line, col) = save;
                }
            }
            // Optional unit suffix or percent sign.
            let mut unit = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_alphabetic() {
                    unit.push(c);
                    bump!();
                } else {
                    break;
                }
            }
            if unit.is_empty() && chars.peek() == Some(&'%') {
                bump!();
                let v: f64 = digits.parse().map_err(|_| SpecError::BadNumber {
                    span,
                    text: digits.clone(),
                })?;
                Token::Percent(v / 100.0)
            } else if unit.is_empty() {
                // Dotted numbers without a unit are ambiguous with
                // endpoint refs; only integers are allowed bare.
                let v: u64 = digits.parse().map_err(|_| SpecError::BadNumber {
                    span,
                    text: digits.clone(),
                })?;
                Token::Int(v)
            } else {
                let mult = unit_multiplier(&unit).ok_or_else(|| SpecError::UnknownUnit {
                    span,
                    unit: unit.clone(),
                })?;
                let v: f64 = digits.parse().map_err(|_| SpecError::BadNumber {
                    span,
                    text: digits.clone(),
                })?;
                Token::Bandwidth((v * mult as f64).round() as u64)
            }
        } else if c == '"' {
            bump!();
            let mut s = String::new();
            loop {
                match bump!() {
                    Some('"') => break,
                    Some('\n') | None => return Err(SpecError::UnterminatedString { span }),
                    Some(c) => s.push(c),
                }
            }
            Token::Str(s)
        } else if c == '<' {
            bump!();
            if chars.peek() == Some(&'-') {
                bump!();
                if chars.peek() == Some(&'>') {
                    bump!();
                    Token::Arrow
                } else {
                    return Err(SpecError::UnexpectedChar { span, ch: '-' });
                }
            } else {
                return Err(SpecError::UnexpectedChar { span, ch: '<' });
            }
        } else {
            bump!();
            match c {
                '{' => Token::LBrace,
                '}' => Token::RBrace,
                ';' => Token::Semi,
                '.' => Token::Dot,
                other => return Err(SpecError::UnexpectedChar { span, ch: other }),
            }
        };
        out.push(Spanned { token, span });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn idents_and_punct() {
        assert_eq!(
            tokens("host L { }"),
            vec![
                Token::Ident("host".into()),
                Token::Ident("L".into()),
                Token::LBrace,
                Token::RBrace,
                Token::Eof
            ]
        );
    }

    #[test]
    fn bandwidth_units() {
        assert_eq!(tokens("100Mbps")[0], Token::Bandwidth(100_000_000));
        assert_eq!(tokens("10Kbps")[0], Token::Bandwidth(10_000));
        assert_eq!(tokens("1Gbps")[0], Token::Bandwidth(1_000_000_000));
        assert_eq!(tokens("500KBps")[0], Token::Bandwidth(4_000_000));
        assert_eq!(tokens("1.5Mbps")[0], Token::Bandwidth(1_500_000));
        assert_eq!(tokens("42")[0], Token::Int(42));
        assert_eq!(tokens("42bps")[0], Token::Bandwidth(42));
    }

    #[test]
    fn percentages() {
        assert_eq!(tokens("80%")[0], Token::Percent(0.8));
    }

    #[test]
    fn strings_and_comments() {
        let toks = tokens("os \"Windows NT\"; # trailing comment\nhost");
        assert_eq!(
            toks,
            vec![
                Token::Ident("os".into()),
                Token::Str("Windows NT".into()),
                Token::Semi,
                Token::Ident("host".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn arrow_and_dot() {
        assert_eq!(
            tokens("L.eth0 <-> sw.p1"),
            vec![
                Token::Ident("L".into()),
                Token::Dot,
                Token::Ident("eth0".into()),
                Token::Arrow,
                Token::Ident("sw".into()),
                Token::Dot,
                Token::Ident("p1".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_cols() {
        let spanned = lex("host\n  L").unwrap();
        assert_eq!(spanned[0].span, Span::new(1, 1));
        assert_eq!(spanned[1].span, Span::new(2, 3));
    }

    #[test]
    fn errors() {
        assert!(matches!(
            lex("$"),
            Err(SpecError::UnexpectedChar { ch: '$', .. })
        ));
        assert!(matches!(
            lex("\"abc"),
            Err(SpecError::UnterminatedString { .. })
        ));
        assert!(matches!(lex("10Zbps"), Err(SpecError::UnknownUnit { .. })));
        assert!(matches!(lex("< x"), Err(SpecError::UnexpectedChar { .. })));
    }

    #[test]
    fn dotted_integers_lex_as_ip_parts() {
        // IPs must come through as INT . INT . INT . INT for the parser.
        assert_eq!(
            tokens("10.0.0.1"),
            vec![
                Token::Int(10),
                Token::Dot,
                Token::Int(0),
                Token::Dot,
                Token::Int(0),
                Token::Dot,
                Token::Int(1),
                Token::Eof
            ]
        );
        // But a fraction directly followed by a unit is one quantity.
        assert_eq!(tokens("2.5Mbps")[0], Token::Bandwidth(2_500_000));
        // Trailing dot without digits stays a separate Dot token.
        assert_eq!(
            tokens("1.x"),
            vec![
                Token::Int(1),
                Token::Dot,
                Token::Ident("x".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn ident_with_digits_and_dashes() {
        assert_eq!(tokens("S1 eth-0")[0], Token::Ident("S1".into()));
        assert_eq!(tokens("S1 eth-0")[1], Token::Ident("eth-0".into()));
    }
}
