//! Recursive-descent parser for the specification language.
//!
//! Grammar (EBNF, `#`-comments and whitespace insignificant):
//!
//! ```text
//! file        := decl* EOF
//! decl        := host | device | connection | qospath
//! host        := "host" IDENT "{" node-item* "}"
//! device      := "device" IDENT KIND "{" node-item* "}"     KIND := switch|hub|router
//! node-item   := "os" STR ";" | "address" ip ";" | "snmp" "community" STR ";"
//!              | "speed" BW ";" | interface
//! interface   := "interface" IDENT (";" | "{" if-item* "}")
//! if-item     := "speed" BW ";"
//! connection  := "connection" endpoint "<->" endpoint ";"
//! endpoint    := IDENT "." IDENT
//! qospath     := "qospath" IDENT "from" IDENT "to" IDENT "{" qos-item* "}"
//! qos-item    := "min_available" BW ";" | "max_utilization" PCT ";"
//! ip          := INT "." INT "." INT "." INT
//! ```

use crate::ast::*;
use crate::error::{Span, SpecError};
use crate::lexer::{lex, Spanned, Token};
use netqos_topology::NodeKind;

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Spanned {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Spanned {
        let t = self.peek().clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expected(&self, what: &'static str) -> SpecError {
        SpecError::Expected {
            span: self.peek().span,
            expected: what,
            found: self.peek().token.describe(),
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), SpecError> {
        match &self.peek().token {
            Token::Ident(_) => {
                let t = self.bump();
                match t.token {
                    Token::Ident(s) => Ok((s, t.span)),
                    _ => unreachable!(),
                }
            }
            _ => Err(self.expected("an identifier")),
        }
    }

    fn expect_keyword(&mut self, kw: &'static str) -> Result<Span, SpecError> {
        match &self.peek().token {
            Token::Ident(s) if s == kw => Ok(self.bump().span),
            _ => Err(SpecError::Expected {
                span: self.peek().span,
                expected: kw,
                found: self.peek().token.describe(),
            }),
        }
    }

    fn expect(&mut self, t: Token, what: &'static str) -> Result<Span, SpecError> {
        if self.peek().token == t {
            Ok(self.bump().span)
        } else {
            Err(self.expected(what))
        }
    }

    fn expect_string(&mut self) -> Result<String, SpecError> {
        match &self.peek().token {
            Token::Str(_) => {
                let t = self.bump();
                match t.token {
                    Token::Str(s) => Ok(s),
                    _ => unreachable!(),
                }
            }
            _ => Err(self.expected("a string literal")),
        }
    }

    fn expect_bandwidth(&mut self) -> Result<u64, SpecError> {
        match self.peek().token {
            Token::Bandwidth(b) => {
                self.bump();
                Ok(b)
            }
            Token::Int(n) => {
                self.bump();
                Ok(n) // bare numbers are bits/second
            }
            _ => Err(self.expected("a bandwidth (e.g. 100Mbps)")),
        }
    }

    /// An IPv4 address: INT . INT . INT . INT (validated structurally; the
    /// simulator validates ranges).
    fn expect_ip(&mut self) -> Result<String, SpecError> {
        let mut parts = Vec::with_capacity(4);
        for i in 0..4 {
            match self.peek().token {
                Token::Int(n) => {
                    self.bump();
                    parts.push(n.to_string());
                }
                _ => return Err(self.expected("an IPv4 address")),
            }
            if i < 3 {
                self.expect(Token::Dot, "`.` in IPv4 address")?;
            }
        }
        Ok(parts.join("."))
    }

    fn parse_file(&mut self) -> Result<SpecFile, SpecError> {
        let mut file = SpecFile::default();
        loop {
            match &self.peek().token {
                Token::Eof => return Ok(file),
                Token::Ident(kw) => match kw.as_str() {
                    "host" => {
                        let span = self.bump().span;
                        file.nodes.push(self.parse_node(NodeKind::Host, span)?);
                    }
                    "device" => {
                        let span = self.bump().span;
                        let (_name_peek, _) = (self.peek().token.clone(), ());
                        // device NAME KIND { ... }
                        let (name, _) = self.expect_ident()?;
                        let (kind_word, kind_span) = self.expect_ident()?;
                        let kind: NodeKind =
                            kind_word.parse().map_err(|_| SpecError::UnknownKind {
                                span: kind_span,
                                kind: kind_word.clone(),
                            })?;
                        let mut node = self.parse_node_body(name, kind, span)?;
                        node.span = span;
                        file.nodes.push(node);
                    }
                    "connection" => {
                        let span = self.bump().span;
                        let a = self.parse_endpoint()?;
                        self.expect(Token::Arrow, "`<->`")?;
                        let b = self.parse_endpoint()?;
                        self.expect(Token::Semi, "`;`")?;
                        file.connections.push(ConnectionDecl { a, b, span });
                    }
                    "qospath" => {
                        let span = self.bump().span;
                        file.qos_paths.push(self.parse_qospath(span)?);
                    }
                    "application" => {
                        let span = self.bump().span;
                        file.applications.push(self.parse_application(span)?);
                    }
                    _ => {
                        return Err(self.expected(
                            "`host`, `device`, `connection`, `application`, or `qospath`",
                        ))
                    }
                },
                _ => return Err(self.expected("a declaration")),
            }
        }
    }

    fn parse_node(&mut self, kind: NodeKind, span: Span) -> Result<NodeDecl, SpecError> {
        let (name, _) = self.expect_ident()?;
        self.parse_node_body(name, kind, span)
    }

    fn parse_node_body(
        &mut self,
        name: String,
        kind: NodeKind,
        span: Span,
    ) -> Result<NodeDecl, SpecError> {
        let mut node = NodeDecl::new(&name, kind);
        node.span = span;
        self.expect(Token::LBrace, "`{`")?;
        loop {
            match &self.peek().token {
                Token::RBrace => {
                    self.bump();
                    return Ok(node);
                }
                Token::Ident(kw) => {
                    let kw = kw.clone();
                    let kw_span = self.peek().span;
                    match kw.as_str() {
                        "os" => {
                            self.bump();
                            let v = self.expect_string()?;
                            if node.os.replace(v).is_some() {
                                return Err(SpecError::DuplicateProperty {
                                    span: kw_span,
                                    name: "os".into(),
                                });
                            }
                            self.expect(Token::Semi, "`;`")?;
                        }
                        "address" => {
                            self.bump();
                            let v = self.expect_ip()?;
                            if node.address.replace(v).is_some() {
                                return Err(SpecError::DuplicateProperty {
                                    span: kw_span,
                                    name: "address".into(),
                                });
                            }
                            self.expect(Token::Semi, "`;`")?;
                        }
                        "snmp" => {
                            self.bump();
                            self.expect_keyword("community")?;
                            let v = self.expect_string()?;
                            if node.snmp_community.replace(v).is_some() {
                                return Err(SpecError::DuplicateProperty {
                                    span: kw_span,
                                    name: "snmp community".into(),
                                });
                            }
                            self.expect(Token::Semi, "`;`")?;
                        }
                        "speed" => {
                            self.bump();
                            let v = self.expect_bandwidth()?;
                            if node.default_speed.replace(v).is_some() {
                                return Err(SpecError::DuplicateProperty {
                                    span: kw_span,
                                    name: "speed".into(),
                                });
                            }
                            self.expect(Token::Semi, "`;`")?;
                        }
                        "interface" => {
                            self.bump();
                            node.interfaces.push(self.parse_interface(kw_span)?);
                        }
                        _ => {
                            return Err(self
                                .expected("`os`, `address`, `snmp`, `speed`, `interface`, or `}`"))
                        }
                    }
                }
                _ => return Err(self.expected("a node property or `}`")),
            }
        }
    }

    fn parse_interface(&mut self, span: Span) -> Result<InterfaceDecl, SpecError> {
        let (local_name, _) = self.expect_ident()?;
        let mut decl = InterfaceDecl {
            local_name,
            speed_bps: None,
            span,
        };
        match self.peek().token {
            Token::Semi => {
                self.bump();
                Ok(decl)
            }
            Token::LBrace => {
                self.bump();
                loop {
                    match &self.peek().token {
                        Token::RBrace => {
                            self.bump();
                            return Ok(decl);
                        }
                        Token::Ident(kw) if kw == "speed" => {
                            let kw_span = self.peek().span;
                            self.bump();
                            let v = self.expect_bandwidth()?;
                            if decl.speed_bps.replace(v).is_some() {
                                return Err(SpecError::DuplicateProperty {
                                    span: kw_span,
                                    name: "speed".into(),
                                });
                            }
                            self.expect(Token::Semi, "`;`")?;
                        }
                        _ => return Err(self.expected("`speed` or `}`")),
                    }
                }
            }
            _ => Err(self.expected("`;` or `{`")),
        }
    }

    /// `application NAME on HOST ( ";" | "{" ("pinned" ";")* "}" )`
    fn parse_application(&mut self, span: Span) -> Result<AppDecl, SpecError> {
        let (name, _) = self.expect_ident()?;
        self.expect_keyword("on")?;
        let (host, _) = self.expect_ident()?;
        let mut decl = AppDecl {
            name,
            host,
            pinned: false,
            span,
        };
        match self.peek().token {
            Token::Semi => {
                self.bump();
                Ok(decl)
            }
            Token::LBrace => {
                self.bump();
                loop {
                    match &self.peek().token {
                        Token::RBrace => {
                            self.bump();
                            return Ok(decl);
                        }
                        Token::Ident(kw) if kw == "pinned" => {
                            self.bump();
                            decl.pinned = true;
                            self.expect(Token::Semi, "`;`")?;
                        }
                        _ => return Err(self.expected("`pinned` or `}`")),
                    }
                }
            }
            _ => Err(self.expected("`;` or `{`")),
        }
    }

    fn parse_endpoint(&mut self) -> Result<EndpointRef, SpecError> {
        let (node, _) = self.expect_ident()?;
        self.expect(Token::Dot, "`.`")?;
        let (interface, _) = self.expect_ident()?;
        Ok(EndpointRef { node, interface })
    }

    fn parse_qospath(&mut self, span: Span) -> Result<QosPathDecl, SpecError> {
        let (name, _) = self.expect_ident()?;
        self.expect_keyword("from")?;
        let (from, _) = self.expect_ident()?;
        self.expect_keyword("to")?;
        let (to, _) = self.expect_ident()?;
        let mut decl = QosPathDecl {
            name,
            from,
            to,
            min_available_bps: None,
            max_utilization: None,
            application: None,
            span,
        };
        self.expect(Token::LBrace, "`{`")?;
        loop {
            match &self.peek().token {
                Token::RBrace => {
                    self.bump();
                    return Ok(decl);
                }
                Token::Ident(kw) => {
                    let kw = kw.clone();
                    let kw_span = self.peek().span;
                    match kw.as_str() {
                        "min_available" => {
                            self.bump();
                            let v = self.expect_bandwidth()?;
                            if decl.min_available_bps.replace(v).is_some() {
                                return Err(SpecError::DuplicateProperty {
                                    span: kw_span,
                                    name: "min_available".into(),
                                });
                            }
                            self.expect(Token::Semi, "`;`")?;
                        }
                        "max_utilization" => {
                            self.bump();
                            let v = match self.peek().token {
                                Token::Percent(p) => {
                                    self.bump();
                                    p
                                }
                                _ => return Err(self.expected("a percentage (e.g. 80%)")),
                            };
                            if decl.max_utilization.replace(v).is_some() {
                                return Err(SpecError::DuplicateProperty {
                                    span: kw_span,
                                    name: "max_utilization".into(),
                                });
                            }
                            self.expect(Token::Semi, "`;`")?;
                        }
                        "application" => {
                            self.bump();
                            let (app, _) = self.expect_ident()?;
                            if decl.application.replace(app).is_some() {
                                return Err(SpecError::DuplicateProperty {
                                    span: kw_span,
                                    name: "application".into(),
                                });
                            }
                            self.expect(Token::Semi, "`;`")?;
                        }
                        _ => {
                            return Err(self.expected(
                                "`min_available`, `max_utilization`, `application`, or `}`",
                            ))
                        }
                    }
                }
                _ => return Err(self.expected("a qospath property or `}`")),
            }
        }
    }
}

/// Parses a specification file into its AST.
pub fn parse(src: &str) -> Result<SpecFile, SpecError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.parse_file()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        # A small system
        host L {
            os "Linux";
            address 10.0.0.1;
            snmp community "public";
            interface eth0 { speed 100Mbps; }
        }
        device sw switch {
            speed 100Mbps;
            interface p1;
            interface p2 { speed 10Mbps; }
        }
        connection L.eth0 <-> sw.p1;
        qospath track from L to L {
            min_available 500KBps;
            max_utilization 80%;
        }
    "#;

    #[test]
    fn parses_sample() {
        let f = parse(SAMPLE).unwrap();
        assert_eq!(f.nodes.len(), 2);
        assert_eq!(f.connections.len(), 1);
        assert_eq!(f.qos_paths.len(), 1);

        let l = &f.nodes[0];
        assert_eq!(l.name, "L");
        assert_eq!(l.kind, NodeKind::Host);
        assert_eq!(l.os.as_deref(), Some("Linux"));
        assert_eq!(l.address.as_deref(), Some("10.0.0.1"));
        assert_eq!(l.snmp_community.as_deref(), Some("public"));
        assert_eq!(l.interfaces[0].speed_bps, Some(100_000_000));

        let sw = &f.nodes[1];
        assert_eq!(sw.kind, NodeKind::Switch);
        assert_eq!(sw.default_speed, Some(100_000_000));
        assert_eq!(sw.interfaces.len(), 2);
        assert_eq!(sw.interfaces[0].speed_bps, None);
        assert_eq!(sw.interfaces[1].speed_bps, Some(10_000_000));

        let c = &f.connections[0];
        assert_eq!(c.a.to_string(), "L.eth0");
        assert_eq!(c.b.to_string(), "sw.p1");

        let q = &f.qos_paths[0];
        assert_eq!(q.name, "track");
        assert_eq!(q.min_available_bps, Some(4_000_000));
        assert_eq!(q.max_utilization, Some(0.8));
    }

    #[test]
    fn empty_file_parses() {
        let f = parse("  # nothing here\n").unwrap();
        assert_eq!(f, SpecFile::default());
    }

    #[test]
    fn hub_and_router_kinds() {
        let f = parse("device h hub { interface p1; } device r router { interface p1; }").unwrap();
        assert_eq!(f.nodes[0].kind, NodeKind::Hub);
        assert_eq!(f.nodes[1].kind, NodeKind::Router);
    }

    #[test]
    fn unknown_kind_rejected() {
        let err = parse("device x bridge { }").unwrap_err();
        assert!(matches!(err, SpecError::UnknownKind { .. }));
    }

    #[test]
    fn duplicate_property_rejected() {
        let err = parse("host L { os \"a\"; os \"b\"; }").unwrap_err();
        assert!(matches!(err, SpecError::DuplicateProperty { .. }));
    }

    #[test]
    fn missing_semicolon_reported_with_position() {
        let err = parse("host L {\n  os \"a\"\n}").unwrap_err();
        match err {
            SpecError::Expected { span, .. } => assert_eq!(span.line, 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn garbage_after_decl_rejected() {
        assert!(parse("host L { } banana").is_err());
    }

    #[test]
    fn connection_requires_arrow() {
        assert!(parse("connection A.e0 -- B.e0;").is_err());
    }

    #[test]
    fn bare_number_speed_is_bps() {
        let f = parse("host L { interface e { speed 2500000; } }").unwrap();
        assert_eq!(f.nodes[0].interfaces[0].speed_bps, Some(2_500_000));
    }

    #[test]
    fn ip_address_structure_enforced() {
        assert!(parse("host L { address 10.0.0; }").is_err());
        assert!(parse("host L { address banana; }").is_err());
    }
}
