//! Property-based tests for the topology crate: traversal termination on
//! arbitrary (possibly cyclic) topologies and algebraic laws of the
//! bandwidth computation.

use netqos_topology::bandwidth::{self, IfRates, MapRates};
use netqos_topology::{path, IfIx, NetworkTopology, NodeId, NodeKind};
use proptest::prelude::*;

/// Strategy: a random topology with `n` nodes of random kinds and a random
/// set of connections among free interfaces. May contain cycles,
/// partitions, and self-loops through distinct interfaces.
fn arb_topology(max_nodes: usize, max_conns: usize) -> impl Strategy<Value = NetworkTopology> {
    let kinds = prop::sample::select(vec![
        NodeKind::Host,
        NodeKind::Switch,
        NodeKind::Hub,
        NodeKind::Router,
    ]);
    (
        prop::collection::vec((kinds, 1u32..5), 2..max_nodes),
        prop::collection::vec((any::<u32>(), any::<u32>()), 0..max_conns),
    )
        .prop_map(|(nodes, conn_seeds)| {
            let mut t = NetworkTopology::new();
            let mut ifaces: Vec<(NodeId, IfIx)> = Vec::new();
            for (i, (kind, n_if)) in nodes.into_iter().enumerate() {
                let id = t.add_node(&format!("n{i}"), kind).unwrap();
                for j in 0..n_if {
                    let ifix = t.add_interface(id, &format!("if{j}"), 10_000_000).unwrap();
                    ifaces.push((id, ifix));
                }
            }
            for (sa, sb) in conn_seeds {
                if ifaces.len() < 2 {
                    break;
                }
                let a = ifaces[sa as usize % ifaces.len()];
                let b = ifaces[sb as usize % ifaces.len()];
                // Ignore failures (already connected / self connection):
                // the builder enforces the 1-to-1 rule.
                let _ = t.connect(a, b);
            }
            t
        })
}

proptest! {
    /// Path traversal always terminates and, when it finds a path, the
    /// path is simple (no repeated nodes) and well-formed.
    #[test]
    fn traversal_terminates_and_paths_are_simple(t in arb_topology(12, 30)) {
        let n = t.node_count() as u32;
        for from in 0..n {
            for to in 0..n {
                if let Ok(p) = path::find_path(&t, NodeId(from), NodeId(to)) {
                    prop_assert_eq!(p.nodes.len(), p.connections.len() + 1);
                    prop_assert_eq!(p.nodes[0], NodeId(from));
                    prop_assert_eq!(*p.nodes.last().unwrap(), NodeId(to));
                    // Simple path: no node repeats.
                    let mut seen = std::collections::HashSet::new();
                    for node in &p.nodes {
                        prop_assert!(seen.insert(*node), "node repeated in path");
                    }
                }
            }
        }
    }

    /// Enumerating all simple paths never yields duplicates and respects
    /// the limit parameter.
    #[test]
    fn enumerate_respects_limit(t in arb_topology(8, 16), limit in 1usize..4) {
        let n = t.node_count() as u32;
        for from in 0..n.min(4) {
            for to in 0..n.min(4) {
                if from == to { continue; }
                let some = path::enumerate_paths(&t, NodeId(from), NodeId(to), limit).unwrap();
                prop_assert!(some.len() <= limit);
                let all = path::enumerate_paths(&t, NodeId(from), NodeId(to), 0).unwrap();
                let mut dedup = all.clone();
                dedup.dedup_by(|a, b| a.connections == b.connections);
                prop_assert_eq!(dedup.len(), all.len(), "duplicate paths enumerated");
                prop_assert!(some.len() <= all.len());
            }
        }
    }

    /// Bandwidth invariants on every connection of a random topology with
    /// random rates: used + available == capacity, used <= capacity.
    #[test]
    fn bandwidth_partition_invariant(
        t in arb_topology(10, 20),
        seeds in prop::collection::vec(0u64..30_000_000, 64),
    ) {
        let mut rates = MapRates::new();
        let mut k = 0usize;
        for (id, node) in t.nodes() {
            for (i, _) in node.interfaces.iter().enumerate() {
                let r = IfRates {
                    in_bps: seeds[k % seeds.len()],
                    out_bps: seeds[(k + 1) % seeds.len()],
                };
                k += 2;
                rates.set(id, IfIx(i as u32), r);
            }
        }
        for (conn, _) in t.connections() {
            let bw = bandwidth::connection_bandwidth(&t, conn, &rates).unwrap();
            prop_assert!(bw.used_bps <= bw.capacity_bps);
            prop_assert_eq!(bw.used_bps + bw.available_bps, bw.capacity_bps);
            let u = bw.utilization();
            prop_assert!((0.0..=1.0).contains(&u));
        }
    }

    /// Path available bandwidth equals the min over its connections and
    /// never exceeds any connection's capacity.
    #[test]
    fn path_available_is_min(t in arb_topology(10, 20), fill in 0u64..9_000_000) {
        let mut rates = MapRates::new();
        for (id, node) in t.nodes() {
            for (i, _) in node.interfaces.iter().enumerate() {
                rates.set(id, IfIx(i as u32), IfRates { in_bps: fill, out_bps: 0 });
            }
        }
        let n = t.node_count() as u32;
        for from in 0..n.min(5) {
            for to in 0..n.min(5) {
                if from == to { continue; }
                let Ok(p) = path::find_path(&t, NodeId(from), NodeId(to)) else { continue };
                let Ok(bw) = bandwidth::path_bandwidth(&t, &p, &rates) else { continue };
                let min = bw.connections.iter().map(|c| c.available_bps).min();
                prop_assert_eq!(Some(bw.available_bps), min);
                for c in &bw.connections {
                    prop_assert!(bw.available_bps <= c.capacity_bps);
                }
            }
        }
    }
}
