//! The network topology graph.
//!
//! Mirrors the data structures of the paper's Figure 2:
//!
//! ```text
//! Host            { host_name; LinkedList interfaces; … }
//! Interface       { localName; … }
//! HostPairConnection { Host host1; Interface if1; Host host2; Interface if2; }
//! NetworkTopology { LinkedList hosts; LinkedList hostPairConnections; }
//! ```
//!
//! with two deliberate generalisations: nodes carry a [`NodeKind`] (the
//! paper distinguishes hubs/switches informally — "B and D can be hosts
//! with multiple network connections, or network devices such as switches
//! or hubs"), and interfaces carry their static speed so bandwidth math
//! does not need a live `ifSpeed` query for every computation.

use crate::error::TopologyError;
use crate::ids::{ConnId, IfIx, NodeId};
use crate::kind::NodeKind;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One network interface on a node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interface {
    /// Local name unique within the owning node (e.g. `eth0`, `p3`).
    pub local_name: String,
    /// Static interface bandwidth in bits per second (MIB-II `ifSpeed`).
    pub speed_bps: u64,
    /// Connection this interface participates in, if any.
    pub connection: Option<ConnId>,
}

/// A host or network device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// System-wide unique node name.
    pub name: String,
    /// Role of the node (host / switch / hub / router).
    pub kind: NodeKind,
    /// Interfaces in `ifIndex` order (interface *i* has `ifIndex == i + 1`).
    pub interfaces: Vec<Interface>,
    /// Whether an SNMP agent is reachable on this node. Nodes without an
    /// agent (e.g. hosts S3–S6 of the paper's testbed) are monitored from
    /// the far end of their connections.
    pub snmp_capable: bool,
    /// SNMP community string used when polling this node.
    pub snmp_community: String,
}

/// One end of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Endpoint {
    /// Node the interface belongs to.
    pub node: NodeId,
    /// Interface index within the node.
    pub ifix: IfIx,
}

impl Endpoint {
    /// Convenience constructor.
    #[inline]
    pub fn new(node: NodeId, ifix: IfIx) -> Self {
        Endpoint { node, ifix }
    }
}

impl From<(NodeId, IfIx)> for Endpoint {
    fn from((node, ifix): (NodeId, IfIx)) -> Self {
        Endpoint { node, ifix }
    }
}

/// A physical 1-to-1 connection between two interfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Connection {
    /// First endpoint.
    pub a: Endpoint,
    /// Second endpoint.
    pub b: Endpoint,
}

impl Connection {
    /// Returns the endpoint on `node`, if the connection touches it.
    pub fn endpoint_on(&self, node: NodeId) -> Option<Endpoint> {
        if self.a.node == node {
            Some(self.a)
        } else if self.b.node == node {
            Some(self.b)
        } else {
            None
        }
    }

    /// Returns the endpoint *not* on `node`, if the connection touches
    /// `node`.
    pub fn other_end(&self, node: NodeId) -> Option<Endpoint> {
        if self.a.node == node {
            Some(self.b)
        } else if self.b.node == node {
            Some(self.a)
        } else {
            None
        }
    }

    /// True if the connection touches `node`.
    pub fn touches(&self, node: NodeId) -> bool {
        self.a.node == node || self.b.node == node
    }
}

/// The complete network topology of the real-time system under management.
///
/// Normally constructed from a DeSiDeRaTa specification file (see the
/// `netqos-spec` crate) but may also be built programmatically.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NetworkTopology {
    nodes: Vec<Node>,
    connections: Vec<Connection>,
    #[serde(skip)]
    name_index: HashMap<String, NodeId>,
}

impl NetworkTopology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node; the name must be unique within the topology.
    ///
    /// SNMP capability defaults to `false` with community `"public"`; use
    /// [`NetworkTopology::set_snmp`] to enable polling.
    pub fn add_node(&mut self, name: &str, kind: NodeKind) -> Result<NodeId, TopologyError> {
        if self.name_index.contains_key(name) {
            return Err(TopologyError::DuplicateNodeName(name.to_owned()));
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name: name.to_owned(),
            kind,
            interfaces: Vec::new(),
            snmp_capable: false,
            snmp_community: "public".to_owned(),
        });
        self.name_index.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Marks a node as SNMP-capable with the given community string.
    pub fn set_snmp(&mut self, node: NodeId, community: &str) -> Result<(), TopologyError> {
        let n = self.node_mut(node)?;
        n.snmp_capable = true;
        n.snmp_community = community.to_owned();
        Ok(())
    }

    /// Adds an interface to a node; the local name must be unique within
    /// that node. Returns the interface's index ([`IfIx`]).
    pub fn add_interface(
        &mut self,
        node: NodeId,
        local_name: &str,
        speed_bps: u64,
    ) -> Result<IfIx, TopologyError> {
        let node_name = self.node(node)?.name.clone();
        let n = self.node_mut(node)?;
        if n.interfaces.iter().any(|i| i.local_name == local_name) {
            return Err(TopologyError::DuplicateInterfaceName {
                node: node_name,
                interface: local_name.to_owned(),
            });
        }
        let ifix = IfIx(n.interfaces.len() as u32);
        n.interfaces.push(Interface {
            local_name: local_name.to_owned(),
            speed_bps,
            connection: None,
        });
        Ok(ifix)
    }

    /// Connects two interfaces. Both must exist and be unconnected: the LAN
    /// model requires connections to be strictly 1-to-1 (paper §3.2: "one
    /// interface may only be connected to one interface on another
    /// host/device").
    pub fn connect(
        &mut self,
        a: impl Into<Endpoint>,
        b: impl Into<Endpoint>,
    ) -> Result<ConnId, TopologyError> {
        let (a, b) = (a.into(), b.into());
        if a == b {
            let node = self.node(a.node)?.name.clone();
            let interface = self.interface(a.node, a.ifix)?.local_name.clone();
            return Err(TopologyError::SelfConnection { node, interface });
        }
        for ep in [a, b] {
            let node_name = self.node(ep.node)?.name.clone();
            let iface = self.interface(ep.node, ep.ifix)?;
            if iface.connection.is_some() {
                return Err(TopologyError::InterfaceAlreadyConnected {
                    node: node_name,
                    interface: iface.local_name.clone(),
                });
            }
        }
        let id = ConnId(self.connections.len() as u32);
        self.connections.push(Connection { a, b });
        self.nodes[a.node.index()].interfaces[a.ifix.index()].connection = Some(id);
        self.nodes[b.node.index()].interfaces[b.ifix.index()].connection = Some(id);
        Ok(id)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of connections.
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }

    /// Iterates over `(NodeId, &Node)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Iterates over `(ConnId, &Connection)` pairs.
    pub fn connections(&self) -> impl Iterator<Item = (ConnId, &Connection)> {
        self.connections
            .iter()
            .enumerate()
            .map(|(i, c)| (ConnId(i as u32), c))
    }

    /// Looks up a node by id.
    pub fn node(&self, id: NodeId) -> Result<&Node, TopologyError> {
        self.nodes
            .get(id.index())
            .ok_or(TopologyError::NoSuchNode(id))
    }

    fn node_mut(&mut self, id: NodeId) -> Result<&mut Node, TopologyError> {
        self.nodes
            .get_mut(id.index())
            .ok_or(TopologyError::NoSuchNode(id))
    }

    /// Looks up a node by name.
    pub fn node_by_name(&self, name: &str) -> Result<NodeId, TopologyError> {
        self.name_index
            .get(name)
            .copied()
            .ok_or_else(|| TopologyError::NoSuchNodeName(name.to_owned()))
    }

    /// Looks up an interface by node id and interface index.
    pub fn interface(&self, node: NodeId, ifix: IfIx) -> Result<&Interface, TopologyError> {
        let n = self.node(node)?;
        n.interfaces
            .get(ifix.index())
            .ok_or_else(|| TopologyError::NoSuchInterface {
                node: n.name.clone(),
                ifix,
            })
    }

    /// Looks up an interface index by its local name on a node.
    pub fn interface_by_name(&self, node: NodeId, name: &str) -> Result<IfIx, TopologyError> {
        let n = self.node(node)?;
        n.interfaces
            .iter()
            .position(|i| i.local_name == name)
            .map(|i| IfIx(i as u32))
            .ok_or_else(|| TopologyError::NoSuchInterfaceName {
                node: n.name.clone(),
                interface: name.to_owned(),
            })
    }

    /// Looks up a connection by id.
    pub fn connection(&self, id: ConnId) -> Result<&Connection, TopologyError> {
        self.connections
            .get(id.index())
            .ok_or(TopologyError::NoSuchNode(NodeId(id.0))) // unreachable in practice
    }

    /// All connections that touch `node`.
    pub fn connections_of(&self, node: NodeId) -> Vec<ConnId> {
        self.connections()
            .filter(|(_, c)| c.touches(node))
            .map(|(id, _)| id)
            .collect()
    }

    /// The nodes adjacent to `node` (one hop over any connection), with the
    /// connection that reaches them.
    pub fn neighbors(&self, node: NodeId) -> Vec<(NodeId, ConnId)> {
        self.connections()
            .filter_map(|(id, c)| c.other_end(node).map(|ep| (ep.node, id)))
            .collect()
    }

    /// Speed (bits/s) of a connection: the minimum of its two interface
    /// speeds, i.e. the rate the physical link actually negotiates.
    pub fn connection_speed(&self, id: ConnId) -> Result<u64, TopologyError> {
        let c = self.connection(id)?;
        let sa = self.interface(c.a.node, c.a.ifix)?.speed_bps;
        let sb = self.interface(c.b.node, c.b.ifix)?.speed_bps;
        Ok(sa.min(sb))
    }

    /// Human-readable description of a connection, e.g. `L.eth0 <-> sw.p1`.
    pub fn describe_connection(&self, id: ConnId) -> String {
        match self.connection(id) {
            Ok(c) => {
                let fmt_ep = |ep: &Endpoint| -> String {
                    let node = self
                        .node(ep.node)
                        .map(|n| n.name.clone())
                        .unwrap_or_else(|_| ep.node.to_string());
                    let ifname = self
                        .interface(ep.node, ep.ifix)
                        .map(|i| i.local_name.clone())
                        .unwrap_or_else(|_| ep.ifix.to_string());
                    format!("{node}.{ifname}")
                };
                format!("{} <-> {}", fmt_ep(&c.a), fmt_ep(&c.b))
            }
            Err(_) => id.to_string(),
        }
    }

    /// Rebuilds the internal name index. Needed after deserializing a
    /// topology with `serde`, because the index is not serialized.
    pub fn rebuild_index(&mut self) {
        self.name_index = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.name.clone(), NodeId(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_hosts_one_switch() -> (NetworkTopology, NodeId, NodeId, NodeId) {
        let mut t = NetworkTopology::new();
        let a = t.add_node("A", NodeKind::Host).unwrap();
        let sw = t.add_node("SW", NodeKind::Switch).unwrap();
        let b = t.add_node("B", NodeKind::Host).unwrap();
        let a0 = t.add_interface(a, "eth0", 100_000_000).unwrap();
        let p1 = t.add_interface(sw, "p1", 100_000_000).unwrap();
        let p2 = t.add_interface(sw, "p2", 100_000_000).unwrap();
        let b0 = t.add_interface(b, "eth0", 10_000_000).unwrap();
        t.connect((a, a0), (sw, p1)).unwrap();
        t.connect((sw, p2), (b, b0)).unwrap();
        (t, a, sw, b)
    }

    #[test]
    fn duplicate_node_name_rejected() {
        let mut t = NetworkTopology::new();
        t.add_node("A", NodeKind::Host).unwrap();
        assert_eq!(
            t.add_node("A", NodeKind::Switch),
            Err(TopologyError::DuplicateNodeName("A".into()))
        );
    }

    #[test]
    fn duplicate_interface_name_rejected() {
        let mut t = NetworkTopology::new();
        let a = t.add_node("A", NodeKind::Host).unwrap();
        t.add_interface(a, "eth0", 1).unwrap();
        assert!(matches!(
            t.add_interface(a, "eth0", 1),
            Err(TopologyError::DuplicateInterfaceName { .. })
        ));
    }

    #[test]
    fn connect_is_one_to_one() {
        let mut t = NetworkTopology::new();
        let a = t.add_node("A", NodeKind::Host).unwrap();
        let b = t.add_node("B", NodeKind::Host).unwrap();
        let c = t.add_node("C", NodeKind::Host).unwrap();
        let a0 = t.add_interface(a, "eth0", 1).unwrap();
        let b0 = t.add_interface(b, "eth0", 1).unwrap();
        let c0 = t.add_interface(c, "eth0", 1).unwrap();
        t.connect((a, a0), (b, b0)).unwrap();
        // a0 is now taken; a second connection through it must fail.
        assert!(matches!(
            t.connect((a, a0), (c, c0)),
            Err(TopologyError::InterfaceAlreadyConnected { .. })
        ));
    }

    #[test]
    fn self_connection_rejected() {
        let mut t = NetworkTopology::new();
        let a = t.add_node("A", NodeKind::Host).unwrap();
        let a0 = t.add_interface(a, "eth0", 1).unwrap();
        assert!(matches!(
            t.connect((a, a0), (a, a0)),
            Err(TopologyError::SelfConnection { .. })
        ));
    }

    #[test]
    fn two_interfaces_same_node_may_connect() {
        // A node may loop to itself through two distinct interfaces;
        // path traversal must still terminate (loop detection).
        let mut t = NetworkTopology::new();
        let a = t.add_node("A", NodeKind::Switch).unwrap();
        let p1 = t.add_interface(a, "p1", 1).unwrap();
        let p2 = t.add_interface(a, "p2", 1).unwrap();
        assert!(t.connect((a, p1), (a, p2)).is_ok());
    }

    #[test]
    fn neighbors_and_connections_of() {
        let (t, a, sw, b) = two_hosts_one_switch();
        let n = t.neighbors(sw);
        assert_eq!(n.len(), 2);
        assert!(n.iter().any(|(id, _)| *id == a));
        assert!(n.iter().any(|(id, _)| *id == b));
        assert_eq!(t.connections_of(a).len(), 1);
        assert_eq!(t.connections_of(sw).len(), 2);
    }

    #[test]
    fn connection_speed_is_min_of_ends() {
        let (t, _, _, _) = two_hosts_one_switch();
        // Connection 1 joins a 100 Mb/s switch port and a 10 Mb/s NIC.
        assert_eq!(t.connection_speed(ConnId(1)).unwrap(), 10_000_000);
        assert_eq!(t.connection_speed(ConnId(0)).unwrap(), 100_000_000);
    }

    #[test]
    fn describe_connection_names_both_ends() {
        let (t, _, _, _) = two_hosts_one_switch();
        assert_eq!(t.describe_connection(ConnId(0)), "A.eth0 <-> SW.p1");
    }

    #[test]
    fn lookup_by_name() {
        let (t, a, _, _) = two_hosts_one_switch();
        assert_eq!(t.node_by_name("A").unwrap(), a);
        assert!(t.node_by_name("Z").is_err());
        let ix = t.interface_by_name(a, "eth0").unwrap();
        assert_eq!(ix, IfIx(0));
        assert!(t.interface_by_name(a, "eth9").is_err());
    }

    #[test]
    fn snmp_flag_set() {
        let (mut t, a, _, _) = two_hosts_one_switch();
        assert!(!t.node(a).unwrap().snmp_capable);
        t.set_snmp(a, "lirtss").unwrap();
        let n = t.node(a).unwrap();
        assert!(n.snmp_capable);
        assert_eq!(n.snmp_community, "lirtss");
    }

    #[test]
    fn serde_round_trip_with_index_rebuild() {
        let (t, a, _, _) = two_hosts_one_switch();
        let json = serde_json_like(&t);
        // We avoid a serde_json dependency: round-trip through the type's
        // Clone + rebuild_index path instead, and check the index works.
        let mut t2 = t.clone();
        t2.rebuild_index();
        assert_eq!(t2.node_by_name("A").unwrap(), a);
        assert!(!json.is_empty());
    }

    // Tiny stand-in used by the test above so we exercise the Serialize
    // derive without pulling in serde_json.
    fn serde_json_like(t: &NetworkTopology) -> String {
        format!("{:?}", t)
    }
}
