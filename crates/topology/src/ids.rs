//! Strongly-typed identifiers for topology entities.
//!
//! All identifiers are plain indices into the owning [`NetworkTopology`]'s
//! vectors, wrapped in newtypes so that a node id cannot be confused with a
//! connection id at compile time. Identifiers are only meaningful relative
//! to the topology that issued them.
//!
//! [`NetworkTopology`]: crate::graph::NetworkTopology

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (host or network device) within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Index of an interface *within its owning node* (0-based).
///
/// This corresponds to `ifIndex − 1` in MIB-II terms: SNMP interface
/// indices are 1-based while `IfIx` is a plain vector index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IfIx(pub u32);

/// Identifier of a connection (physical cable) within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConnId(pub u32);

impl NodeId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl IfIx {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the 1-based MIB-II `ifIndex` for this interface.
    #[inline]
    pub fn if_index(self) -> u32 {
        self.0 + 1
    }

    /// Builds an `IfIx` from a 1-based MIB-II `ifIndex`.
    ///
    /// Returns `None` for `if_index == 0`, which is not a valid MIB-II
    /// interface index.
    #[inline]
    pub fn from_if_index(if_index: u32) -> Option<Self> {
        if_index.checked_sub(1).map(IfIx)
    }
}

impl ConnId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

impl fmt::Display for IfIx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "if#{}", self.0)
    }
}

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn if_index_round_trip() {
        let ix = IfIx(0);
        assert_eq!(ix.if_index(), 1);
        assert_eq!(IfIx::from_if_index(1), Some(IfIx(0)));
        assert_eq!(IfIx::from_if_index(42), Some(IfIx(41)));
    }

    #[test]
    fn if_index_zero_is_invalid() {
        assert_eq!(IfIx::from_if_index(0), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "node#3");
        assert_eq!(IfIx(1).to_string(), "if#1");
        assert_eq!(ConnId(7).to_string(), "conn#7");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(ConnId(0) < ConnId(9));
    }
}
