//! # netqos-topology
//!
//! Network topology model, communication-path traversal, and bandwidth
//! calculation for the netqos monitoring system.
//!
//! This crate implements the LAN model of *Monitoring Network QoS in a
//! Dynamic Real-Time System* (IPPS 2002), Section 3.2–3.3:
//!
//! * A topology is a set of **nodes** (hosts and network devices), each with
//!   one or more **interfaces**, plus a set of **connections**. A connection
//!   joins exactly two `(node, interface)` pairs — the 1-to-1 rule of the
//!   paper's Figure 1.
//! * The **communication path** between two hosts is found by a recursive
//!   traversal with infinite-loop detection ([`path::find_path`]).
//! * The **available bandwidth** of a path is the minimum of the available
//!   bandwidths of its connections, `A = min(a_1, …, a_n)`, where
//!   `a_i = m_i − u_i` ([`bandwidth`]). Used bandwidth `u_i` is computed
//!   differently for switch-connected interfaces (own traffic only) and for
//!   hub-connected interfaces (sum of all traffic through the hub, clamped
//!   to the hub speed).
//!
//! The crate is deliberately independent of SNMP and of the simulator: rates
//! are supplied through the [`bandwidth::RateProvider`] trait, so the same
//! algorithms run against live SNMP data, simulated counters, or test
//! fixtures.
//!
//! ## Example
//!
//! ```
//! use netqos_topology::{NetworkTopology, NodeKind, bandwidth, path};
//! use netqos_topology::bandwidth::{IfRates, MapRates};
//!
//! let mut topo = NetworkTopology::new();
//! let a = topo.add_node("A", NodeKind::Host).unwrap();
//! let sw = topo.add_node("SW", NodeKind::Switch).unwrap();
//! let b = topo.add_node("B", NodeKind::Host).unwrap();
//! let a0 = topo.add_interface(a, "eth0", 100_000_000).unwrap();
//! let s1 = topo.add_interface(sw, "p1", 100_000_000).unwrap();
//! let s2 = topo.add_interface(sw, "p2", 100_000_000).unwrap();
//! let b0 = topo.add_interface(b, "eth0", 100_000_000).unwrap();
//! topo.connect((a, a0), (sw, s1)).unwrap();
//! topo.connect((sw, s2), (b, b0)).unwrap();
//!
//! let p = path::find_path(&topo, a, b).unwrap();
//! assert_eq!(p.connections.len(), 2);
//!
//! let mut rates = MapRates::default();
//! rates.set(a, a0, IfRates { in_bps: 0, out_bps: 8_000_000 });
//! rates.set(b, b0, IfRates { in_bps: 8_000_000, out_bps: 0 });
//! let bw = bandwidth::path_bandwidth(&topo, &p, &rates).unwrap();
//! assert_eq!(bw.available_bps, 92_000_000);
//! ```

pub mod bandwidth;
pub mod error;
pub mod graph;
pub mod ids;
pub mod kind;
pub mod path;

pub use bandwidth::{ConnectionBandwidth, IfRates, PathBandwidth, RateProvider};
pub use error::TopologyError;
pub use graph::{Connection, Endpoint, Interface, NetworkTopology, Node};
pub use ids::{ConnId, IfIx, NodeId};
pub use kind::NodeKind;
pub use path::{find_path, CommPath};
