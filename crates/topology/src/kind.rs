//! Classification of topology nodes.
//!
//! The paper's LAN model distinguishes hosts from network devices, and —
//! crucially for bandwidth accounting — **switches** from **hubs**:
//!
//! > "a switch does not forward packets for one host to other hosts
//! > connected to the same switch. […] However, for hosts connected to
//! > hubs, all packets that go through the hub will be sent to every host
//! > connected to the hub."
//!
//! `Router` is included for forward compatibility with routed topologies;
//! for bandwidth purposes it behaves like a switch (selective forwarding).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The role a node plays in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// An end host running applications (and usually an SNMP daemon).
    Host,
    /// A learning switch: forwards unicast frames only toward their
    /// destination port.
    Switch,
    /// A repeater hub: every frame is repeated to every other port, so all
    /// attached interfaces share the hub's bandwidth.
    Hub,
    /// A router; treated like a switch for bandwidth accounting.
    Router,
}

impl NodeKind {
    /// True if the node is an end host rather than network equipment.
    #[inline]
    pub fn is_host(self) -> bool {
        matches!(self, NodeKind::Host)
    }

    /// True if the node is network equipment that relays frames.
    #[inline]
    pub fn is_network_device(self) -> bool {
        !self.is_host()
    }

    /// True if all ports of this node share one collision domain, so used
    /// bandwidth must be **summed** across all attached traffic
    /// (paper §3.3, hub rule).
    #[inline]
    pub fn is_shared_medium(self) -> bool {
        matches!(self, NodeKind::Hub)
    }

    /// True if the node forwards frames only to the destination port, so a
    /// connection's used bandwidth is just its own traffic
    /// (paper §3.3, switch rule).
    #[inline]
    pub fn forwards_selectively(self) -> bool {
        matches!(self, NodeKind::Switch | NodeKind::Router)
    }

    /// Canonical lowercase name, matching the specification language
    /// keywords (`host`, `switch`, `hub`, `router`).
    pub fn name(self) -> &'static str {
        match self {
            NodeKind::Host => "host",
            NodeKind::Switch => "switch",
            NodeKind::Hub => "hub",
            NodeKind::Router => "router",
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown node-kind keyword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownNodeKind(pub String);

impl fmt::Display for UnknownNodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown node kind `{}` (expected host, switch, hub, or router)",
            self.0
        )
    }
}

impl std::error::Error for UnknownNodeKind {}

impl FromStr for NodeKind {
    type Err = UnknownNodeKind;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "host" => Ok(NodeKind::Host),
            "switch" => Ok(NodeKind::Switch),
            "hub" => Ok(NodeKind::Hub),
            "router" => Ok(NodeKind::Router),
            other => Err(UnknownNodeKind(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_classification() {
        assert!(NodeKind::Host.is_host());
        assert!(!NodeKind::Host.is_network_device());
        assert!(!NodeKind::Host.is_shared_medium());
        assert!(!NodeKind::Host.forwards_selectively());
    }

    #[test]
    fn hub_is_shared_medium() {
        assert!(NodeKind::Hub.is_shared_medium());
        assert!(!NodeKind::Hub.forwards_selectively());
        assert!(NodeKind::Hub.is_network_device());
    }

    #[test]
    fn switch_and_router_forward_selectively() {
        for k in [NodeKind::Switch, NodeKind::Router] {
            assert!(k.forwards_selectively());
            assert!(!k.is_shared_medium());
            assert!(k.is_network_device());
        }
    }

    #[test]
    fn parse_round_trip() {
        for k in [
            NodeKind::Host,
            NodeKind::Switch,
            NodeKind::Hub,
            NodeKind::Router,
        ] {
            assert_eq!(k.name().parse::<NodeKind>().unwrap(), k);
            assert_eq!(k.to_string(), k.name());
        }
    }

    #[test]
    fn parse_unknown_kind_fails() {
        let err = "bridge".parse::<NodeKind>().unwrap_err();
        assert!(err.to_string().contains("bridge"));
    }
}
