//! Error types for topology construction and queries.

use crate::ids::{IfIx, NodeId};
use std::fmt;

/// Errors produced while building or querying a
/// [`NetworkTopology`](crate::graph::NetworkTopology).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A node with the same name already exists.
    DuplicateNodeName(String),
    /// An interface with the same local name already exists on the node.
    DuplicateInterfaceName { node: String, interface: String },
    /// The referenced node id is out of range.
    NoSuchNode(NodeId),
    /// The referenced node name does not exist.
    NoSuchNodeName(String),
    /// The referenced interface index is out of range for the node.
    NoSuchInterface { node: String, ifix: IfIx },
    /// The referenced interface name does not exist on the node.
    NoSuchInterfaceName { node: String, interface: String },
    /// The interface is already part of another connection; the LAN model
    /// requires connections to be 1-to-1 (paper §3.2).
    InterfaceAlreadyConnected { node: String, interface: String },
    /// Both ends of a connection are the same interface.
    SelfConnection { node: String, interface: String },
    /// No communication path exists between the two nodes.
    NoPath { from: String, to: String },
    /// More than one path exists and the caller required uniqueness.
    AmbiguousPath { from: String, to: String },
    /// A rate was required for an interface but the provider had none.
    MissingRate { node: String, ifix: IfIx },
    /// An interface has a zero speed, so bandwidth math is undefined.
    ZeroSpeed { node: String, interface: String },
    /// Path endpoints must be hosts, not network devices.
    EndpointNotHost(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DuplicateNodeName(name) => {
                write!(f, "duplicate node name `{name}`")
            }
            TopologyError::DuplicateInterfaceName { node, interface } => {
                write!(f, "duplicate interface `{interface}` on node `{node}`")
            }
            TopologyError::NoSuchNode(id) => write!(f, "no such node {id}"),
            TopologyError::NoSuchNodeName(name) => write!(f, "no such node `{name}`"),
            TopologyError::NoSuchInterface { node, ifix } => {
                write!(f, "node `{node}` has no interface {ifix}")
            }
            TopologyError::NoSuchInterfaceName { node, interface } => {
                write!(f, "node `{node}` has no interface named `{interface}`")
            }
            TopologyError::InterfaceAlreadyConnected { node, interface } => {
                write!(
                    f,
                    "interface `{node}.{interface}` is already connected; connections must be 1-to-1"
                )
            }
            TopologyError::SelfConnection { node, interface } => {
                write!(f, "cannot connect `{node}.{interface}` to itself")
            }
            TopologyError::NoPath { from, to } => {
                write!(f, "no communication path from `{from}` to `{to}`")
            }
            TopologyError::AmbiguousPath { from, to } => {
                write!(f, "multiple communication paths from `{from}` to `{to}`")
            }
            TopologyError::MissingRate { node, ifix } => {
                write!(f, "no traffic rate available for `{node}` {ifix}")
            }
            TopologyError::ZeroSpeed { node, interface } => {
                write!(f, "interface `{node}.{interface}` has zero speed")
            }
            TopologyError::EndpointNotHost(name) => {
                write!(f, "path endpoint `{name}` is not a host")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_names() {
        let e = TopologyError::DuplicateNodeName("L".into());
        assert!(e.to_string().contains("`L`"));
        let e = TopologyError::InterfaceAlreadyConnected {
            node: "sw".into(),
            interface: "p1".into(),
        };
        assert!(e.to_string().contains("sw.p1"));
        assert!(e.to_string().contains("1-to-1"));
    }
}
