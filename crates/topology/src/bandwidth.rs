//! Bandwidth calculation — the heart of the paper's §3.3.
//!
//! For a communication path of `n` connections with per-connection
//! available bandwidth `a_i`, the path's available bandwidth is
//!
//! ```text
//! A = min(a_1, a_2, …, a_n),          a_i = m_i − u_i
//! ```
//!
//! where `m_i` is the static capacity of connection *i* (MIB-II `ifSpeed`)
//! and `u_i` its used bandwidth. The used bandwidth is computed with two
//! different rules:
//!
//! * **Point-to-point rule** (switch or direct connections): "the amount of
//!   bandwidth used on a host connected to a switch is simply the amount of
//!   data transmitted as reported by SNMP polling from either the host or
//!   the switch": `u_i = t_i`, the traffic observed on either endpoint of
//!   the connection.
//! * **Shared-medium rule** (hub connections): "the amount of bandwidth
//!   used for a host connected to a hub is the sum of all the data sent to
//!   the hub": `u_i = t_1 + t_2 + … + t_n`, summed over every station
//!   attached to the hub's collision domain, and clamped so that "u_i
//!   cannot exceed the maximum speed of the hub".
//!
//! Traffic `t` for an interface is the sum of its receive and transmit
//! rates (`ifInOctets` + `ifOutOctets` deltas, in bits/s). This is the
//! paper's scalar model; per-direction rates remain accessible through
//! [`IfRates`] for full-duplex-aware consumers.
//!
//! A note on the shared-medium sum: like the paper's formula, traffic
//! exchanged between two stations on the *same* hub is counted at both
//! stations (once as transmit, once as receive). The paper's experiments —
//! and typical RM deployments — route hub traffic through the uplink, where
//! the sum is exact. Uplinks to selective forwarders (switches/routers) are
//! excluded from the sum precisely to avoid double-counting traffic that is
//! already observed at a station.

use crate::error::TopologyError;
use crate::graph::{Endpoint, NetworkTopology};
use crate::ids::{ConnId, IfIx, NodeId};

use crate::path::CommPath;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Observed traffic rates of one interface, in bits per second.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IfRates {
    /// Receive rate (from `ifInOctets` deltas).
    pub in_bps: u64,
    /// Transmit rate (from `ifOutOctets` deltas).
    pub out_bps: u64,
}

impl IfRates {
    /// Total traffic `t` of the interface: receive + transmit.
    #[inline]
    pub fn total_bps(&self) -> u64 {
        self.in_bps + self.out_bps
    }

    /// The same traffic as seen from the far end of the connection:
    /// transmit and receive swap roles.
    #[inline]
    pub fn mirrored(&self) -> IfRates {
        IfRates {
            in_bps: self.out_bps,
            out_bps: self.in_bps,
        }
    }
}

/// Source of live traffic rates. Implemented by the SNMP monitor
/// (`netqos-monitor`), by simulator ground-truth probes, and by test
/// fixtures.
pub trait RateProvider {
    /// Rates observed for the given interface, or `None` if this interface
    /// is not monitored (e.g. its node has no SNMP agent).
    fn rates(&self, node: NodeId, ifix: IfIx) -> Option<IfRates>;
}

/// Simple `HashMap`-backed [`RateProvider`] for tests and offline analysis.
#[derive(Debug, Clone, Default)]
pub struct MapRates {
    map: HashMap<(NodeId, IfIx), IfRates>,
}

impl MapRates {
    /// Creates an empty provider.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the rates of an interface.
    pub fn set(&mut self, node: NodeId, ifix: IfIx, rates: IfRates) {
        self.map.insert((node, ifix), rates);
    }

    /// Removes an interface's rates.
    pub fn clear(&mut self, node: NodeId, ifix: IfIx) {
        self.map.remove(&(node, ifix));
    }
}

impl RateProvider for MapRates {
    fn rates(&self, node: NodeId, ifix: IfIx) -> Option<IfRates> {
        self.map.get(&(node, ifix)).copied()
    }
}

/// Which accounting rule produced a connection's used bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BandwidthRule {
    /// Own traffic only (switch / direct connections).
    PointToPoint,
    /// Sum of all traffic in the hub collision domain.
    SharedMedium,
}

/// Bandwidth figures for a single connection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionBandwidth {
    /// The connection.
    pub conn: ConnId,
    /// Static capacity `m_i` in bits/s (min of the endpoint speeds).
    pub capacity_bps: u64,
    /// Used bandwidth `u_i` in bits/s (clamped to `capacity_bps`).
    pub used_bps: u64,
    /// Available bandwidth `a_i = m_i − u_i` in bits/s.
    pub available_bps: u64,
    /// Accounting rule applied.
    pub rule: BandwidthRule,
}

impl ConnectionBandwidth {
    /// Fractional utilisation `u_i / m_i` in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity_bps == 0 {
            0.0
        } else {
            self.used_bps as f64 / self.capacity_bps as f64
        }
    }
}

/// Bandwidth figures for a whole communication path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathBandwidth {
    /// Available bandwidth of the path: `A = min(a_i)`.
    pub available_bps: u64,
    /// Used bandwidth at the bottleneck connection (the argmin of `a_i`).
    pub used_bps: u64,
    /// The bottleneck connection.
    pub bottleneck: ConnId,
    /// Per-connection detail, in path order.
    pub connections: Vec<ConnectionBandwidth>,
}

/// Traffic observed on a connection, preferring the requested endpoint and
/// falling back to the mirrored rates of the opposite endpoint. Returns
/// `None` when neither end is monitored.
fn endpoint_rates(
    rates: &dyn RateProvider,
    at: Endpoint,
    other: Endpoint,
) -> Option<(IfRates, Endpoint)> {
    if let Some(r) = rates.rates(at.node, at.ifix) {
        return Some((r, at));
    }
    rates
        .rates(other.node, other.ifix)
        .map(|r| (r.mirrored(), other))
}

/// Collects the full shared-medium domain containing `hub`: the hub itself
/// plus any hubs cascaded to it (hub-to-hub cables join collision domains).
pub fn hub_domain(topo: &NetworkTopology, hub: NodeId) -> Vec<NodeId> {
    let mut domain = vec![hub];
    let mut stack = vec![hub];
    while let Some(h) = stack.pop() {
        for (next, _) in topo.neighbors(h) {
            if let Ok(n) = topo.node(next) {
                if n.kind.is_shared_medium() && !domain.contains(&next) {
                    domain.push(next);
                    stack.push(next);
                }
            }
        }
    }
    domain.sort();
    domain
}

/// Used bandwidth of a shared-medium (hub) domain: the sum of traffic of
/// every attached station, excluding uplinks to selective forwarders
/// (already accounted at the stations) and the hub-to-hub cables
/// themselves.
///
/// Returns `(sum_bps, stations_counted)`.
fn shared_medium_used(
    topo: &NetworkTopology,
    domain: &[NodeId],
    rates: &dyn RateProvider,
) -> Result<(u64, usize), TopologyError> {
    let mut sum = 0u64;
    let mut counted = 0usize;
    for &hub in domain {
        for conn_id in topo.connections_of(hub) {
            let conn = topo.connection(conn_id)?;
            let hub_end = conn.endpoint_on(hub).expect("connection touches hub");
            let far = conn.other_end(hub).expect("connection touches hub");
            let far_kind = topo.node(far.node)?.kind;
            if far_kind.is_shared_medium() {
                continue; // hub-to-hub cable inside the domain
            }
            if far_kind.forwards_selectively() {
                continue; // uplink: its traffic is already counted at stations
            }
            // Prefer the station's own counters; fall back to the hub port.
            match endpoint_rates(rates, far, hub_end) {
                Some((r, _)) => {
                    sum = sum.saturating_add(r.total_bps());
                    counted += 1;
                }
                None => {
                    return Err(TopologyError::MissingRate {
                        node: topo.node(far.node)?.name.clone(),
                        ifix: far.ifix,
                    })
                }
            }
        }
    }
    Ok((sum, counted))
}

/// Computes the bandwidth of one connection, applying the hub rule when
/// either endpoint is a shared-medium device.
pub fn connection_bandwidth(
    topo: &NetworkTopology,
    conn_id: ConnId,
    rates: &dyn RateProvider,
) -> Result<ConnectionBandwidth, TopologyError> {
    let conn = *topo.connection(conn_id)?;
    let capacity = topo.connection_speed(conn_id)?;
    if capacity == 0 {
        let node = topo.node(conn.a.node)?;
        return Err(TopologyError::ZeroSpeed {
            node: node.name.clone(),
            interface: topo.interface(conn.a.node, conn.a.ifix)?.local_name.clone(),
        });
    }

    let a_kind = topo.node(conn.a.node)?.kind;
    let b_kind = topo.node(conn.b.node)?.kind;

    let (used, rule) = if a_kind.is_shared_medium() || b_kind.is_shared_medium() {
        let hub = if a_kind.is_shared_medium() {
            conn.a.node
        } else {
            conn.b.node
        };
        let domain = hub_domain(topo, hub);
        let (sum, _) = shared_medium_used(topo, &domain, rates)?;
        (sum, BandwidthRule::SharedMedium)
    } else {
        // Point-to-point: traffic observed at either end. Prefer the
        // non-device end (the host NIC) when both are monitored, matching
        // the paper's presentation; the mirrored values are identical in a
        // loss-free interval anyway.
        let (first, second) = if b_kind.is_network_device() && !a_kind.is_network_device() {
            (conn.a, conn.b)
        } else {
            (conn.b, conn.a)
        };
        match endpoint_rates(rates, first, second) {
            Some((r, _)) => (r.total_bps(), BandwidthRule::PointToPoint),
            None => {
                return Err(TopologyError::MissingRate {
                    node: topo.node(first.node)?.name.clone(),
                    ifix: first.ifix,
                })
            }
        }
    };

    let used = used.min(capacity); // "u_i cannot exceed the maximum speed"
    Ok(ConnectionBandwidth {
        conn: conn_id,
        capacity_bps: capacity,
        used_bps: used,
        available_bps: capacity - used,
        rule,
    })
}

/// Computes the bandwidth of a whole communication path:
/// `A = min(a_1 … a_n)` with per-connection detail.
///
/// A zero-hop path (same source and destination host) yields an error-free
/// result with `available_bps == u64::MAX` and no connections; callers
/// normally guard against this case.
pub fn path_bandwidth(
    topo: &NetworkTopology,
    path: &CommPath,
    rates: &dyn RateProvider,
) -> Result<PathBandwidth, TopologyError> {
    let mut conns = Vec::with_capacity(path.connections.len());
    for &c in &path.connections {
        conns.push(connection_bandwidth(topo, c, rates)?);
    }
    let bottleneck = conns
        .iter()
        .min_by_key(|c| c.available_bps)
        .map(|c| (c.conn, c.available_bps, c.used_bps));
    match bottleneck {
        Some((conn, avail, used)) => Ok(PathBandwidth {
            available_bps: avail,
            used_bps: used,
            bottleneck: conn,
            connections: conns,
        }),
        None => Ok(PathBandwidth {
            available_bps: u64::MAX,
            used_bps: 0,
            bottleneck: ConnId(u32::MAX),
            connections: conns,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::NodeKind;
    use crate::path::find_path;

    /// switch net:  A - sw - B, 100 Mb/s everywhere.
    fn switch_net() -> (NetworkTopology, NodeId, NodeId, NodeId) {
        let mut t = NetworkTopology::new();
        let a = t.add_node("A", NodeKind::Host).unwrap();
        let sw = t.add_node("sw", NodeKind::Switch).unwrap();
        let b = t.add_node("B", NodeKind::Host).unwrap();
        let a0 = t.add_interface(a, "eth0", 100_000_000).unwrap();
        let p1 = t.add_interface(sw, "p1", 100_000_000).unwrap();
        let p2 = t.add_interface(sw, "p2", 100_000_000).unwrap();
        let b0 = t.add_interface(b, "eth0", 100_000_000).unwrap();
        t.connect((a, a0), (sw, p1)).unwrap();
        t.connect((sw, p2), (b, b0)).unwrap();
        (t, a, sw, b)
    }

    /// hub net: N1, N2, N3 on a 10 Mb/s hub.
    fn hub_net() -> (NetworkTopology, Vec<NodeId>, NodeId) {
        let mut t = NetworkTopology::new();
        let hub = t.add_node("hub", NodeKind::Hub).unwrap();
        for i in 0..3 {
            t.add_interface(hub, &format!("h{i}"), 10_000_000).unwrap();
        }
        let mut hosts = Vec::new();
        for (i, name) in ["N1", "N2", "N3"].iter().enumerate() {
            let n = t.add_node(name, NodeKind::Host).unwrap();
            let n0 = t.add_interface(n, "eth0", 10_000_000).unwrap();
            t.connect((n, n0), (hub, IfIx(i as u32))).unwrap();
            hosts.push(n);
        }
        (t, hosts, hub)
    }

    #[test]
    fn switch_connection_counts_only_own_traffic() {
        let (t, a, _, b) = switch_net();
        let mut rates = MapRates::new();
        rates.set(
            b,
            IfIx(0),
            IfRates {
                in_bps: 8_000_000,
                out_bps: 0,
            },
        );
        rates.set(a, IfIx(0), IfRates::default());
        let path = find_path(&t, a, b).unwrap();
        let bw = path_bandwidth(&t, &path, &rates).unwrap();
        // Bottleneck is the sw->B connection with 8 Mb/s of traffic.
        assert_eq!(bw.used_bps, 8_000_000);
        assert_eq!(bw.available_bps, 92_000_000);
        // The A-side connection is idle.
        let idle = &bw.connections[0];
        assert_eq!(idle.used_bps, 0);
        assert_eq!(idle.rule, BandwidthRule::PointToPoint);
    }

    #[test]
    fn hub_connection_sums_all_stations() {
        let (t, hosts, _) = hub_net();
        let mut rates = MapRates::new();
        // N2 receives 2 Mb/s, N3 receives 1 Mb/s; N1 idle.
        rates.set(hosts[0], IfIx(0), IfRates::default());
        rates.set(
            hosts[1],
            IfIx(0),
            IfRates {
                in_bps: 2_000_000,
                out_bps: 0,
            },
        );
        rates.set(
            hosts[2],
            IfIx(0),
            IfRates {
                in_bps: 1_000_000,
                out_bps: 0,
            },
        );
        let path = find_path(&t, hosts[0], hosts[1]).unwrap();
        let bw = path_bandwidth(&t, &path, &rates).unwrap();
        // Every hub connection carries the *sum*: 3 Mb/s.
        for c in &bw.connections {
            assert_eq!(c.rule, BandwidthRule::SharedMedium);
            assert_eq!(c.used_bps, 3_000_000);
            assert_eq!(c.available_bps, 7_000_000);
        }
        assert_eq!(bw.available_bps, 7_000_000);
    }

    #[test]
    fn hub_sum_clamped_to_hub_speed() {
        let (t, hosts, _) = hub_net();
        let mut rates = MapRates::new();
        for &h in &hosts {
            rates.set(
                h,
                IfIx(0),
                IfRates {
                    in_bps: 6_000_000,
                    out_bps: 0,
                },
            );
        }
        let path = find_path(&t, hosts[0], hosts[1]).unwrap();
        let bw = path_bandwidth(&t, &path, &rates).unwrap();
        // 18 Mb/s of reported traffic clamps to the 10 Mb/s medium.
        assert_eq!(bw.used_bps, 10_000_000);
        assert_eq!(bw.available_bps, 0);
    }

    #[test]
    fn hub_uplink_to_switch_not_double_counted() {
        // LIRTSS-style: sw -- hub -- N1/N2; traffic L->N1 is observed both
        // on the uplink switch port and at N1. The sum must count it once.
        let mut t = NetworkTopology::new();
        let sw = t.add_node("sw", NodeKind::Switch).unwrap();
        let p1 = t.add_interface(sw, "p1", 100_000_000).unwrap();
        let p8 = t.add_interface(sw, "p8", 10_000_000).unwrap();
        let hub = t.add_node("hub", NodeKind::Hub).unwrap();
        for i in 0..3 {
            t.add_interface(hub, &format!("h{i}"), 10_000_000).unwrap();
        }
        let s1 = t.add_node("S1", NodeKind::Host).unwrap();
        let s10 = t.add_interface(s1, "eth0", 100_000_000).unwrap();
        t.connect((s1, s10), (sw, p1)).unwrap();
        t.connect((sw, p8), (hub, IfIx(0))).unwrap();
        let n1 = t.add_node("N1", NodeKind::Host).unwrap();
        let n10 = t.add_interface(n1, "eth0", 10_000_000).unwrap();
        t.connect((n1, n10), (hub, IfIx(1))).unwrap();
        let n2 = t.add_node("N2", NodeKind::Host).unwrap();
        let n20 = t.add_interface(n2, "eth0", 10_000_000).unwrap();
        t.connect((n2, n20), (hub, IfIx(2))).unwrap();

        let mut rates = MapRates::new();
        // 4 Mb/s flowing somewhere -> N1 via the uplink.
        rates.set(s1, IfIx(0), IfRates::default());
        rates.set(
            sw,
            p8,
            IfRates {
                in_bps: 0,
                out_bps: 4_000_000,
            },
        );
        rates.set(
            n1,
            IfIx(0),
            IfRates {
                in_bps: 4_000_000,
                out_bps: 0,
            },
        );
        rates.set(n2, IfIx(0), IfRates::default());

        let path = find_path(&t, s1, n1).unwrap();
        let bw = path_bandwidth(&t, &path, &rates).unwrap();
        // Hub segment used bandwidth: exactly 4 Mb/s, not 8.
        let hub_conns: Vec<_> = bw
            .connections
            .iter()
            .filter(|c| c.rule == BandwidthRule::SharedMedium)
            .collect();
        assert_eq!(hub_conns.len(), 2); // sw<->hub and hub<->N1
        for c in hub_conns {
            assert_eq!(c.used_bps, 4_000_000, "conn {:?}", c.conn);
        }
    }

    #[test]
    fn hub_station_without_agent_falls_back_to_hub_port() {
        let (t, hosts, hub) = hub_net();
        let mut rates = MapRates::new();
        // N1, N2 have agents; N3 does not, but the hub port h2 is polled.
        rates.set(hosts[0], IfIx(0), IfRates::default());
        rates.set(hosts[1], IfIx(0), IfRates::default());
        rates.set(
            hub,
            IfIx(2),
            IfRates {
                in_bps: 0,
                out_bps: 5_000_000,
            },
        );
        let path = find_path(&t, hosts[0], hosts[1]).unwrap();
        let bw = path_bandwidth(&t, &path, &rates).unwrap();
        // 5 Mb/s leaving hub port h2 equals N3 receiving 5 Mb/s.
        assert_eq!(bw.used_bps, 5_000_000);
    }

    #[test]
    fn missing_rates_error_names_the_interface() {
        let (t, a, _, b) = switch_net();
        let rates = MapRates::new();
        let path = find_path(&t, a, b).unwrap();
        let err = path_bandwidth(&t, &path, &rates).unwrap_err();
        assert!(matches!(err, TopologyError::MissingRate { .. }));
    }

    #[test]
    fn switch_side_polling_substitutes_for_agentless_host() {
        // Paper: "even though there is no SNMP demon on either S4 or S5,
        // the bandwidth between S4 and S5 can still be monitored by polling
        // the interfaces on the switch".
        let (t, a, sw, b) = switch_net();
        let mut rates = MapRates::new();
        rates.set(
            sw,
            IfIx(0),
            IfRates {
                in_bps: 3_000_000,
                out_bps: 0,
            },
        ); // port to A
        rates.set(
            sw,
            IfIx(1),
            IfRates {
                in_bps: 0,
                out_bps: 3_000_000,
            },
        ); // port to B
        let path = find_path(&t, a, b).unwrap();
        let bw = path_bandwidth(&t, &path, &rates).unwrap();
        assert_eq!(bw.used_bps, 3_000_000);
        assert_eq!(bw.available_bps, 97_000_000);
    }

    #[test]
    fn cascaded_hubs_form_one_domain() {
        let mut t = NetworkTopology::new();
        let h1 = t.add_node("h1", NodeKind::Hub).unwrap();
        let h2 = t.add_node("h2", NodeKind::Hub).unwrap();
        for h in [h1, h2] {
            for i in 0..3 {
                t.add_interface(h, &format!("p{i}"), 10_000_000).unwrap();
            }
        }
        t.connect((h1, IfIx(2)), (h2, IfIx(2))).unwrap();
        let a = t.add_node("A", NodeKind::Host).unwrap();
        let a0 = t.add_interface(a, "eth0", 10_000_000).unwrap();
        t.connect((a, a0), (h1, IfIx(0))).unwrap();
        let b = t.add_node("B", NodeKind::Host).unwrap();
        let b0 = t.add_interface(b, "eth0", 10_000_000).unwrap();
        t.connect((b, b0), (h2, IfIx(0))).unwrap();

        assert_eq!(hub_domain(&t, h1), vec![h1, h2]);

        let mut rates = MapRates::new();
        rates.set(
            a,
            IfIx(0),
            IfRates {
                in_bps: 0,
                out_bps: 2_000_000,
            },
        );
        rates.set(
            b,
            IfIx(0),
            IfRates {
                in_bps: 2_000_000,
                out_bps: 0,
            },
        );
        let path = find_path(&t, a, b).unwrap();
        let bw = path_bandwidth(&t, &path, &rates).unwrap();
        // A->B crosses both hubs; counted at A (tx) and B (rx) = 4 Mb/s,
        // the documented shared-domain over-count for intra-domain traffic.
        assert_eq!(bw.used_bps, 4_000_000);
    }

    #[test]
    fn utilization_fraction() {
        let c = ConnectionBandwidth {
            conn: ConnId(0),
            capacity_bps: 10_000_000,
            used_bps: 2_500_000,
            available_bps: 7_500_000,
            rule: BandwidthRule::PointToPoint,
        };
        assert!((c.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_hop_path_bandwidth() {
        let (t, a, _, _) = switch_net();
        let path = find_path(&t, a, a).unwrap();
        let bw = path_bandwidth(&t, &path, &MapRates::new()).unwrap();
        assert_eq!(bw.available_bps, u64::MAX);
        assert!(bw.connections.is_empty());
    }

    #[test]
    fn mirrored_rates_swap_directions() {
        let r = IfRates {
            in_bps: 1,
            out_bps: 2,
        };
        assert_eq!(
            r.mirrored(),
            IfRates {
                in_bps: 2,
                out_bps: 1
            }
        );
        assert_eq!(r.total_bps(), r.mirrored().total_bps());
    }
}
