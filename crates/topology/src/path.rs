//! Communication-path traversal.
//!
//! Implements the paper's §3.3 traversal: "A simple recursive algorithm is
//! designed to traverse the path, with a necessary infinite-loop detecting
//! function implemented. The result of the path is described as a series of
//! network connections."
//!
//! The traversal is a depth-first search over connections with a visited
//! set on nodes. In a correctly-specified LAN (a tree), the path between
//! two hosts is unique; [`find_path`] returns the first path found, while
//! [`find_unique_path`] additionally verifies that no alternative exists
//! and reports [`TopologyError::AmbiguousPath`] otherwise.

use crate::error::TopologyError;
use crate::graph::NetworkTopology;
use crate::ids::{ConnId, NodeId};
use serde::{Deserialize, Serialize};

/// A communication path between two nodes: the ordered list of connections
/// crossed, plus the node sequence for convenience.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommPath {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Connections crossed, in order from `from` to `to`.
    pub connections: Vec<ConnId>,
    /// Nodes visited, in order; `nodes.len() == connections.len() + 1`,
    /// `nodes[0] == from`, `nodes.last() == to`.
    pub nodes: Vec<NodeId>,
}

impl CommPath {
    /// Number of connections (hops) in the path.
    pub fn len(&self) -> usize {
        self.connections.len()
    }

    /// True for a degenerate zero-hop path (from == to).
    pub fn is_empty(&self) -> bool {
        self.connections.is_empty()
    }

    /// Renders the path as `A -(A.eth0 <-> SW.p1)-> SW -...-> B`.
    pub fn describe(&self, topo: &NetworkTopology) -> String {
        let mut out = String::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let name = topo
                .node(*node)
                .map(|n| n.name.clone())
                .unwrap_or_else(|_| node.to_string());
            out.push_str(&name);
            if let Some(conn) = self.connections.get(i) {
                out.push_str(&format!(" -({})-> ", topo.describe_connection(*conn)));
            }
        }
        out
    }
}

/// Finds a communication path from `from` to `to` by recursive traversal
/// with loop detection. Returns the first path found in deterministic
/// (connection-id) order.
///
/// Errors with [`TopologyError::NoPath`] when the nodes are disconnected.
pub fn find_path(
    topo: &NetworkTopology,
    from: NodeId,
    to: NodeId,
) -> Result<CommPath, TopologyError> {
    netqos_telemetry::global()
        .counter("netqos_topology_path_queries_total")
        .inc();
    let mut paths = enumerate_paths(topo, from, to, 1)?;
    match paths.pop() {
        Some(p) => Ok(p),
        None => Err(TopologyError::NoPath {
            from: topo.node(from)?.name.clone(),
            to: topo.node(to)?.name.clone(),
        }),
    }
}

/// Like [`find_path`] but verifies the path is unique; a second distinct
/// path yields [`TopologyError::AmbiguousPath`]. Use this when loading a
/// topology that is supposed to be a tree (no redundant links), so that a
/// mis-specified loop is caught at startup rather than silently picking an
/// arbitrary route.
pub fn find_unique_path(
    topo: &NetworkTopology,
    from: NodeId,
    to: NodeId,
) -> Result<CommPath, TopologyError> {
    let mut paths = enumerate_paths(topo, from, to, 2)?;
    match paths.len() {
        0 => Err(TopologyError::NoPath {
            from: topo.node(from)?.name.clone(),
            to: topo.node(to)?.name.clone(),
        }),
        1 => Ok(paths.pop().expect("len checked")),
        _ => Err(TopologyError::AmbiguousPath {
            from: topo.node(from)?.name.clone(),
            to: topo.node(to)?.name.clone(),
        }),
    }
}

/// Enumerates up to `limit` simple paths from `from` to `to` (DFS with a
/// visited set on nodes — the loop-detection function of the paper).
///
/// `limit == 0` enumerates all simple paths.
pub fn enumerate_paths(
    topo: &NetworkTopology,
    from: NodeId,
    to: NodeId,
    limit: usize,
) -> Result<Vec<CommPath>, TopologyError> {
    // Validate endpoints exist up front so errors carry names.
    topo.node(from)?;
    topo.node(to)?;

    let mut out = Vec::new();
    if from == to {
        out.push(CommPath {
            from,
            to,
            connections: Vec::new(),
            nodes: vec![from],
        });
        return Ok(out);
    }

    let mut visited = vec![false; topo.node_count()];
    let mut conn_stack: Vec<ConnId> = Vec::new();
    let mut node_stack: Vec<NodeId> = vec![from];
    visited[from.index()] = true;
    dfs(
        topo,
        from,
        to,
        limit,
        &mut visited,
        &mut conn_stack,
        &mut node_stack,
        &mut out,
    );
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    topo: &NetworkTopology,
    at: NodeId,
    to: NodeId,
    limit: usize,
    visited: &mut [bool],
    conn_stack: &mut Vec<ConnId>,
    node_stack: &mut Vec<NodeId>,
    out: &mut Vec<CommPath>,
) {
    if limit != 0 && out.len() >= limit {
        return;
    }
    for (next, conn) in topo.neighbors(at) {
        if limit != 0 && out.len() >= limit {
            return;
        }
        if visited[next.index()] {
            continue; // infinite-loop detection: never revisit a node
        }
        conn_stack.push(conn);
        node_stack.push(next);
        if next == to {
            out.push(CommPath {
                from: node_stack[0],
                to,
                connections: conn_stack.clone(),
                nodes: node_stack.clone(),
            });
        } else {
            visited[next.index()] = true;
            dfs(topo, next, to, limit, visited, conn_stack, node_stack, out);
            visited[next.index()] = false;
        }
        conn_stack.pop();
        node_stack.pop();
    }
}

/// Computes paths between every unordered pair of **hosts** in the
/// topology. Pairs with no path are skipped; use the returned list's length
/// against the expected `n*(n-1)/2` to detect partitions.
pub fn all_host_pairs(topo: &NetworkTopology) -> Vec<CommPath> {
    let hosts: Vec<NodeId> = topo
        .nodes()
        .filter(|(_, n)| n.kind.is_host())
        .map(|(id, _)| id)
        .collect();
    let mut out = Vec::new();
    for (i, &a) in hosts.iter().enumerate() {
        for &b in &hosts[i + 1..] {
            if let Ok(p) = find_path(topo, a, b) {
                out.push(p);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::NodeKind;

    /// Builds the paper's Figure 3 testbed: switch with L, S1..S6 and an
    /// uplink to a hub carrying N1, N2.
    fn lirtss() -> NetworkTopology {
        let mut t = NetworkTopology::new();
        let sw = t.add_node("switch", NodeKind::Switch).unwrap();
        let hub = t.add_node("hub", NodeKind::Hub).unwrap();
        for i in 1..=9 {
            t.add_interface(sw, &format!("p{i}"), 100_000_000).unwrap();
        }
        for i in 1..=3 {
            t.add_interface(hub, &format!("h{i}"), 10_000_000).unwrap();
        }
        for (port, name) in ["L", "S1", "S2", "S3", "S4", "S5", "S6"]
            .into_iter()
            .enumerate()
        {
            let h = t.add_node(name, NodeKind::Host).unwrap();
            let h0 = t.add_interface(h, "eth0", 100_000_000).unwrap();
            t.connect((h, h0), (sw, crate::ids::IfIx(port as u32)))
                .unwrap();
        }
        // switch p8 <-> hub h1
        t.connect((sw, crate::ids::IfIx(7)), (hub, crate::ids::IfIx(0)))
            .unwrap();
        for (i, name) in ["N1", "N2"].iter().enumerate() {
            let h = t.add_node(name, NodeKind::Host).unwrap();
            let h0 = t.add_interface(h, "eth0", 10_000_000).unwrap();
            t.connect((h, h0), (hub, crate::ids::IfIx(1 + i as u32)))
                .unwrap();
        }
        t
    }

    #[test]
    fn path_s1_to_n1_crosses_switch_and_hub() {
        let t = lirtss();
        let s1 = t.node_by_name("S1").unwrap();
        let n1 = t.node_by_name("N1").unwrap();
        let p = find_path(&t, s1, n1).unwrap();
        // S1 -> switch -> hub -> N1 : 3 connections, 4 nodes.
        assert_eq!(p.len(), 3);
        assert_eq!(p.nodes.len(), 4);
        let names: Vec<_> = p
            .nodes
            .iter()
            .map(|n| t.node(*n).unwrap().name.clone())
            .collect();
        assert_eq!(names, ["S1", "switch", "hub", "N1"]);
    }

    #[test]
    fn path_is_unique_in_tree() {
        let t = lirtss();
        let s1 = t.node_by_name("S1").unwrap();
        let s2 = t.node_by_name("S2").unwrap();
        let p = find_unique_path(&t, s1, s2).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn zero_hop_path_for_same_node() {
        let t = lirtss();
        let l = t.node_by_name("L").unwrap();
        let p = find_path(&t, l, l).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.nodes, vec![l]);
    }

    #[test]
    fn disconnected_nodes_report_no_path() {
        let mut t = lirtss();
        let x = t.add_node("X", NodeKind::Host).unwrap();
        t.add_interface(x, "eth0", 1).unwrap();
        let l = t.node_by_name("L").unwrap();
        assert!(matches!(
            find_path(&t, l, x),
            Err(TopologyError::NoPath { .. })
        ));
    }

    #[test]
    fn traversal_terminates_on_cyclic_topology() {
        // Triangle of switches with two hosts: traversal must not loop.
        let mut t = NetworkTopology::new();
        let s: Vec<_> = (0..3)
            .map(|i| t.add_node(&format!("sw{i}"), NodeKind::Switch).unwrap())
            .collect();
        for &sw in &s {
            for p in 0..3 {
                t.add_interface(sw, &format!("p{p}"), 100).unwrap();
            }
        }
        use crate::ids::IfIx;
        t.connect((s[0], IfIx(0)), (s[1], IfIx(0))).unwrap();
        t.connect((s[1], IfIx(1)), (s[2], IfIx(0))).unwrap();
        t.connect((s[2], IfIx(1)), (s[0], IfIx(1))).unwrap();
        let a = t.add_node("A", NodeKind::Host).unwrap();
        let a0 = t.add_interface(a, "eth0", 100).unwrap();
        t.connect((a, a0), (s[0], IfIx(2))).unwrap();
        let b = t.add_node("B", NodeKind::Host).unwrap();
        let b0 = t.add_interface(b, "eth0", 100).unwrap();
        t.connect((b, b0), (s[1], IfIx(2))).unwrap();

        // Two distinct simple paths exist (clockwise / counter-clockwise).
        let all = enumerate_paths(&t, a, b, 0).unwrap();
        assert_eq!(all.len(), 2);
        assert!(matches!(
            find_unique_path(&t, a, b),
            Err(TopologyError::AmbiguousPath { .. })
        ));
        // find_path still succeeds deterministically.
        let p = find_path(&t, a, b).unwrap();
        assert!(p.len() == 2 || p.len() == 3);
    }

    #[test]
    fn self_loop_connection_does_not_hang_traversal() {
        let mut t = NetworkTopology::new();
        let sw = t.add_node("sw", NodeKind::Switch).unwrap();
        use crate::ids::IfIx;
        for p in 0..4 {
            t.add_interface(sw, &format!("p{p}"), 100).unwrap();
        }
        // Pathological: a cable from the switch to itself.
        t.connect((sw, IfIx(0)), (sw, IfIx(1))).unwrap();
        let a = t.add_node("A", NodeKind::Host).unwrap();
        let a0 = t.add_interface(a, "eth0", 100).unwrap();
        t.connect((a, a0), (sw, IfIx(2))).unwrap();
        let b = t.add_node("B", NodeKind::Host).unwrap();
        let b0 = t.add_interface(b, "eth0", 100).unwrap();
        t.connect((b, b0), (sw, IfIx(3))).unwrap();
        let p = find_path(&t, a, b).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn all_host_pairs_counts() {
        let t = lirtss();
        let hosts = 9; // L, S1..S6, N1, N2
        let pairs = all_host_pairs(&t);
        assert_eq!(pairs.len(), hosts * (hosts - 1) / 2);
    }

    #[test]
    fn describe_path_mentions_all_nodes() {
        let t = lirtss();
        let s1 = t.node_by_name("S1").unwrap();
        let n1 = t.node_by_name("N1").unwrap();
        let p = find_path(&t, s1, n1).unwrap();
        let d = p.describe(&t);
        for name in ["S1", "switch", "hub", "N1"] {
            assert!(d.contains(name), "{d} should contain {name}");
        }
    }
}
