//! Tracing-overhead benches: the same ingest + path-evaluation workload
//! as the `monitor` bench, run with no tracer, a disabled tracer (the
//! production default — must cost < 5%), and an enabled tracer (the
//! full span-recording price, paid only during forensics).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use netqos_monitor::poll::{DeviceSnapshot, IfSample};
use netqos_monitor::NetworkMonitor;
use netqos_telemetry::{FlightRecorder, Tracer};

fn make_snapshot(
    topo: &netqos_topology::NetworkTopology,
    node: netqos_topology::NodeId,
    k: u32,
) -> DeviceSnapshot {
    let n = topo.node(node).unwrap();
    DeviceSnapshot {
        uptime_ticks: k * 100,
        interfaces: n
            .interfaces
            .iter()
            .enumerate()
            .map(|(i, iface)| IfSample {
                if_index: i as u32 + 1,
                descr: iface.local_name.clone(),
                speed_bps: iface.speed_bps,
                in_octets: k.wrapping_mul(125_000 + i as u32),
                out_octets: k.wrapping_mul(12_500),
                in_ucast_pkts: k * 100,
                out_nucast_pkts: k,
            })
            .collect(),
    }
}

fn bench_trace_overhead(c: &mut Criterion) {
    let model = netqos_spec::parse_and_validate(netqos_bench::LIRTSS_SPEC).unwrap();
    let topo = model.topology.clone();
    let snmp_nodes = model.snmp_nodes();
    let mut group = c.benchmark_group("trace_overhead");

    for (label, tracer) in [
        ("ingest_paths_untraced", None),
        ("ingest_paths_tracer_disabled", Some(Tracer::disabled())),
        ("ingest_paths_tracer_enabled", Some(Tracer::new())),
    ] {
        let topo = topo.clone();
        let snmp_nodes = snmp_nodes.clone();
        let qos_paths = model.qos_paths.clone();
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let mut m = NetworkMonitor::new(topo.clone());
                    if let Some(t) = &tracer {
                        m.set_tracer(t.clone());
                    }
                    for &node in &snmp_nodes {
                        m.ingest(node, make_snapshot(&topo, node, 1)).unwrap();
                    }
                    m
                },
                |mut m| {
                    if let Some(t) = &tracer {
                        t.begin_cycle();
                    }
                    for &node in &snmp_nodes {
                        m.ingest(node, make_snapshot(&topo, node, 2)).unwrap();
                    }
                    for q in &qos_paths {
                        let _ = m.path_bandwidth(q.from, q.to).unwrap();
                    }
                    if let Some(t) = &tracer {
                        t.end_cycle()
                    } else {
                        Vec::new()
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_span_site(c: &mut Criterion) {
    let mut group = c.benchmark_group("span_site");
    // The cost of one instrumented site when tracing is off: one relaxed
    // atomic load and an inert guard.
    let disabled = Tracer::disabled();
    group.bench_function("disabled_span", |b| {
        b.iter(|| std::hint::black_box(disabled.span("bench", "noop")))
    });
    let enabled = Tracer::new();
    enabled.begin_cycle();
    group.bench_function("enabled_span", |b| {
        b.iter(|| std::hint::black_box(enabled.span("bench", "noop")))
    });
    group.finish();
}

fn bench_flight_export(c: &mut Criterion) {
    // Exporting a full ring (32 cycles of ~40 spans) to Chrome JSON —
    // the cost of one violation snapshot, paid off the hot path.
    let tracer = Tracer::new();
    let flight = FlightRecorder::new(32);
    for _ in 0..32 {
        let trace_id = tracer.begin_cycle();
        let start_ns = tracer.now_ns();
        {
            let _root = tracer.span("monitor", "cycle");
            for _ in 0..10 {
                let _outer = tracer.span("monitor.poll", "device");
                let _inner = tracer.span("snmp.codec", "decode");
                let _inner2 = tracer.span("monitor.delta", "ingest");
                let _inner3 = tracer.span("topology.path", "bandwidth");
            }
        }
        flight.push(netqos_telemetry::CycleTrace {
            seq: 0,
            trace_id,
            epoch_unix_ns: 1_722_000_000_000_000_000,
            start_ns,
            end_ns: tracer.now_ns(),
            spans: tracer.end_cycle(),
            samples: Vec::new(),
            events: Vec::new(),
        });
    }
    let cycles = flight.snapshot();
    let mut group = c.benchmark_group("flight_export");
    group.bench_function("chrome_trace_32_cycles", |b| {
        b.iter(|| netqos_telemetry::to_chrome_trace(std::hint::black_box(&cycles)))
    });
    group.bench_function("jsonl_32_cycles", |b| {
        b.iter(|| netqos_telemetry::to_jsonl(std::hint::black_box(&cycles)))
    });
    group.bench_function("otlp_32_cycles", |b| {
        b.iter(|| netqos_telemetry::to_otlp(std::hint::black_box(&cycles)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_trace_overhead,
    bench_span_site,
    bench_flight_export
);
criterion_main!(benches);
