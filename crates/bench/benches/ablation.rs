//! Criterion ablations on monitoring cost:
//!
//! * **poll style** — one chunked GetRequest per device (this monitor's
//!   choice) vs. a full GetNext table walk (the generic NMS pattern):
//!   message count and CPU per poll.
//! * **fleet size** — cost of a poll round as the number of monitored
//!   devices grows.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use netqos_monitor::poll;
use netqos_snmp::agent::SnmpAgent;
use netqos_snmp::client;
use netqos_snmp::mib::ScalarMib;
use netqos_snmp::mib2::{self, IfEntry, SystemInfo};
use netqos_snmp::Oid;

fn device_mib(ifs: u32) -> ScalarMib {
    let mut mib = ScalarMib::new();
    mib2::system::install(&mut mib, &SystemInfo::new("dev"), 100);
    let entries: Vec<IfEntry> = (1..=ifs)
        .map(|i| IfEntry::ethernet(i, &format!("p{i}"), 100_000_000, [2, 0, 0, 0, 0, i as u8]))
        .collect();
    mib2::interfaces::install(&mut mib, &entries);
    mib
}

/// The monitor's strategy: a single GetRequest carrying all needed OIDs.
fn poll_chunked(agent: &mut SnmpAgent, mib: &ScalarMib, ifs: u32) -> usize {
    let oids = poll::poll_oids(ifs);
    let req = client::build_get("public", 1, &oids).unwrap();
    let resp = agent.handle(&req, mib).unwrap();
    let parsed = client::parse_response(&resp).unwrap();
    poll::parse_snapshot(&parsed.bindings, ifs).unwrap();
    1 // messages exchanged
}

/// SNMPv2c bulk walk of the interfaces group (max-repetitions = 20).
fn poll_bulk_walk(agent: &mut SnmpAgent, mib: &ScalarMib) -> usize {
    let mut cur: Oid = "1.3.6.1.2.1.2".parse().unwrap();
    let stop: Oid = "1.3.6.1.2.1.3".parse().unwrap();
    let mut messages = 0usize;
    'outer: loop {
        let req = client::build_get_bulk("public", 1, 0, 20, std::slice::from_ref(&cur)).unwrap();
        messages += 1;
        let Some(resp) = agent.handle(&req, mib) else {
            break;
        };
        let parsed = client::parse_response(&resp).unwrap();
        if !parsed.error_status.is_ok() || parsed.bindings.is_empty() {
            break;
        }
        for vb in parsed.bindings {
            if vb.value.is_exception() || vb.oid >= stop {
                break 'outer;
            }
            cur = vb.oid;
        }
    }
    messages
}

/// The generic NMS strategy: walk the whole interfaces group.
fn poll_walk(agent: &mut SnmpAgent, mib: &ScalarMib) -> usize {
    let mut cur: Oid = "1.3.6.1.2.1.2".parse().unwrap();
    let stop: Oid = "1.3.6.1.2.1.3".parse().unwrap();
    let mut messages = 0usize;
    loop {
        let req = client::build_get_next("public", 1, std::slice::from_ref(&cur)).unwrap();
        messages += 1;
        let Some(resp) = agent.handle(&req, mib) else {
            break;
        };
        let parsed = client::parse_response(&resp).unwrap();
        if !parsed.error_status.is_ok() {
            break;
        }
        cur = parsed.bindings[0].oid.clone();
        if cur >= stop {
            break;
        }
    }
    messages
}

fn bench_poll_styles(c: &mut Criterion) {
    let mut group = c.benchmark_group("poll_style");
    for ifs in [1u32, 8, 24] {
        let mib = device_mib(ifs);
        group.bench_with_input(BenchmarkId::new("chunked_get", ifs), &ifs, |b, &ifs| {
            b.iter_batched(
                || SnmpAgent::new("public"),
                |mut agent| poll_chunked(&mut agent, &mib, ifs),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("getnext_walk", ifs), &ifs, |b, _| {
            b.iter_batched(
                || SnmpAgent::new("public"),
                |mut agent| poll_walk(&mut agent, &mib),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("v2c_bulk_walk", ifs), &ifs, |b, _| {
            b.iter_batched(
                || SnmpAgent::new("public"),
                |mut agent| poll_bulk_walk(&mut agent, &mib),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_fleet_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_size");
    for devices in [2usize, 6, 18] {
        let mibs: Vec<ScalarMib> = (0..devices).map(|_| device_mib(4)).collect();
        group.bench_with_input(BenchmarkId::new("poll_round", devices), &devices, |b, _| {
            b.iter_batched(
                || SnmpAgent::new("public"),
                |mut agent| {
                    for mib in &mibs {
                        poll_chunked(&mut agent, mib, 4);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_poll_styles, bench_fleet_size);
criterion_main!(benches);
