//! Tick-phase profiler benches: the cost of folding one traced cycle's
//! spans into the rolling phase tree (paid once per traced tick, off
//! the polling hot path), rendering the `/profile` documents, and the
//! pinned disabled-profiler invariant — a service without tracing never
//! reaches the profiler at all, so its per-span-site cost stays the
//! tracer's one relaxed atomic load (see `span_site/disabled_span` in
//! `trace.rs`; the ≤15ns acceptance bound rides on that bench).

use criterion::{criterion_group, criterion_main, Criterion};
use netqos_telemetry::{ProfileHub, Tracer};

/// One realistic traced cycle: a root, ten device polls each with
/// nested codec/delta work, and a path-evaluation phase.
fn traced_cycle(tracer: &Tracer) -> Vec<netqos_telemetry::SpanRecord> {
    tracer.begin_cycle();
    {
        let _root = tracer.span("monitor", "cycle");
        for _ in 0..10 {
            let _outer = tracer.span("monitor.poll", "device");
            let _inner = tracer.span("snmp.codec", "decode");
            let _inner2 = tracer.span("monitor.delta", "ingest");
        }
        let _qos = tracer.span("monitor.qos", "evaluate");
    }
    tracer.end_cycle()
}

fn bench_profile_record(c: &mut Criterion) {
    let tracer = Tracer::new();
    let spans = traced_cycle(&tracer);
    let mut group = c.benchmark_group("profile_record");
    // Steady-state fold: the window is full, so each record also evicts
    // the oldest cycle — the worst per-tick cost.
    let hub = ProfileHub::new(64);
    for _ in 0..64 {
        hub.record_spans(&spans);
    }
    group.bench_function("record_cycle_32_spans", |b| {
        b.iter(|| hub.record_spans(std::hint::black_box(&spans)))
    });
    group.finish();
}

fn bench_profile_render(c: &mut Criterion) {
    let tracer = Tracer::new();
    let hub = ProfileHub::new(256);
    for _ in 0..256 {
        hub.record_spans(&traced_cycle(&tracer));
    }
    let mut group = c.benchmark_group("profile_render");
    group.bench_function("folded", |b| {
        b.iter(|| std::hint::black_box(hub.to_folded()))
    });
    group.bench_function("json", |b| b.iter(|| std::hint::black_box(hub.to_json())));
    group.finish();
}

fn bench_disabled_path(c: &mut Criterion) {
    // The profiler's disabled story: with tracing off, end_cycle yields
    // no spans and record_spans degenerates to an empty-slice fold.
    // This is everything a non-traced tick pays beyond the tracer's own
    // disabled span sites.
    let hub = ProfileHub::new(256);
    let empty: Vec<netqos_telemetry::SpanRecord> = Vec::new();
    let mut group = c.benchmark_group("profile_disabled");
    group.bench_function("record_empty_cycle", |b| {
        b.iter(|| hub.record_spans(std::hint::black_box(&empty)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_profile_record,
    bench_profile_render,
    bench_disabled_path
);
criterion_main!(benches);
