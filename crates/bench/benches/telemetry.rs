//! Criterion benches for the self-telemetry hot path. The instruments sit
//! inside the SNMP codec, the poll loop, and every service tick, so a
//! single record must stay well under 100 ns — cheap enough to leave on
//! in the real-time system the paper targets.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use netqos_telemetry::Registry;

fn bench_record(c: &mut Criterion) {
    let registry = Registry::new();
    let counter = registry.counter("bench_counter_total");
    let gauge = registry.gauge("bench_gauge");
    let histogram = registry.histogram("bench_histogram_ns");

    let mut group = c.benchmark_group("telemetry");
    group.throughput(Throughput::Elements(1));
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    group.bench_function("gauge_set", |b| {
        let mut v = 0i64;
        b.iter(|| {
            v = v.wrapping_add(17);
            gauge.set(black_box(v));
        })
    });
    group.bench_function("histogram_record", |b| {
        let mut v = 1u64;
        b.iter(|| {
            // Vary the value so the bench covers many buckets, not one
            // cache-hot slot.
            v = v.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            histogram.record(black_box(v >> 32));
        })
    });
    group.finish();
}

fn bench_read_paths(c: &mut Criterion) {
    let registry = Registry::new();
    for i in 0..8 {
        registry.counter(&format!("c{i}_total")).add(i);
        let h = registry.histogram(&format!("h{i}_ns"));
        for v in 0..512u64 {
            h.record(v * 97);
        }
    }
    let h = registry.histogram("h0_ns");

    let mut group = c.benchmark_group("telemetry_read");
    group.bench_function("histogram_quantile_p99", |b| {
        b.iter(|| black_box(h.quantile(0.99)))
    });
    group.bench_function("registry_render_prometheus", |b| {
        b.iter(|| black_box(registry.render_prometheus().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_record, bench_read_paths);
criterion_main!(benches);
