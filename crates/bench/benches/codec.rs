//! Criterion benches for the SNMP codec path: message encode/decode and a
//! full request→agent→response→parse poll cycle. These bound the
//! per-poll CPU cost of the monitor, which determines how many devices a
//! single monitoring host can cover at a 1-second period.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use netqos_monitor::poll;
use netqos_snmp::agent::SnmpAgent;
use netqos_snmp::client;
use netqos_snmp::message::SnmpMessage;
use netqos_snmp::mib::ScalarMib;
use netqos_snmp::mib2::{self, IfEntry, SystemInfo};

fn switch_mib(ports: u32) -> ScalarMib {
    let mut mib = ScalarMib::new();
    mib2::system::install(&mut mib, &SystemInfo::new("switch1"), 123_456);
    let entries: Vec<IfEntry> = (1..=ports)
        .map(|i| {
            let mut e =
                IfEntry::ethernet(i, &format!("p{i}"), 100_000_000, [2, 0, 0, 0, 0, i as u8]);
            e.in_octets = i * 1_000_003;
            e.out_octets = i * 2_000_033;
            e
        })
        .collect();
    mib2::interfaces::install(&mut mib, &entries);
    mib
}

fn bench_encode_decode(c: &mut Criterion) {
    let oids = poll::poll_oids(8);
    let req = client::build_get("public", 7, &oids).unwrap();
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(req.len() as u64));

    group.bench_function("build_get_8if", |b| {
        b.iter(|| client::build_get("public", 7, &oids).unwrap())
    });
    group.bench_function("decode_message_8if", |b| {
        b.iter(|| SnmpMessage::decode(&req).unwrap())
    });
    group.finish();
}

fn bench_poll_cycle(c: &mut Criterion) {
    let mib = switch_mib(8);
    let oids = poll::poll_oids(8);
    c.bench_function("poll_cycle_switch_8if", |b| {
        b.iter_batched(
            || SnmpAgent::new("public"),
            |mut agent| {
                let req = client::build_get("public", 1, &oids).unwrap();
                let resp = agent.handle(&req, &mib).unwrap();
                let parsed = client::parse_response(&resp).unwrap();
                poll::parse_snapshot(&parsed.bindings, 8).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_mib_walk(c: &mut Criterion) {
    let mib = switch_mib(8);
    c.bench_function("agent_getnext_full_walk", |b| {
        b.iter_batched(
            || SnmpAgent::new("public"),
            |mut agent| {
                let mut cur: netqos_snmp::Oid = "1.3".parse().unwrap();
                let mut count = 0u32;
                loop {
                    let req =
                        client::build_get_next("public", 1, std::slice::from_ref(&cur)).unwrap();
                    let Some(resp) = agent.handle(&req, &mib) else {
                        break;
                    };
                    let parsed = client::parse_response(&resp).unwrap();
                    if !parsed.error_status.is_ok() {
                        break;
                    }
                    cur = parsed.bindings[0].oid.clone();
                    count += 1;
                }
                count
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_encode_decode,
    bench_poll_cycle,
    bench_mib_walk
);
criterion_main!(benches);
