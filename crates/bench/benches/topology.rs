//! Criterion benches for the topology algorithms: path traversal and
//! bandwidth computation on the LIRTSS testbed and on larger synthetic
//! LANs (scaling ablation: how big a system can be evaluated per poll).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netqos_bench::LIRTSS_SPEC;
use netqos_topology::bandwidth::{self, IfRates, MapRates};
use netqos_topology::{path, IfIx, NetworkTopology, NodeKind};

fn lirtss() -> NetworkTopology {
    netqos_spec::parse_and_validate(LIRTSS_SPEC)
        .unwrap()
        .topology
}

/// A synthetic two-tier LAN: `spines` switches, each with `leaves` hosts,
/// spines chained in a line.
fn synthetic(spines: u32, leaves: u32) -> NetworkTopology {
    let mut t = NetworkTopology::new();
    let mut spine_ids = Vec::new();
    for s in 0..spines {
        let sw = t.add_node(&format!("sw{s}"), NodeKind::Switch).unwrap();
        for p in 0..(leaves + 2) {
            t.add_interface(sw, &format!("p{p}"), 1_000_000_000)
                .unwrap();
        }
        spine_ids.push(sw);
    }
    for w in spine_ids.windows(2) {
        let a_if = t.interface_by_name(w[0], &format!("p{leaves}")).unwrap();
        let b_if = t
            .interface_by_name(w[1], &format!("p{}", leaves + 1))
            .unwrap();
        t.connect((w[0], a_if), (w[1], b_if)).unwrap();
    }
    for (s, &sw) in spine_ids.iter().enumerate() {
        for l in 0..leaves {
            let h = t.add_node(&format!("h{s}x{l}"), NodeKind::Host).unwrap();
            let h0 = t.add_interface(h, "eth0", 1_000_000_000).unwrap();
            t.connect((h, h0), (sw, IfIx(l))).unwrap();
        }
    }
    t
}

fn full_rates(t: &NetworkTopology) -> MapRates {
    let mut rates = MapRates::new();
    for (id, node) in t.nodes() {
        for (i, _) in node.interfaces.iter().enumerate() {
            rates.set(
                id,
                IfIx(i as u32),
                IfRates {
                    in_bps: 1_000_000,
                    out_bps: 2_000_000,
                },
            );
        }
    }
    rates
}

fn bench_lirtss_paths(c: &mut Criterion) {
    let t = lirtss();
    let s1 = t.node_by_name("S1").unwrap();
    let n1 = t.node_by_name("N1").unwrap();
    c.bench_function("find_path_lirtss_s1_n1", |b| {
        b.iter(|| path::find_path(&t, s1, n1).unwrap())
    });
    c.bench_function("all_host_pairs_lirtss", |b| {
        b.iter(|| path::all_host_pairs(&t))
    });
}

fn bench_lirtss_bandwidth(c: &mut Criterion) {
    let t = lirtss();
    let rates = full_rates(&t);
    let s1 = t.node_by_name("S1").unwrap();
    let n1 = t.node_by_name("N1").unwrap();
    let p = path::find_path(&t, s1, n1).unwrap();
    c.bench_function("path_bandwidth_lirtss_hub_path", |b| {
        b.iter(|| bandwidth::path_bandwidth(&t, &p, &rates).unwrap())
    });
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_scaling");
    for spines in [2u32, 8, 32] {
        let t = synthetic(spines, 8);
        let a = t.node_by_name("h0x0").unwrap();
        let z = t.node_by_name(&format!("h{}x7", spines - 1)).unwrap();
        group.bench_with_input(
            BenchmarkId::new("find_path_spines", spines),
            &spines,
            |b, _| b.iter(|| path::find_path(&t, a, z).unwrap()),
        );
        let rates = full_rates(&t);
        let p = path::find_path(&t, a, z).unwrap();
        group.bench_with_input(
            BenchmarkId::new("path_bandwidth_spines", spines),
            &spines,
            |b, _| b.iter(|| bandwidth::path_bandwidth(&t, &p, &rates).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lirtss_paths,
    bench_lirtss_bandwidth,
    bench_scaling
);
criterion_main!(benches);
