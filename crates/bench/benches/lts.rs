//! Criterion benches for the long-term stats store's two hot paths:
//! appending one tick's worth of samples (the per-tick cost the monitor
//! pays) and answering a `/query` range read (the cost a dashboard
//! pays). `cargo run --release -p netqos-bench --bin lts_bench` produces
//! the checked-in `BENCH_lts.json` from the same workloads.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use netqos_telemetry::{LtsConfig, LtsCounters, LtsReader, LtsStore, PointValue, Resolution};
use std::path::PathBuf;

const SERIES: usize = 16;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netqos-lts-bench-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn series_names() -> Vec<String> {
    (0..SERIES)
        .map(|i| format!("bench_series_{i}_total"))
        .collect()
}

/// A store pre-loaded with `ticks` seconds of counter points per series,
/// flushed so every point is on disk and downsampled.
fn loaded_store(tag: &str, ticks: u64) -> PathBuf {
    let dir = fresh_dir(tag);
    let mut store = LtsStore::open(&dir, LtsConfig::default(), LtsCounters::detached()).unwrap();
    let names = series_names();
    for t in 0..ticks {
        for name in &names {
            store.append(name, t, PointValue::Counter(t % 17));
        }
        if t % 500 == 499 {
            store.flush().unwrap();
        }
    }
    store.flush().unwrap();
    dir
}

fn bench_append(c: &mut Criterion) {
    let dir = fresh_dir("append");
    let mut store = LtsStore::open(&dir, LtsConfig::default(), LtsCounters::detached()).unwrap();
    let names = series_names();
    let mut t = 0u64;
    let mut group = c.benchmark_group("lts");
    // One iteration = one monitor tick: SERIES appends, plus the
    // amortized share of a flush every 60 ticks (the default cadence).
    group.throughput(Throughput::Elements(SERIES as u64));
    group.bench_function("append_tick_16_series", |b| {
        b.iter(|| {
            t += 1;
            for name in &names {
                store.append(black_box(name), t, PointValue::Counter(t));
            }
            if t.is_multiple_of(60) {
                store.flush().unwrap();
            }
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_query(c: &mut Criterion) {
    let dir = loaded_store("query", 3_600);
    let reader = LtsReader::open(&dir);
    let mut group = c.benchmark_group("lts_query");
    group.bench_function("range_1h_of_1s_one_series", |b| {
        b.iter(|| {
            black_box(
                reader
                    .query("bench_series_0_total", 0, 3_600, Resolution::Raw1s)
                    .len(),
            )
        })
    });
    group.bench_function("range_all_1m_all_series", |b| {
        b.iter(|| black_box(reader.query("*", 0, u64::MAX, Resolution::Min1).len()))
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_append, bench_query);
criterion_main!(benches);
