//! Criterion benches for the LAN simulator: how much simulated traffic
//! can be pushed per wall-clock second (frame events/s), for the switch
//! and hub forwarding paths.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netqos_sim::app::DiscardSink;
use netqos_sim::builder::LanBuilder;
use netqos_sim::packet::DISCARD_PORT;
use netqos_sim::time::SimDuration;
use netqos_sim::traffic::CbrSource;
use netqos_sim::PortIx;

/// 4 hosts on a switch, each blasting 1 MB/s at its ring neighbour for
/// one simulated second. Returns delivered frame count.
fn switch_lan_one_second() -> u64 {
    let mut b = LanBuilder::new();
    let sw = b.add_switch("sw", None).unwrap();
    for i in 0..4 {
        b.add_nic(sw, &format!("p{i}"), 100_000_000).unwrap();
    }
    let mut hosts = Vec::new();
    for i in 0..4 {
        let h = b
            .add_host(&format!("h{i}"), &format!("10.0.0.{}", i + 1))
            .unwrap();
        b.add_nic(h, "eth0", 100_000_000).unwrap();
        b.connect((h, PortIx(0)), (sw, PortIx(i))).unwrap();
        b.install_app(h, Box::new(DiscardSink::default()), Some(DISCARD_PORT))
            .unwrap();
        hosts.push(h);
    }
    for (i, &h) in hosts.iter().enumerate() {
        let dst = format!("10.0.0.{}", (i + 1) % 4 + 1);
        b.install_app(
            h,
            Box::new(CbrSource::new(
                dst.parse().unwrap(),
                DISCARD_PORT,
                1_000_000,
                1400,
            )),
            None,
        )
        .unwrap();
    }
    let mut lan = b.build();
    lan.run_for(SimDuration::from_secs(1));
    lan.stats().frames_delivered
}

/// 4 hosts on a 10 Mb/s hub, each at 100 KB/s (hub floods every frame to
/// every port).
fn hub_lan_one_second() -> u64 {
    let mut b = LanBuilder::new();
    let hub = b.add_hub("hub", 10_000_000).unwrap();
    for i in 0..4 {
        b.add_nic(hub, &format!("p{i}"), 10_000_000).unwrap();
    }
    let mut hosts = Vec::new();
    for i in 0..4 {
        let h = b
            .add_host(&format!("h{i}"), &format!("10.0.0.{}", i + 1))
            .unwrap();
        b.add_nic(h, "eth0", 10_000_000).unwrap();
        b.connect((h, PortIx(0)), (hub, PortIx(i))).unwrap();
        b.install_app(h, Box::new(DiscardSink::default()), Some(DISCARD_PORT))
            .unwrap();
        hosts.push(h);
    }
    for (i, &h) in hosts.iter().enumerate() {
        let dst = format!("10.0.0.{}", (i + 1) % 4 + 1);
        b.install_app(
            h,
            Box::new(CbrSource::new(
                dst.parse().unwrap(),
                DISCARD_PORT,
                100_000,
                1400,
            )),
            None,
        )
        .unwrap();
    }
    let mut lan = b.build();
    lan.run_for(SimDuration::from_secs(1));
    lan.stats().frames_delivered
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    let frames = switch_lan_one_second();
    group.throughput(Throughput::Elements(frames));
    group.bench_function("switch_4hosts_1s_of_1MBps_each", |b| {
        b.iter(switch_lan_one_second)
    });
    let frames = hub_lan_one_second();
    group.throughput(Throughput::Elements(frames));
    group.bench_function("hub_4hosts_1s_of_100KBps_each", |b| {
        b.iter(hub_lan_one_second)
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
