//! Criterion benches for the PromQL-subset query plane's two hot paths:
//! a `rate()` instant evaluation over an hour of 1s counter points (the
//! cost a dashboard refresh pays against one store) and a cross-shard
//! `query_range` through the federation engine (the cost the fleet view
//! pays, fan-out and JSON rendering included). `cargo run --release -p
//! netqos-bench --bin query_bench` produces the checked-in
//! `BENCH_query.json` from the same workloads.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netqos_telemetry::{
    HttpRequest, LtsConfig, LtsCounters, LtsReader, LtsSource, LtsStore, PointValue, QueryEngine,
    Resolution, SeriesSource, Shard, ShardRegistry,
};
use std::path::PathBuf;
use std::sync::Arc;

const SERIES: usize = 16;
const STORE_TICKS: u64 = 3_600;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netqos-query-bench-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A store holding an hour of 1s counter points per series, flushed so
/// every point is on disk at all resolutions.
fn loaded_store(tag: &str) -> PathBuf {
    let dir = fresh_dir(tag);
    let mut store = LtsStore::open(&dir, LtsConfig::default(), LtsCounters::detached()).unwrap();
    for t in 0..STORE_TICKS {
        for i in 0..SERIES {
            store.append(
                &format!("bench_series_{i}_total"),
                t,
                PointValue::Counter(t % 17),
            );
        }
        if t % 500 == 499 {
            store.flush().unwrap();
        }
    }
    store.flush().unwrap();
    dir
}

fn bench_rate_instant(c: &mut Criterion) {
    let dir = loaded_store("rate");
    let engine = QueryEngine::new().with_source(
        None,
        Arc::new(LtsSource::new(LtsReader::open(&dir))) as Arc<dyn SeriesSource>,
    );
    let mut group = c.benchmark_group("query");
    group.bench_function("rate_1h_of_1s_one_series", |b| {
        b.iter(|| {
            black_box(
                engine
                    .instant(
                        black_box("rate(bench_series_0_total[3600])"),
                        STORE_TICKS,
                        Resolution::Raw1s,
                    )
                    .unwrap(),
            )
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_cross_shard_range(c: &mut Criterion) {
    let dirs = [loaded_store("shard-a"), loaded_store("shard-b")];
    let fed = ShardRegistry::new();
    for (name, dir) in ["north", "south"].iter().zip(&dirs) {
        let shard = Shard::metrics_only(*name, netqos_telemetry::Registry::new())
            .with_promql(Arc::new(LtsSource::new(LtsReader::open(dir))));
        fed.register(shard).unwrap();
    }
    let req = HttpRequest {
        method: "GET".into(),
        path: "/api/v1/query_range".into(),
        query: format!("query=rate(bench_series_0_total[60])&start=60&end={STORE_TICKS}&step=60"),
        accept: String::new(),
    };
    let mut group = c.benchmark_group("query");
    group.bench_function("cross_shard_query_range_1h_step60", |b| {
        b.iter(|| {
            let resp = fed.promql_response(black_box(&req), true);
            assert_eq!(resp.status, 200);
            black_box(resp.body.len())
        })
    });
    group.finish();
    for dir in &dirs {
        std::fs::remove_dir_all(dir).ok();
    }
}

criterion_group!(benches, bench_rate_instant, bench_cross_shard_range);
criterion_main!(benches);
