//! Criterion benches for the monitoring pipeline on the full LIRTSS
//! testbed: one complete SNMP poll round through the simulated network,
//! and the pure ingest + path-evaluation cost (the per-period CPU budget
//! of the monitoring host).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use netqos_bench::testbed::{build_testbed, TestbedOptions};
use netqos_monitor::poll::{DeviceSnapshot, IfSample};
use netqos_monitor::NetworkMonitor;
use netqos_sim::time::SimDuration;

fn bench_poll_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor");
    group.sample_size(20);
    group.bench_function("lirtss_full_poll_round", |b| {
        b.iter_batched(
            || {
                let options = TestbedOptions {
                    noise_mean: None, // isolate the poll cost
                    agent_jitter_mean: None,
                    ..TestbedOptions::default()
                };
                build_testbed(&[], &options)
            },
            |mut tb| {
                tb.net.poll_round(&mut tb.monitor).unwrap();
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_ingest_and_paths(c: &mut Criterion) {
    let model = netqos_spec::parse_and_validate(netqos_bench::LIRTSS_SPEC).unwrap();
    let topo = model.topology.clone();
    let snmp_nodes = model.snmp_nodes();

    let make_snapshot = |node, k: u32| {
        let n = topo.node(node).unwrap();
        DeviceSnapshot {
            uptime_ticks: k * 100,
            interfaces: n
                .interfaces
                .iter()
                .enumerate()
                .map(|(i, iface)| IfSample {
                    if_index: i as u32 + 1,
                    descr: iface.local_name.clone(),
                    speed_bps: iface.speed_bps,
                    in_octets: k.wrapping_mul(125_000 + i as u32),
                    out_octets: k.wrapping_mul(12_500),
                    in_ucast_pkts: k * 100,
                    out_nucast_pkts: k,
                })
                .collect(),
        }
    };

    c.bench_function("ingest_6_devices_plus_4_paths", |b| {
        b.iter_batched(
            || {
                let mut m = NetworkMonitor::new(topo.clone());
                for &node in &snmp_nodes {
                    m.ingest(node, make_snapshot(node, 1)).unwrap();
                }
                m
            },
            |mut m| {
                for &node in &snmp_nodes {
                    m.ingest(node, make_snapshot(node, 2)).unwrap();
                }
                for q in &model.qos_paths {
                    let _ = m.path_bandwidth(q.from, q.to).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_rtt_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("latency_probe");
    group.sample_size(10);
    group.bench_function("rtt_s1_from_monitor", |b| {
        b.iter_batched(
            || {
                let options = TestbedOptions {
                    noise_mean: None,
                    ..TestbedOptions::default()
                };
                build_testbed(&[], &options)
            },
            |mut tb| {
                let s1 = tb.monitor.topology().node_by_name("S1").unwrap();
                tb.net
                    .measure_rtt(s1, 4, 64, SimDuration::from_millis(100))
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_poll_round,
    bench_ingest_and_paths,
    bench_rtt_probe
);
criterion_main!(benches);
