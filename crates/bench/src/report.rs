//! Unified `BENCH_*.json` result documents.
//!
//! Every checked-in benchmark result uses one schema so tooling (the
//! `netqos bench check` regression gate, CI smoke jobs, plotting
//! scripts) can read any of them without per-bench parsers:
//!
//! ```json
//! {
//!   "schema": "netqos-bench/v1",
//!   "bench": "lts",
//!   "rows": [
//!     {
//!       "name": "append",
//!       "params": { "series": 16, "ticks": 20000 },
//!       "metrics": { "points_per_sec": 5400000, "ns_per_point": 185.2 }
//!     }
//!   ]
//! }
//! ```
//!
//! Metric-name suffixes carry the comparison direction: `*_per_sec`
//! means higher is better, `*_ns` and `*_bytes` mean lower is better —
//! `netqos bench check` keys off exactly these suffixes.

use std::fmt::Write as _;

/// The schema tag stamped into every document.
pub const BENCH_SCHEMA: &str = "netqos-bench/v1";

/// A parameter or metric value: integers render exactly, floats with
/// up to three decimals (trailing zeros trimmed).
#[derive(Debug, Clone, Copy)]
pub enum Num {
    /// An exact count.
    U(u64),
    /// A measured rate or latency.
    F(f64),
}

impl Num {
    fn render(&self) -> String {
        match *self {
            Num::U(v) => v.to_string(),
            Num::F(v) if !v.is_finite() => "0".into(),
            Num::F(v) => {
                let s = format!("{v:.3}");
                s.trim_end_matches('0').trim_end_matches('.').to_string()
            }
        }
    }
}

impl From<u64> for Num {
    fn from(v: u64) -> Self {
        Num::U(v)
    }
}
impl From<u32> for Num {
    fn from(v: u32) -> Self {
        Num::U(v as u64)
    }
}
impl From<usize> for Num {
    fn from(v: usize) -> Self {
        Num::U(v as u64)
    }
}
impl From<u128> for Num {
    fn from(v: u128) -> Self {
        Num::U(v.min(u64::MAX as u128) as u64)
    }
}
impl From<f64> for Num {
    fn from(v: f64) -> Self {
        Num::F(v)
    }
}

/// One workload's result: a name, the parameters that shaped it, and
/// the measured metrics.
#[derive(Debug, Clone, Default)]
pub struct BenchRow {
    name: String,
    params: Vec<(String, Num)>,
    metrics: Vec<(String, Num)>,
}

impl BenchRow {
    /// An empty row named `name` (unique within the report).
    pub fn new(name: impl Into<String>) -> Self {
        BenchRow {
            name: name.into(),
            ..BenchRow::default()
        }
    }

    /// Adds a workload parameter (input shape, not a measurement).
    pub fn param(mut self, key: &str, value: impl Into<Num>) -> Self {
        self.params.push((key.to_string(), value.into()));
        self
    }

    /// Adds a measured metric. Use the `*_per_sec` / `*_ns` / `*_bytes`
    /// suffix conventions so regression checks know the direction.
    pub fn metric(mut self, key: &str, value: impl Into<Num>) -> Self {
        self.metrics.push((key.to_string(), value.into()));
        self
    }
}

/// A whole benchmark document: the writer behind every `BENCH_*.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    bench: String,
    rows: Vec<BenchRow>,
}

impl BenchReport {
    /// An empty report for benchmark `bench` (`"lts"`, `"query"`,
    /// `"core"`, ...).
    pub fn new(bench: impl Into<String>) -> Self {
        BenchReport {
            bench: bench.into(),
            rows: Vec::new(),
        }
    }

    /// Appends one workload row.
    pub fn push(&mut self, row: BenchRow) {
        self.rows.push(row);
    }

    /// Renders the document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"{BENCH_SCHEMA}\",");
        let _ = writeln!(out, "  \"bench\": \"{}\",", self.bench);
        let _ = writeln!(out, "  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"name\": \"{}\",", row.name);
            let _ = writeln!(out, "      \"params\": {{");
            render_pairs(&mut out, &row.params, "        ");
            let _ = writeln!(out, "      }},");
            let _ = writeln!(out, "      \"metrics\": {{");
            render_pairs(&mut out, &row.metrics, "        ");
            let _ = writeln!(out, "      }}");
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(out, "    }}{comma}");
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Prints the document to stdout and writes it to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        let doc = self.to_json();
        print!("{doc}");
        std::fs::write(path, &doc)?;
        eprintln!("wrote {path}");
        Ok(())
    }
}

fn render_pairs(out: &mut String, pairs: &[(String, Num)], indent: &str) {
    for (i, (k, v)) in pairs.iter().enumerate() {
        let comma = if i + 1 < pairs.len() { "," } else { "" };
        let _ = writeln!(out, "{indent}\"{k}\": {}{comma}", v.render());
    }
}

/// Latency percentiles over repeated runs of `f`, in nanoseconds, plus
/// the last run's return value (typically a body-size check).
pub fn time_iters(iters: u32, mut f: impl FnMut() -> usize) -> (u128, u128, u128, usize) {
    let mut samples = Vec::with_capacity(iters as usize);
    let mut bytes = 0;
    for _ in 0..iters {
        let start = std::time::Instant::now();
        bytes = f();
        samples.push(start.elapsed().as_nanos());
    }
    percentiles(&mut samples)
        .map(|(p50, p99, max)| (p50, p99, max, bytes))
        .unwrap_or((0, 0, 0, bytes))
}

/// `(p50, p99, max)` of a sample set (sorted in place); `None` if empty.
pub fn percentiles(samples: &mut [u128]) -> Option<(u128, u128, u128)> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_unstable();
    let at = |q: f64| samples[((samples.len() - 1) as f64 * q) as usize];
    Some((at(0.5), at(0.99), *samples.last().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_the_unified_schema() {
        let mut report = BenchReport::new("demo");
        report.push(
            BenchRow::new("append")
                .param("series", 16u64)
                .metric("points_per_sec", 1_000_000.0_f64)
                .metric("ns_per_point", 185.25_f64),
        );
        report.push(BenchRow::new("query").metric("p50_ns", 4_200u64));
        let doc = report.to_json();
        let parsed = netqos_telemetry::parse_json(&doc).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some(BENCH_SCHEMA)
        );
        assert_eq!(parsed.get("bench").and_then(|v| v.as_str()), Some("demo"));
        let rows = parsed.get("rows").and_then(|v| v.as_array()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0]
                .get("metrics")
                .and_then(|m| m.get("ns_per_point"))
                .and_then(|v| v.as_f64()),
            Some(185.25)
        );
        // Floats render trimmed, integers exact.
        assert!(doc.contains("\"points_per_sec\": 1000000,\n"), "{doc}");
        assert!(doc.contains("\"p50_ns\": 4200\n"), "{doc}");
    }

    #[test]
    fn percentiles_cover_small_samples() {
        assert_eq!(percentiles(&mut []), None);
        assert_eq!(percentiles(&mut [7]), Some((7, 7, 7)));
        let mut s: Vec<u128> = (1..=100).collect();
        assert_eq!(percentiles(&mut s), Some((50, 99, 100)));
    }
}
