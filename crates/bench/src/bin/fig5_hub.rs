//! Regenerates **Figure 5** of the paper: hosts connected by a hub.
//!
//! Experiment (paper §4.3.2): 200 Kbytes/s is sent L→N1 during
//! [20 s, 80 s) and L→N2 during [40 s, 100 s). Because a hub forwards
//! every packet to every station, the monitor's hub-sum rule must report
//! the **sum** of both flows on both monitored paths (S1<->N1 and
//! S1<->N2) wherever they overlap.
//!
//! Output: panels (a)-(b) generated loads, panels (c)-(d) measured
//! series, then the accuracy summary (paper: 3.7 % average error, 7.8 %
//! max).

use netqos_bench::experiment::{profile_csv, run_experiment, ExperimentConfig};
use netqos_bench::stats::{self, StepWindow};
use netqos_bench::testbed::{build_testbed, Load, TestbedOptions};
use netqos_loadgen::LoadProfile;
use netqos_sim::time::SimDuration;

fn main() {
    let duration = 120u64;
    let to_n1 = LoadProfile::pulse(20, 80, 200_000);
    let to_n2 = LoadProfile::pulse(40, 100, 200_000);

    eprintln!("fig5: hub experiment (120s), monitoring S1<->N1 and S1<->N2 ...");

    let loads = vec![
        Load::new("L", "N1", to_n1.clone()),
        Load::new("L", "N2", to_n2.clone()),
    ];
    let mut tb = build_testbed(&loads, &TestbedOptions::default());
    let config = ExperimentConfig {
        duration_s: duration,
        poll_period: SimDuration::from_secs(1),
        paths: vec![("S1".into(), "N1".into()), ("S1".into(), "N2".into())],
    };
    let result = run_experiment(&mut tb, &config).expect("experiment runs");

    println!("# Figure 5(a): generated load (L -> N1)");
    print!("{}", profile_csv(&to_n1, duration));
    println!();
    println!("# Figure 5(b): generated load (L -> N2)");
    print!("{}", profile_csv(&to_n2, duration));
    println!();
    println!("# Figure 5(c-d): measured bandwidth usage");
    print!("{}", result.recorder.to_csv());
    println!();

    // Both paths see the same hub-shared traffic; analyse S1<->N1.
    let series = result.recorder.get("S1<->N1").unwrap();
    let background = stats::background_kbps(series, 5.0, 18.0);
    let windows = [
        StepWindow {
            from_s: 23.0,
            to_s: 39.0,
            generated_kbps: 200.0,
        }, // N1 only
        StepWindow {
            from_s: 43.0,
            to_s: 79.0,
            generated_kbps: 400.0,
        }, // overlap: hub sums
        StepWindow {
            from_s: 83.0,
            to_s: 99.0,
            generated_kbps: 200.0,
        }, // N2 only
    ];
    let rows = stats::step_stats(series, &windows, background);
    println!("# Hub-sum accuracy (expected: both flows summed on every hub path)");
    print!("{}", stats::render_table(background, &rows));

    let avg_err = rows.iter().map(|r| r.pct_error.abs()).sum::<f64>() / rows.len() as f64;
    let max_err = rows.iter().map(|r| r.max_pct_error).fold(0.0f64, f64::max);
    println!();
    println!("# average |error| = {avg_err:.1}%  (paper: 3.7%)");
    println!("# maximum single-sample error = {max_err:.1}%  (paper: 7.8%)");
    println!(
        "# poll rounds: {}, timeouts: {}",
        result.rounds, result.timeouts
    );
}
