//! Extension experiment: **path latency vs. network load** — the paper's
//! first future-work item ("measurement of network latency"), exercised
//! as an experiment of its own.
//!
//! The monitor probes the RTT from L to S1 (pure switch path) and to N1
//! (through the 10 Mb/s hub) while the L→N1 background load sweeps from
//! idle to hub saturation. The switch path should stay flat; the hub path
//! should grow sharply as the shared medium queues up.
//!
//! ```text
//! cargo run --release -p netqos-bench --bin latency_study
//! ```

use netqos_bench::testbed::{build_testbed, Load, TestbedOptions};
use netqos_loadgen::LoadProfile;
use netqos_sim::time::SimDuration;

fn main() {
    println!("load_kBps,rtt_S1_ms,rtt_N1_ms,lost_N1");
    for load_kbps in [0u64, 200, 400, 800, 1000, 1150, 1250] {
        let loads = if load_kbps == 0 {
            vec![]
        } else {
            vec![Load::new(
                "L",
                "N1",
                LoadProfile::constant(load_kbps * 1000),
            )]
        };
        let options = TestbedOptions {
            agent_jitter_mean: None, // isolate queueing delay
            ..TestbedOptions::default()
        };
        let mut tb = build_testbed(&loads, &options);

        // Let the load reach steady state before probing.
        let warm = tb.net.lan.now() + SimDuration::from_secs(3);
        tb.net.run_until(warm);

        let s1 = tb.monitor.topology().node_by_name("S1").unwrap();
        let n1 = tb.monitor.topology().node_by_name("N1").unwrap();
        let fast = tb
            .net
            .measure_rtt(s1, 10, 64, SimDuration::from_millis(500))
            .expect("S1 probes");
        let slow = tb
            .net
            .measure_rtt(n1, 10, 64, SimDuration::from_millis(500))
            .unwrap_or(netqos_monitor::latency::LatencyStats {
                samples: 0,
                lost: 10,
                min: SimDuration::ZERO,
                mean: SimDuration::ZERO,
                max: SimDuration::ZERO,
            });
        println!(
            "{load_kbps},{:.3},{:.3},{}",
            fast.mean_ms(),
            slow.mean_ms(),
            slow.lost
        );
    }
    println!();
    println!("# Expected shape: the switch path (S1) stays ~flat; the hub path (N1)");
    println!("# inflates with queueing as the 10 Mb/s medium saturates (~1250 KB/s),");
    println!("# eventually losing probes outright — the congestion signature the");
    println!("# RM's latency extension would alarm on.");
}
