//! Measures monitor-core scalability over generated ISP-scale
//! topologies and writes `BENCH_core.json` (the unified
//! `netqos-bench/v1` schema). For each topology size N the full
//! pipeline runs end to end — spec generation, parse/validate,
//! simulator build, then monitor ticks polling every SNMP host and
//! evaluating every QoS path — and the row records devices polled per
//! second, paths evaluated per second, and tick-latency percentiles.
//!
//! Regenerate with `cargo run --release -p netqos-bench --bin
//! core_bench`; `--quick` runs the smallest scale with fewer ticks (the
//! CI smoke gate compares its rows against the checked-in document with
//! a loose tolerance).

use netqos_bench::{percentiles, BenchReport, BenchRow};
use netqos_monitor::service::{MonitoringService, ServiceConfig};
use netqos_monitor::simnet::SimNetworkOptions;
use netqos_spec::{generate_spec, parse_and_validate, GenParams};
use std::time::Instant;

const SCALES: [usize; 3] = [1_000, 3_000, 10_000];
const TICKS: usize = 20;
const QUICK_TICKS: usize = 5;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (scales, ticks): (&[usize], usize) = if quick {
        (&SCALES[..1], QUICK_TICKS)
    } else {
        (&SCALES[..], TICKS)
    };

    let mut report = BenchReport::new("core");
    for &hosts in scales {
        let params = GenParams {
            hosts,
            ..GenParams::default()
        };
        let build_start = Instant::now();
        let src = generate_spec(&params);
        let model = parse_and_validate(&src).expect("generated spec must validate");
        let qos_paths = model.qos_paths.len();
        let options = SimNetworkOptions {
            monitor_host: "h0-0".into(),
            ..SimNetworkOptions::default()
        };
        let mut svc = MonitoringService::from_model(model, options, ServiceConfig::default())
            .expect("service build");
        let build_ns = build_start.elapsed().as_nanos();

        let polls_total = svc.registry().counter("netqos_monitor_polls_total");
        let polls_before = polls_total.get();
        let mut samples = Vec::with_capacity(ticks);
        let run_start = Instant::now();
        for _ in 0..ticks {
            let tick_start = Instant::now();
            svc.tick().expect("tick");
            samples.push(tick_start.elapsed().as_nanos());
        }
        let elapsed = run_start.elapsed().as_secs_f64();
        let polled = polls_total.get() - polls_before;
        let (p50, p99, max) = percentiles(&mut samples).expect("tick samples");

        eprintln!(
            "hosts={hosts}: {polled} polls, {} path evals over {ticks} ticks in {elapsed:.2}s",
            qos_paths * ticks
        );
        report.push(
            BenchRow::new(format!("tick-n{hosts}"))
                .param("hosts", hosts)
                .param("aps", params.ap_count())
                .param("sites", params.site_count())
                .param("qos_paths", qos_paths)
                .param("ticks", ticks)
                .metric("devices_polled_per_sec", polled as f64 / elapsed)
                .metric(
                    "paths_evaluated_per_sec",
                    (qos_paths * ticks) as f64 / elapsed,
                )
                .metric("tick_p50_ns", p50)
                .metric("tick_p99_ns", p99)
                .metric("tick_max_ns", max)
                .metric("build_ns", build_ns),
        );
    }
    report
        .write("BENCH_core.json")
        .expect("write BENCH_core.json");
}
