//! Regenerates **Table 1** of the paper: the MIB-II objects used in
//! network monitoring, with their numeric OIDs and descriptions — printed
//! directly from the implementation's own OID registry so the table can
//! never drift from the code.

use netqos_snmp::mib2;

fn main() {
    println!("Table 1. MIB-II Objects Used in Network Monitoring.");
    println!();
    println!("{:<47} {:<26} Description", "MIB-II Object", "(Numbers)");
    println!("{} {} {}", "-".repeat(47), "-".repeat(26), "-".repeat(40));
    for row in mib2::paper_table1() {
        // Wrap the description at ~60 columns for terminal readability.
        let mut desc_lines: Vec<String> = Vec::new();
        let mut cur = String::new();
        for word in row.description.split_whitespace() {
            if cur.len() + word.len() + 1 > 60 && !cur.is_empty() {
                desc_lines.push(std::mem::take(&mut cur));
            }
            if !cur.is_empty() {
                cur.push(' ');
            }
            cur.push_str(word);
        }
        if !cur.is_empty() {
            desc_lines.push(cur);
        }
        println!(
            "{:<47} ({:<24}) {}",
            row.name,
            row.oid.to_string(),
            desc_lines.first().map(String::as_str).unwrap_or("")
        );
        for extra in desc_lines.iter().skip(1) {
            println!("{:<75}{extra}", "");
        }
    }
    println!();
    println!(
        "All {} objects are served by the netqos-snmp agent and polled by the monitor.",
        mib2::paper_table1().len()
    );
}
