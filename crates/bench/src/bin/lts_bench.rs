//! Measures the long-term stats store's append throughput and range-query
//! latency with plain wall-clock timing and writes the results as
//! `BENCH_lts.json` (repo root when run from there, else the current
//! directory) in the unified `netqos-bench/v1` schema. The workloads
//! mirror `benches/lts.rs`; this binary exists so a canonical result
//! document can be checked in and regenerated with
//! `cargo run --release -p netqos-bench --bin lts_bench`.

use netqos_bench::{time_iters, BenchReport, BenchRow};
use netqos_telemetry::{
    compact_store_to, LtsConfig, LtsCounters, LtsReader, LtsStore, PointValue, Resolution,
    SegmentCodec,
};
use std::path::PathBuf;
use std::time::Instant;

const SERIES: usize = 16;
const APPEND_TICKS: u64 = 20_000;
const QUERY_TICKS: u64 = 3_600;
const QUERY_ITERS: u32 = 200;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netqos-lts-bench-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn series_names() -> Vec<String> {
    (0..SERIES)
        .map(|i| format!("bench_series_{i}_total"))
        .collect()
}

fn main() {
    let names = series_names();

    // Append throughput: one "tick" is SERIES appends; flush every 60 ticks
    // like the monitor's default cadence, plus a final flush.
    let dir = fresh_dir("append");
    let mut store = LtsStore::open(&dir, LtsConfig::default(), LtsCounters::detached())
        .expect("open append store");
    let start = Instant::now();
    for t in 0..APPEND_TICKS {
        for name in &names {
            store.append(name, t, PointValue::Counter(t % 17));
        }
        if t % 60 == 59 {
            store.flush().expect("cadence flush");
        }
    }
    store.flush().expect("final flush");
    let append_elapsed = start.elapsed();
    let total_points = APPEND_TICKS * SERIES as u64;
    let points_per_sec = total_points as f64 / append_elapsed.as_secs_f64();
    let append_ns_per_point = append_elapsed.as_nanos() as f64 / total_points as f64;
    std::fs::remove_dir_all(&dir).ok();

    // Query latency over a store holding an hour of 1s points per series.
    let dir = fresh_dir("query");
    let mut store = LtsStore::open(&dir, LtsConfig::default(), LtsCounters::detached())
        .expect("open query store");
    for t in 0..QUERY_TICKS {
        for name in &names {
            store.append(name, t, PointValue::Counter(t % 17));
        }
        if t % 500 == 499 {
            store.flush().expect("load flush");
        }
    }
    store.flush().expect("load flush");
    let reader = LtsReader::open(&dir);
    let (one_p50, one_p99, one_max, one_points) = time_iters(QUERY_ITERS, || {
        reader
            .query("bench_series_0_total", 0, QUERY_TICKS, Resolution::Raw1s)
            .len()
    });
    let (all_p50, all_p99, all_max, all_points) = time_iters(QUERY_ITERS, || {
        reader.query("*", 0, u64::MAX, Resolution::Min1).len()
    });
    std::fs::remove_dir_all(&dir).ok();

    // Segment-codec footprint: the same corpus sealed under JSONL (v1)
    // and delta-varint binary (v2) segments. Sealing via compaction puts
    // every point into sealed segments, so the comparison measures the
    // codecs, not the (always-JSONL) open tails.
    let mut codec_bytes = [0u64; 2];
    for (slot, codec) in [SegmentCodec::Jsonl, SegmentCodec::Binary]
        .iter()
        .enumerate()
    {
        let dir = fresh_dir("codec");
        let config = LtsConfig {
            codec: *codec,
            ..LtsConfig::default()
        };
        let mut store = LtsStore::open(&dir, config, LtsCounters::detached()).expect("open");
        for t in 0..QUERY_TICKS {
            for name in &names {
                store.append(name, t, PointValue::Counter(t % 17));
            }
        }
        store.flush().expect("flush");
        compact_store_to(&dir, *codec).expect("seal");
        fn dir_bytes(d: &std::path::Path) -> u64 {
            let mut total = 0;
            if let Ok(entries) = std::fs::read_dir(d) {
                for e in entries.flatten() {
                    let p = e.path();
                    if p.is_dir() {
                        total += dir_bytes(&p);
                    } else {
                        total += e.metadata().map(|m| m.len()).unwrap_or(0);
                    }
                }
            }
            total
        }
        codec_bytes[slot] = dir_bytes(&dir);
        std::fs::remove_dir_all(&dir).ok();
    }
    let [jsonl_bytes, binary_bytes] = codec_bytes;
    let shrink = jsonl_bytes as f64 / binary_bytes.max(1) as f64;
    assert!(
        shrink >= 3.0,
        "binary codec must cut bytes_on_disk >= 3x vs JSONL (got {shrink:.2}x: {jsonl_bytes} -> {binary_bytes})"
    );

    let mut report = BenchReport::new("lts");
    report.push(
        BenchRow::new("append")
            .param("series", SERIES)
            .param("ticks", APPEND_TICKS)
            .param("flush_every_ticks", 60u64)
            .param("points", total_points)
            .metric("points_per_sec", points_per_sec)
            .metric("ns_per_point", append_ns_per_point),
    );
    report.push(
        BenchRow::new("query-one-series-1h-raw1s")
            .param("store_ticks", QUERY_TICKS)
            .param("iters", QUERY_ITERS)
            .param("points", one_points)
            .metric("p50_ns", one_p50)
            .metric("p99_ns", one_p99)
            .metric("max_ns", one_max),
    );
    report.push(
        BenchRow::new("query-all-series-1m")
            .param("store_ticks", QUERY_TICKS)
            .param("iters", QUERY_ITERS)
            .param("points", all_points)
            .metric("p50_ns", all_p50)
            .metric("p99_ns", all_p99)
            .metric("max_ns", all_max),
    );
    report.push(
        BenchRow::new("codec-jsonl-sealed")
            .param("series", SERIES)
            .param("ticks", QUERY_TICKS)
            .param("points", QUERY_TICKS * SERIES as u64)
            .metric("bytes_on_disk_bytes", jsonl_bytes),
    );
    report.push(
        BenchRow::new("codec-binary-sealed")
            .param("series", SERIES)
            .param("ticks", QUERY_TICKS)
            .param("points", QUERY_TICKS * SERIES as u64)
            .param("shrink_x_vs_jsonl", shrink)
            .metric("bytes_on_disk_bytes", binary_bytes),
    );
    report
        .write("BENCH_lts.json")
        .expect("write BENCH_lts.json");
}
