//! Regenerates **Figure 6** of the paper: hosts connected by a switch.
//!
//! Experiment (paper §4.3.3): 2,000 Kbytes/s pulses are generated
//! L→S2 during [20 s, 60 s), L→S3 during [40 s, 80 s), and L→S1 during
//! [100 s, 120 s), while the monitor watches the paths S1<->S2 and
//! S1<->S3. A switch forwards unicast traffic only toward its
//! destination, so:
//!
//! * the load to S2 appears **only** on S1<->S2;
//! * the load to S3 appears **only** on S1<->S3;
//! * the load to S1 appears on **both** paths (S1's own connection is
//!   shared by both).
//!
//! Paper accuracy: 2.2 % average error, 7.8 % max (smaller relative error
//! than fig. 5 because the traffic volume is 10× larger).

use netqos_bench::experiment::{profile_csv, run_experiment, ExperimentConfig};
use netqos_bench::stats::{self, StepWindow};
use netqos_bench::testbed::{build_testbed, Load, TestbedOptions};
use netqos_loadgen::LoadProfile;
use netqos_sim::time::SimDuration;

fn main() {
    let duration = 130u64;
    let to_s2 = LoadProfile::pulse(20, 60, 2_000_000);
    let to_s3 = LoadProfile::pulse(40, 80, 2_000_000);
    let to_s1 = LoadProfile::pulse(100, 120, 2_000_000);

    eprintln!("fig6: switch experiment (130s), monitoring S1<->S2 and S1<->S3 ...");

    let loads = vec![
        Load::new("L", "S2", to_s2.clone()),
        Load::new("L", "S3", to_s3.clone()),
        Load::new("L", "S1", to_s1.clone()),
    ];
    let mut tb = build_testbed(&loads, &TestbedOptions::default());
    let config = ExperimentConfig {
        duration_s: duration,
        poll_period: SimDuration::from_secs(1),
        paths: vec![("S1".into(), "S2".into()), ("S1".into(), "S3".into())],
    };
    let result = run_experiment(&mut tb, &config).expect("experiment runs");

    println!("# Figure 6(a): generated load (L -> S2)");
    print!("{}", profile_csv(&to_s2, duration));
    println!();
    println!("# Figure 6(b): generated load (L -> S3)");
    print!("{}", profile_csv(&to_s3, duration));
    println!();
    println!("# Figure 6(c): generated load (L -> S1)");
    print!("{}", profile_csv(&to_s1, duration));
    println!();
    println!("# Figure 6(d-e): measured bandwidth usage");
    print!("{}", result.recorder.to_csv());
    println!();

    let s12 = result.recorder.get("S1<->S2").unwrap();
    let s13 = result.recorder.get("S1<->S3").unwrap();
    let bg12 = stats::background_kbps(s12, 5.0, 18.0);
    let bg13 = stats::background_kbps(s13, 5.0, 18.0);

    println!("# S1<->S2: sees the S2 load and the S1 load, NOT the S3 load");
    let rows12 = stats::step_stats(
        s12,
        &[
            StepWindow {
                from_s: 23.0,
                to_s: 59.0,
                generated_kbps: 2000.0,
            }, // L->S2
            StepWindow {
                from_s: 63.0,
                to_s: 79.0,
                generated_kbps: 0.0,
            }, // only L->S3: invisible
            StepWindow {
                from_s: 103.0,
                to_s: 119.0,
                generated_kbps: 2000.0,
            }, // L->S1
        ],
        bg12,
    );
    print!("{}", stats::render_table(bg12, &rows12));
    println!();
    println!("# S1<->S3: sees the S3 load and the S1 load, NOT the S2 load");
    let rows13 = stats::step_stats(
        s13,
        &[
            StepWindow {
                from_s: 23.0,
                to_s: 39.0,
                generated_kbps: 0.0,
            }, // only L->S2: invisible
            StepWindow {
                from_s: 43.0,
                to_s: 79.0,
                generated_kbps: 2000.0,
            }, // L->S3
            StepWindow {
                from_s: 103.0,
                to_s: 119.0,
                generated_kbps: 2000.0,
            }, // L->S1
        ],
        bg13,
    );
    print!("{}", stats::render_table(bg13, &rows13));

    let loaded: Vec<&netqos_bench::stats::StepStat> = rows12
        .iter()
        .chain(&rows13)
        .filter(|r| r.generated_kbps > 0.0)
        .collect();
    let avg_err = loaded.iter().map(|r| r.pct_error.abs()).sum::<f64>() / loaded.len() as f64;
    let max_err = loaded
        .iter()
        .map(|r| r.max_pct_error)
        .fold(0.0f64, f64::max);
    println!();
    println!("# average |error| = {avg_err:.1}%  (paper: 2.2%)");
    println!("# maximum single-sample error = {max_err:.1}%  (paper: 7.8%)");
    println!(
        "# poll rounds: {}, timeouts: {}",
        result.rounds, result.timeouts
    );
}
