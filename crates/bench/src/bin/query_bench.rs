//! Measures the PromQL-subset query plane with plain wall-clock timing
//! and writes the results as `BENCH_query.json` (repo root when run from
//! there, else the current directory) in the unified `netqos-bench/v1`
//! schema. Two workloads, mirroring `benches/query.rs`: `rate()`
//! instant evaluations over an hour of 1s counter points (reported as
//! evals/s), and cross-shard `query_range` requests through the
//! federation engine (reported as latency percentiles, fan-out and JSON
//! rendering included). Regenerate with
//! `cargo run --release -p netqos-bench --bin query_bench`.

use netqos_bench::{time_iters, BenchReport, BenchRow};
use netqos_telemetry::{
    compact_store_to, HttpRequest, LtsConfig, LtsCounters, LtsReader, LtsSource, LtsStore,
    PointValue, QueryEngine, Resolution, SegmentCodec, SeriesSource, Shard, ShardRegistry,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const SERIES: usize = 16;
const STORE_TICKS: u64 = 3_600;
const RATE_ITERS: u32 = 400;
const RANGE_ITERS: u32 = 200;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netqos-query-bench-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A store holding an hour of 1s counter points per series, flushed so
/// every point is on disk at all resolutions.
fn loaded_store(tag: &str) -> PathBuf {
    let dir = fresh_dir(tag);
    let mut store = LtsStore::open(&dir, LtsConfig::default(), LtsCounters::detached()).unwrap();
    for t in 0..STORE_TICKS {
        for i in 0..SERIES {
            store.append(
                &format!("bench_series_{i}_total"),
                t,
                PointValue::Counter(t % 17),
            );
        }
        if t % 500 == 499 {
            store.flush().unwrap();
        }
    }
    store.flush().unwrap();
    dir
}

fn main() {
    // rate() over an hour of 1s points against a single store.
    let dir = loaded_store("rate");
    let engine = QueryEngine::new().with_source(
        None,
        Arc::new(LtsSource::new(LtsReader::open(&dir))) as Arc<dyn SeriesSource>,
    );
    let start = Instant::now();
    for _ in 0..RATE_ITERS {
        engine
            .instant(
                "rate(bench_series_0_total[3600])",
                STORE_TICKS,
                Resolution::Raw1s,
            )
            .expect("rate eval");
    }
    let rate_elapsed = start.elapsed();
    let rate_evals_per_sec = RATE_ITERS as f64 / rate_elapsed.as_secs_f64();
    let (rate_p50, rate_p99, rate_max, _) = time_iters(RATE_ITERS, || {
        engine
            .instant(
                "rate(bench_series_0_total[3600])",
                STORE_TICKS,
                Resolution::Raw1s,
            )
            .expect("rate eval")
            .to_api_json()
            .len()
    });
    std::fs::remove_dir_all(&dir).ok();

    // Pushdown: the same full-window rate over a compacted binary store,
    // where every sealed segment folds from its header stats instead of
    // materializing 3600 points per eval. Evaluated at the newest stored
    // instant so the window covers the sealed segment entirely (a window
    // edge inside a segment falls back to decoding it). The range path
    // on the same store is the materializing baseline.
    let dir = loaded_store("pushdown");
    compact_store_to(&dir, SegmentCodec::Binary).expect("seal binary");
    let engine = QueryEngine::new().with_source(
        None,
        Arc::new(LtsSource::new(LtsReader::open(&dir))) as Arc<dyn SeriesSource>,
    );
    let probe = engine
        .instant(
            "rate(bench_series_0_total[3600])",
            STORE_TICKS - 1,
            Resolution::Raw1s,
        )
        .expect("pushdown eval");
    assert!(
        probe.stats.pushdown_evals > 0 && probe.stats.segments_folded > 0,
        "full-window rate over sealed binary segments must fold: {:?}",
        probe.stats
    );
    let start = Instant::now();
    for _ in 0..RATE_ITERS {
        engine
            .instant(
                "rate(bench_series_0_total[3600])",
                STORE_TICKS - 1,
                Resolution::Raw1s,
            )
            .expect("pushdown eval");
    }
    let pushdown_evals_per_sec = RATE_ITERS as f64 / start.elapsed().as_secs_f64();
    let (push_p50, push_p99, push_max, _) = time_iters(RATE_ITERS, || {
        engine
            .instant(
                "rate(bench_series_0_total[3600])",
                STORE_TICKS - 1,
                Resolution::Raw1s,
            )
            .expect("pushdown eval")
            .to_api_json()
            .len()
    });
    // Materializing baseline on the identical store: a one-step range
    // evaluation fetches and scans the full point vector.
    let start = Instant::now();
    for _ in 0..RATE_ITERS {
        engine
            .range(
                "rate(bench_series_0_total[3600])",
                STORE_TICKS - 1,
                STORE_TICKS - 1,
                1,
            )
            .expect("scan eval");
    }
    let scan_evals_per_sec = RATE_ITERS as f64 / start.elapsed().as_secs_f64();
    std::fs::remove_dir_all(&dir).ok();

    // Cross-shard query_range through the federation engine: two shards,
    // each backed by its own store, rate() at step 60 over the hour.
    let dirs = [loaded_store("shard-a"), loaded_store("shard-b")];
    let fed = ShardRegistry::new();
    for (name, dir) in ["north", "south"].iter().zip(&dirs) {
        let shard = Shard::metrics_only(*name, netqos_telemetry::Registry::new())
            .with_promql(Arc::new(LtsSource::new(LtsReader::open(dir))));
        fed.register(shard).unwrap();
    }
    let req = HttpRequest {
        method: "GET".into(),
        path: "/api/v1/query_range".into(),
        query: format!("query=rate(bench_series_0_total[60])&start=60&end={STORE_TICKS}&step=60"),
        accept: String::new(),
    };
    let (range_p50, range_p99, range_max, range_bytes) = time_iters(RANGE_ITERS, || {
        let resp = fed.promql_response(&req, true);
        assert_eq!(resp.status, 200, "{}", resp.body);
        resp.body.len()
    });
    for dir in &dirs {
        std::fs::remove_dir_all(dir).ok();
    }

    let mut report = BenchReport::new("query");
    report.push(
        BenchRow::new("rate-instant-1h-raw1s")
            .param("store_ticks", STORE_TICKS)
            .param("series", SERIES)
            .param("iters", RATE_ITERS)
            .metric("evals_per_sec", rate_evals_per_sec)
            .metric("p50_ns", rate_p50)
            .metric("p99_ns", rate_p99)
            .metric("max_ns", rate_max),
    );
    report.push(
        BenchRow::new("rate-instant-pushdown-sealed-1h")
            .param("store_ticks", STORE_TICKS)
            .param("series", SERIES)
            .param("iters", RATE_ITERS)
            .param("points_scanned", probe.stats.points_scanned)
            .param("segments_folded", probe.stats.segments_folded)
            .param("scan_baseline_evals_per_sec", scan_evals_per_sec)
            .metric("evals_per_sec", pushdown_evals_per_sec)
            .metric("p50_ns", push_p50)
            .metric("p99_ns", push_p99)
            .metric("max_ns", push_max),
    );
    report.push(
        BenchRow::new("cross-shard-query-range-step60")
            .param("shards", 2u64)
            .param("store_ticks", STORE_TICKS)
            .param("iters", RANGE_ITERS)
            .metric("p50_ns", range_p50)
            .metric("p99_ns", range_p99)
            .metric("max_ns", range_max)
            .metric("body_bytes", range_bytes as u64),
    );
    report
        .write("BENCH_query.json")
        .expect("write BENCH_query.json");
}
