//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Interval source** — the paper's sysUpTime-based poll interval vs.
//!    the naive nominal-period assumption, under agent response jitter
//!    (§3.1: "The time interval between two polling processes can be
//!    found using the system uptime data").
//! 2. **Poll period** — measurement error and SNMP overhead as the poll
//!    period varies (the monitor's overhead is part of the paper's error
//!    budget).
//! 3. **Rate smoothing** — EWMA alpha sweep: spike damping vs. step
//!    response.
//!
//! ```text
//! cargo run --release -p netqos-bench --bin ablation
//! ```

use netqos_bench::experiment::{run_experiment, ExperimentConfig};
use netqos_bench::stats::{self, StepWindow};
use netqos_bench::testbed::{build_testbed, Load, TestbedOptions};
use netqos_loadgen::LoadProfile;
use netqos_monitor::monitor::{IntervalStrategy, Smoothing};
use netqos_sim::time::SimDuration;

/// Runs the standard 200 KB/s pulse experiment and returns
/// (avg % error, max single-sample % error) on S1<->N1.
fn run_one(
    options: &TestbedOptions,
    poll_period: SimDuration,
    strategy: IntervalStrategy,
    smoothing: Option<Smoothing>,
) -> (f64, f64) {
    let loads = vec![Load::new("L", "N1", LoadProfile::pulse(5, 35, 200_000))];
    let mut tb = build_testbed(&loads, options);
    tb.monitor.set_interval_strategy(strategy);
    if let Some(s) = smoothing {
        tb.monitor.set_smoothing(s);
    }
    let config = ExperimentConfig {
        duration_s: 40,
        poll_period,
        paths: vec![("S1".into(), "N1".into())],
    };
    let result = run_experiment(&mut tb, &config).expect("experiment runs");
    let series = result.recorder.get("S1<->N1").unwrap();
    let background = stats::background_kbps(series, 1.0, 4.0);
    let rows = stats::step_stats(
        series,
        &[StepWindow {
            from_s: 8.0,
            to_s: 34.0,
            generated_kbps: 200.0,
        }],
        background,
    );
    (rows[0].pct_error, rows[0].max_pct_error)
}

fn main() {
    println!("== Ablation 1: poll-interval source under agent jitter ==");
    println!("   (200 KB/s pulse, 1 s polls; jitter = exponential agent response delay)\n");
    println!("jitter mean   sysUpTime err/max     nominal-period err/max");
    for jitter_ms in [0u64, 15, 60, 150] {
        let options = TestbedOptions {
            agent_jitter_mean: if jitter_ms == 0 {
                None
            } else {
                Some(SimDuration::from_millis(jitter_ms))
            },
            ..TestbedOptions::default()
        };
        let (up_err, up_max) = run_one(
            &options,
            SimDuration::from_secs(1),
            IntervalStrategy::SysUpTime,
            None,
        );
        let (nom_err, nom_max) = run_one(
            &options,
            SimDuration::from_secs(1),
            IntervalStrategy::NominalPeriod(100),
            None,
        );
        println!(
            "{jitter_ms:>8} ms   {up_err:>6.1}% / {up_max:>5.1}%      {nom_err:>6.1}% / {nom_max:>5.1}%"
        );
    }
    println!("\n-> the paper's sysUpTime method keeps max error flat as jitter grows;");
    println!("   the nominal-period shortcut degrades (mis-sized intervals).\n");

    println!("== Ablation 2: poll period ==\n");
    println!("period   avg err   max err");
    for period_ms in [500u64, 1000, 2000, 5000] {
        let options = TestbedOptions::default();
        let (err, max) = run_one(
            &options,
            SimDuration::from_millis(period_ms),
            IntervalStrategy::SysUpTime,
            None,
        );
        println!(
            "{:>5.1}s   {err:>6.1}%   {max:>6.1}%",
            period_ms as f64 / 1000.0
        );
    }
    println!("\n-> longer periods average away jitter (lower max error) at the cost");
    println!("   of responsiveness; shorter periods spend more SNMP bandwidth.\n");

    println!("== Ablation 3: EWMA smoothing (alpha sweep, 150 ms jitter) ==\n");
    println!("alpha   avg err   max err");
    let options = TestbedOptions {
        agent_jitter_mean: Some(SimDuration::from_millis(150)),
        ..TestbedOptions::default()
    };
    for alpha in [1.0f64, 0.5, 0.25] {
        let (err, max) = run_one(
            &options,
            SimDuration::from_secs(1),
            IntervalStrategy::SysUpTime,
            Some(Smoothing { alpha }),
        );
        println!("{alpha:>5.2}   {err:>6.1}%   {max:>6.1}%");
    }
    println!("\n-> smoothing trades responsiveness for stability: lower alpha damps");
    println!("   steady-state jitter but lags hard at load transitions (the max-error");
    println!("   column picks up the step edges). alpha = 1.0 is the paper's raw");
    println!("   per-interval behaviour, the right default for a violation detector.");
}
