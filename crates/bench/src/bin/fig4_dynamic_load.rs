//! Regenerates **Figure 4** and **Table 2** of the paper: dynamically
//! varying network load.
//!
//! Experiment (paper §4.3.1): traffic is generated from L to N1 as a
//! staircase — 100 Kbytes/s starting at t=120 s, +100 Kbytes/s every
//! 60 s up to 500 Kbytes/s, all load eliminated at t=420 s — while the
//! monitor reports the bandwidth used on the communication path
//! S1 → switch → hub → N1 from 1-second SNMP polls.
//!
//! Output: panel (a) the generated load series, panel (b) the measured
//! series (both CSV), followed by the Table-2 statistics. Flags:
//! `--table` prints only the table, `--csv` only the series, `--fast`
//! runs a 1/10-scale schedule (12 s steps) for quick smoke runs.

use netqos_bench::experiment::{profile_csv, run_experiment, ExperimentConfig};
use netqos_bench::stats::{self, StepWindow};
use netqos_bench::testbed::{build_testbed, Load, TestbedOptions};
use netqos_loadgen::LoadProfile;
use netqos_sim::time::SimDuration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let table_only = args.iter().any(|a| a == "--table");
    let csv_only = args.iter().any(|a| a == "--csv");
    let fast = args.iter().any(|a| a == "--fast");

    // The paper's schedule, optionally time-compressed 10x.
    let scale = if fast { 10 } else { 1 };
    let start = 120 / scale;
    let step_len = 60 / scale;
    let duration = 480 / scale;
    let profile = LoadProfile::staircase(start, 100_000, 100_000, step_len, 5);

    eprintln!(
        "fig4: staircase L->N1 ({}s run, poll period 1s), monitoring S1<->N1 ...",
        duration
    );

    let loads = vec![Load::new("L", "N1", profile.clone())];
    let mut tb = build_testbed(&loads, &TestbedOptions::default());
    let config = ExperimentConfig {
        duration_s: duration,
        poll_period: SimDuration::from_secs(1),
        paths: vec![("S1".into(), "N1".into())],
    };
    let result = run_experiment(&mut tb, &config).expect("experiment runs");
    let series = result
        .recorder
        .get("S1<->N1")
        .expect("monitored series exists");

    if !table_only {
        println!("# Figure 4(a): generated load (L -> N1)");
        print!("{}", profile_csv(&profile, duration));
        println!();
        println!("# Figure 4(b): measured bandwidth usage (S1 <-> N1)");
        print!("{}", result.recorder.to_csv());
        println!();
    }

    if !csv_only {
        // Background: idle window before the load starts (skip the first
        // polls while deltas settle).
        let background = stats::background_kbps(series, 5.0, (start as f64 - 5.0).max(6.0));
        // One window per staircase step, trimmed by a couple of samples
        // on each side to avoid step-transition smearing.
        let windows: Vec<StepWindow> = (0..5)
            .map(|i| {
                let s = (start + i * step_len) as f64;
                StepWindow {
                    from_s: s + 3.0,
                    to_s: s + step_len as f64 - 1.0,
                    generated_kbps: 100.0 * (i + 1) as f64,
                }
            })
            .collect();
        let rows = stats::step_stats(series, &windows, background);
        println!("# Table 2. Statistics of Measured Traffic Load (Kbytes/second)");
        print!("{}", stats::render_table(background, &rows));
        println!();
        println!(
            "# poll rounds: {}, poll timeouts: {}",
            result.rounds, result.timeouts
        );
    }
}
