//! The generic experiment loop: poll every period, evaluate the monitored
//! paths, record time series — the runtime behaviour of the paper's
//! monitoring program during §4's experiments.

use crate::testbed::Testbed;
use netqos_monitor::report::{PathSample, SeriesRecorder};
use netqos_monitor::MonitorError;
use netqos_sim::time::{SimDuration, SimTime};
use netqos_topology::path::CommPath;

/// What to run and what to watch.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Total experiment duration in simulated seconds.
    pub duration_s: u64,
    /// Poll period (paper: periodic SNMP polling; experiments poll every
    /// second).
    pub poll_period: SimDuration,
    /// Monitored host pairs, by node name, labelled `FROM<->TO`.
    pub paths: Vec<(String, String)>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            duration_s: 60,
            poll_period: SimDuration::from_secs(1),
            paths: Vec::new(),
        }
    }
}

/// The recorded outcome.
pub struct ExperimentResult {
    /// One series per monitored path, named `FROM<->TO`.
    pub recorder: SeriesRecorder,
    /// Poll rounds that completed.
    pub rounds: u64,
    /// Polls that timed out over the whole run.
    pub timeouts: u64,
}

/// Runs the experiment to completion.
pub fn run_experiment(
    testbed: &mut Testbed,
    config: &ExperimentConfig,
) -> Result<ExperimentResult, MonitorError> {
    // Resolve monitored paths once (the monitor computes them from the
    // spec topology, paper §3.3).
    let mut resolved: Vec<(String, CommPath)> = Vec::with_capacity(config.paths.len());
    for (from, to) in &config.paths {
        let topo = testbed.monitor.topology();
        let f = topo.node_by_name(from)?;
        let t = topo.node_by_name(to)?;
        let path = testbed.monitor.path(f, t)?;
        resolved.push((format!("{from}<->{to}"), path));
    }

    let names: Vec<&str> = resolved.iter().map(|(n, _)| n.as_str()).collect();
    let mut recorder = SeriesRecorder::new(&names);
    let mut rounds = 0u64;

    let start = testbed.net.lan.now();
    let total = SimDuration::from_secs(config.duration_s);
    let mut next_poll = start + config.poll_period;
    let end = start + total;

    while next_poll <= end {
        testbed.net.run_until(next_poll);
        testbed.net.poll_round(&mut testbed.monitor)?;
        rounds += 1;
        let t_s = testbed.net.lan.now().duration_since(start).as_secs_f64();
        for (name, path) in &resolved {
            if let Ok(bw) = testbed.monitor.path_bandwidth_of(path) {
                recorder.push(name, PathSample::at(t_s, &bw));
            }
        }
        next_poll += config.poll_period;
    }

    Ok(ExperimentResult {
        recorder,
        rounds,
        timeouts: testbed.net.timeouts,
    })
}

/// Renders a generated-load profile as a CSV series on the experiment's
/// one-second grid (the paper's figure panel (a)).
pub fn profile_csv(profile: &netqos_loadgen::LoadProfile, duration_s: u64) -> String {
    let mut out = String::from("t_s,generated_kBps\n");
    for s in 0..duration_s {
        let rate = profile.rate_at(SimTime::ZERO + SimDuration::from_secs(s));
        out.push_str(&format!("{s},{:.1}\n", rate as f64 / 1000.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::{build_testbed, Load, TestbedOptions};
    use netqos_loadgen::LoadProfile;

    #[test]
    fn short_experiment_produces_series() {
        let loads = vec![Load::new("L", "N1", LoadProfile::pulse(2, 8, 100_000))];
        let mut tb = build_testbed(&loads, &TestbedOptions::default());
        let config = ExperimentConfig {
            duration_s: 12,
            poll_period: SimDuration::from_secs(1),
            paths: vec![("S1".into(), "N1".into())],
        };
        let result = run_experiment(&mut tb, &config).unwrap();
        assert_eq!(result.rounds, 12);
        let series = result.recorder.get("S1<->N1").unwrap();
        // First round is baseline-only; samples appear from round 2 on.
        assert!(series.samples.len() >= 10, "{}", series.samples.len());
        // During the loaded window the path must carry ~100 KB/s.
        let mid = series.mean_used_kbps(4.0, 8.0).unwrap();
        assert!(mid > 80.0 && mid < 130.0, "measured {mid} KB/s");
        // After the load stops it must fall back toward background.
        let tail = series.mean_used_kbps(10.0, 12.0).unwrap();
        assert!(tail < 20.0, "tail {tail} KB/s");
    }

    #[test]
    fn profile_csv_grid() {
        let p = LoadProfile::pulse(1, 3, 50_000);
        let csv = profile_csv(&p, 4);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_s,generated_kBps");
        assert_eq!(lines[1], "0,0.0");
        assert_eq!(lines[2], "1,50.0");
        assert_eq!(lines[4], "3,0.0");
    }
}
