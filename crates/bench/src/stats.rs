//! Table-2 statistics: per-load-step measurement accuracy.
//!
//! The paper computes, per generated-load level: the average measured
//! load, the average less the background (measured at zero load), the
//! percentage error of that average against the generated load, and the
//! maximum single-sample percentage error.

use netqos_monitor::report::Series;

/// One row of the Table-2 analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct StepStat {
    /// Commanded load for this step (Kbytes/s).
    pub generated_kbps: f64,
    /// Mean measured load over the step window (Kbytes/s).
    pub avg_measured: f64,
    /// Mean measured less background (Kbytes/s).
    pub avg_less_background: f64,
    /// `(avg_less_background − generated) / generated` in percent.
    pub pct_error: f64,
    /// Largest single-sample error against the generated load, percent.
    pub max_pct_error: f64,
}

/// A measurement window for one load step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepWindow {
    /// Window start (s).
    pub from_s: f64,
    /// Window end (s).
    pub to_s: f64,
    /// Commanded load in the window (Kbytes/s).
    pub generated_kbps: f64,
}

/// Mean measured load (Kbytes/s) in an idle window — the paper's
/// "background traffic" term.
pub fn background_kbps(series: &Series, from_s: f64, to_s: f64) -> f64 {
    series.mean_used_kbps(from_s, to_s).unwrap_or(0.0)
}

/// Computes the Table-2 row for each step window.
pub fn step_stats(series: &Series, windows: &[StepWindow], background: f64) -> Vec<StepStat> {
    windows
        .iter()
        .map(|w| {
            let avg = series.mean_used_kbps(w.from_s, w.to_s).unwrap_or(0.0);
            let less = avg - background;
            let pct_error = if w.generated_kbps > 0.0 {
                (less - w.generated_kbps) / w.generated_kbps * 100.0
            } else {
                0.0
            };
            let max_pct_error = series
                .samples
                .iter()
                .filter(|s| s.t_s >= w.from_s && s.t_s < w.to_s)
                .map(|s| {
                    let v = s.used_kbytes_per_sec() - background;
                    if w.generated_kbps > 0.0 {
                        ((v - w.generated_kbps) / w.generated_kbps * 100.0).abs()
                    } else {
                        0.0
                    }
                })
                .fold(0.0f64, f64::max);
            StepStat {
                generated_kbps: w.generated_kbps,
                avg_measured: avg,
                avg_less_background: less,
                pct_error,
                max_pct_error,
            }
        })
        .collect()
}

/// Renders rows in the paper's Table-2 layout.
pub fn render_table(background: f64, rows: &[StepStat]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Background traffic: {background:.3} Kbytes/second\n\n"
    ));
    out.push_str(
        "Generated   Average     Average Load      %      Maximum\n\
         Load        Measured    Less Background   Error  % Error\n\
         ---------   ---------   ---------------   -----  -------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<11.0} {:<11.3} {:<17.3} {:<6.1} {:<7.1}\n",
            r.generated_kbps, r.avg_measured, r.avg_less_background, r.pct_error, r.max_pct_error
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netqos_monitor::report::PathSample;

    fn series_with(samples: &[(f64, f64)]) -> Series {
        Series {
            name: "x".into(),
            samples: samples
                .iter()
                .map(|&(t, kbps)| PathSample {
                    t_s: t,
                    used_bps: (kbps * 8000.0) as u64,
                    available_bps: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn background_is_idle_mean() {
        let s = series_with(&[(0.0, 1.0), (1.0, 0.6), (2.0, 0.8), (10.0, 100.0)]);
        let bg = background_kbps(&s, 0.0, 3.0);
        assert!((bg - 0.8).abs() < 1e-9);
    }

    #[test]
    fn step_stats_compute_errors() {
        // Background 1.0; measured ≈ 104 for generated 100 => +3% error
        // after background subtraction.
        let s = series_with(&[(10.0, 104.0), (11.0, 104.0), (12.0, 110.0)]);
        let rows = step_stats(
            &s,
            &[StepWindow {
                from_s: 10.0,
                to_s: 13.0,
                generated_kbps: 100.0,
            }],
            1.0,
        );
        let r = &rows[0];
        assert!((r.avg_measured - 106.0).abs() < 1e-9);
        assert!((r.avg_less_background - 105.0).abs() < 1e-9);
        assert!((r.pct_error - 5.0).abs() < 1e-9);
        // Max single-sample error: (110-1-100)/100 = 9%.
        assert!((r.max_pct_error - 9.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = vec![
            StepStat {
                generated_kbps: 100.0,
                avg_measured: 104.8,
                avg_less_background: 104.0,
                pct_error: 4.0,
                max_pct_error: 6.4,
            },
            StepStat {
                generated_kbps: 200.0,
                avg_measured: 208.0,
                avg_less_background: 207.2,
                pct_error: 3.6,
                max_pct_error: 8.4,
            },
        ];
        let text = render_table(0.824, &rows);
        assert!(text.contains("0.824"));
        assert!(text.contains("100"));
        assert!(text.contains("8.4"));
        assert_eq!(text.lines().count(), 7);
    }

    #[test]
    fn empty_window_is_zero() {
        let s = series_with(&[]);
        let rows = step_stats(
            &s,
            &[StepWindow {
                from_s: 0.0,
                to_s: 1.0,
                generated_kbps: 100.0,
            }],
            0.0,
        );
        assert_eq!(rows[0].avg_measured, 0.0);
        assert_eq!(rows[0].max_pct_error, 0.0);
    }
}
