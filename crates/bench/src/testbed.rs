//! The LIRTSS testbed (paper Figure 3), materialized from the checked-in
//! specification file with load generators and realistic noise.

use netqos_loadgen::{LoadProfile, ProfiledSource};
use netqos_monitor::simnet::{SimNetwork, SimNetworkOptions};
use netqos_monitor::NetworkMonitor;
use netqos_sim::time::SimDuration;
use netqos_sim::Ipv4Addr;

/// The specification of the paper's Figure 3 testbed.
pub const LIRTSS_SPEC: &str = include_str!("../../../specs/lirtss.spec");

/// One load-generator placement: `from` sends `profile` to `to`'s DISCARD
/// port, exactly like the paper's generator.
#[derive(Debug, Clone)]
pub struct Load {
    /// Sending host name.
    pub from: String,
    /// Receiving host name.
    pub to: String,
    /// The rate schedule.
    pub profile: LoadProfile,
}

impl Load {
    /// Convenience constructor.
    pub fn new(from: &str, to: &str, profile: LoadProfile) -> Self {
        Load {
            from: from.to_owned(),
            to: to.to_owned(),
            profile,
        }
    }
}

/// Environmental knobs for experiments.
#[derive(Debug, Clone)]
pub struct TestbedOptions {
    /// Deterministic seed for noise and jitter.
    pub seed: u64,
    /// Mean interval of per-host background broadcasts (None = silent).
    pub noise_mean: Option<SimDuration>,
    /// Mean SNMP agent response jitter (None = instant agents).
    pub agent_jitter_mean: Option<SimDuration>,
    /// Payload bytes per generated datagram (paper used MTU-sized
    /// packets: 1472 payload + 28 header = 1500-byte IP packets).
    pub chunk_bytes: usize,
}

impl Default for TestbedOptions {
    fn default() -> Self {
        TestbedOptions {
            seed: 42,
            // ≈0.6 KB/s of broadcast chatter visible on every segment —
            // the "background traffic" the paper measures and subtracts.
            noise_mean: Some(SimDuration::from_millis(2000)),
            // Occasional delayed agent responses: the source of the
            // paper's isolated large single-sample errors.
            agent_jitter_mean: Some(SimDuration::from_millis(15)),
            chunk_bytes: 1472,
        }
    }
}

/// A built testbed: the simulated network plus a fresh monitor.
pub struct Testbed {
    /// The simulated LAN with agents and generators installed.
    pub net: SimNetwork,
    /// The monitoring program state.
    pub monitor: NetworkMonitor,
}

/// Builds the LIRTSS testbed with the given loads installed.
pub fn build_testbed(loads: &[Load], options: &TestbedOptions) -> Testbed {
    build_testbed_from(LIRTSS_SPEC, loads, options)
}

/// Builds a testbed from any specification source.
pub fn build_testbed_from(spec: &str, loads: &[Load], options: &TestbedOptions) -> Testbed {
    let model = netqos_spec::parse_and_validate(spec).expect("specification must be valid");
    let topology = model.topology.clone();

    let net_options = SimNetworkOptions {
        monitor_host: "L".to_owned(),
        noise_mean: options.noise_mean,
        seed: options.seed,
        agent_jitter_mean: options.agent_jitter_mean,
        poll_timeout: SimDuration::from_millis(800),
        registry: None,
    };

    let loads = loads.to_vec();
    let chunk = options.chunk_bytes;
    let net = SimNetwork::from_model_with(model, net_options, move |builder, node_to_dev, m| {
        for load in &loads {
            let from = m
                .topology
                .node_by_name(&load.from)
                .expect("load source exists");
            let to = m.topology.node_by_name(&load.to).expect("load sink exists");
            let dst_ip: Ipv4Addr = m.addresses[&to].parse().expect("sink has an address");
            let mut src = ProfiledSource::new(dst_ip, load.profile.clone());
            src.chunk_bytes = chunk;
            builder
                .install_app(node_to_dev[&from], Box::new(src), None)
                .expect("install generator");
        }
    })
    .expect("testbed must build");

    Testbed {
        net,
        monitor: NetworkMonitor::new(topology),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lirtss_spec_is_valid_and_matches_figure3() {
        let model = netqos_spec::parse_and_validate(LIRTSS_SPEC).unwrap();
        // 9 hosts + switch + hub.
        assert_eq!(model.topology.node_count(), 11);
        // 7 switch hosts + uplink + 2 hub hosts.
        assert_eq!(model.topology.connection_count(), 10);
        // SNMP demons: L, N1, N2, S1, S2, switch (paper §4.1).
        assert_eq!(model.snmp_nodes().len(), 6);
        // The monitored qospaths of the experiments.
        assert_eq!(model.qos_paths.len(), 4);
    }

    #[test]
    fn testbed_builds_and_polls() {
        let mut tb = build_testbed(&[], &TestbedOptions::default());
        let polled = tb.net.poll_round(&mut tb.monitor).unwrap();
        assert_eq!(polled, 6);
    }

    #[test]
    fn path_s1_n1_crosses_hub() {
        let tb = build_testbed(&[], &TestbedOptions::default());
        let topo = tb.monitor.topology();
        let s1 = topo.node_by_name("S1").unwrap();
        let n1 = topo.node_by_name("N1").unwrap();
        let p = tb.monitor.path(s1, n1).unwrap();
        let names: Vec<String> = p
            .nodes
            .iter()
            .map(|n| topo.node(*n).unwrap().name.clone())
            .collect();
        assert_eq!(names, ["S1", "switch1", "hub1", "N1"]);
    }
}
