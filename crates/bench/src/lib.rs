//! # netqos-bench
//!
//! The experiment harness: rebuilds the paper's LIRTSS testbed inside the
//! simulator and regenerates **every table and figure** of the evaluation
//! section:
//!
//! | Paper item | Regenerator |
//! |---|---|
//! | Table 1 (MIB-II objects) | `cargo run -p netqos-bench --bin table1_mib` |
//! | Figure 3 (testbed) | [`testbed::build_testbed`] from `specs/lirtss.spec` |
//! | Figure 4 + Table 2 (dynamic load) | `cargo run -p netqos-bench --bin fig4_dynamic_load` |
//! | Figure 5 (hub-connected hosts) | `cargo run -p netqos-bench --bin fig5_hub` |
//! | Figure 6 (switch-connected hosts) | `cargo run -p netqos-bench --bin fig6_switch` |
//!
//! Criterion performance benches (`cargo bench -p netqos-bench`) cover the
//! building blocks: BER codec, path traversal, bandwidth computation,
//! simulator throughput, and full poll rounds.

pub mod experiment;
pub mod report;
pub mod stats;
pub mod testbed;

pub use experiment::{run_experiment, ExperimentConfig, ExperimentResult};
pub use report::{percentiles, time_iters, BenchReport, BenchRow, BENCH_SCHEMA};
pub use stats::{render_table, step_stats, StepStat};
pub use testbed::{build_testbed, Load, Testbed, TestbedOptions, LIRTSS_SPEC};
