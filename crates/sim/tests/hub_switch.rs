//! Integration tests of the forwarding semantics that the paper's
//! bandwidth algorithms rely on: hubs repeat everything and share one
//! medium; switches isolate unicast traffic.

use netqos_sim::app::DiscardSink;
use netqos_sim::builder::LanBuilder;
use netqos_sim::packet::DISCARD_PORT;
use netqos_sim::time::SimDuration;
use netqos_sim::{DeviceId, Lan, PortIx};

fn ip(s: &str) -> netqos_sim::Ipv4Addr {
    s.parse().unwrap()
}

/// hub with three stations; returns (lan, n1, n2, n3).
fn hub_lan() -> (Lan, DeviceId, DeviceId, DeviceId) {
    let mut b = LanBuilder::new();
    let hub = b.add_hub("hub", 10_000_000).unwrap();
    for i in 0..3 {
        b.add_nic(hub, &format!("h{i}"), 10_000_000).unwrap();
    }
    for (i, name) in ["N1", "N2", "N3"].iter().enumerate() {
        let h = b.add_host(name, &format!("10.0.1.{}", i + 1)).unwrap();
        b.add_nic(h, "eth0", 10_000_000).unwrap();
        b.connect((h, PortIx(0)), (hub, PortIx(i as u32))).unwrap();
        b.install_app(h, Box::new(DiscardSink::default()), Some(DISCARD_PORT))
            .unwrap();
    }
    let n1 = b.build();
    let lan = n1;
    let a = lan.device_by_name("N1").unwrap();
    let c = lan.device_by_name("N2").unwrap();
    let d = lan.device_by_name("N3").unwrap();
    (lan, a, c, d)
}

#[test]
fn hub_repeats_frames_to_every_port_but_nics_filter() {
    let (mut lan, n1, n2, n3) = hub_lan();
    lan.post_udp(
        n1,
        5000,
        ip("10.0.1.2"),
        DISCARD_PORT,
        vec![0u8; 1000].into(),
    )
    .unwrap();
    lan.run_for(SimDuration::from_millis(20));

    // The hub's egress counters show the repeat on BOTH other ports.
    let hub = lan.device_by_name("hub").unwrap();
    let h1 = lan.nic_counters(hub, PortIx(1)).unwrap(); // to N2
    let h2 = lan.nic_counters(hub, PortIx(2)).unwrap(); // to N3
    assert!(h1.out_octets.value() > 1000);
    assert_eq!(h1.out_octets.value(), h2.out_octets.value());

    // N2 (addressee) counts the frame; N3's NIC filters it.
    let c2 = lan.nic_counters(n2, PortIx(0)).unwrap();
    let c3 = lan.nic_counters(n3, PortIx(0)).unwrap();
    assert!(c2.in_octets.value() > 1000);
    assert_eq!(c3.in_octets.value(), 0);
}

#[test]
fn hub_medium_is_shared_between_senders() {
    // Two senders each offering 8 Mb/s into a 10 Mb/s hub: aggregate
    // delivery must be capped by the medium, well under the 16 Mb/s
    // offered.
    let mut b = LanBuilder::new();
    let hub = b.add_hub("hub", 10_000_000).unwrap();
    for i in 0..3 {
        b.add_nic(hub, &format!("h{i}"), 10_000_000).unwrap();
    }
    let s1 = b.add_host("S1", "10.0.1.1").unwrap();
    b.add_nic(s1, "eth0", 100_000_000).unwrap(); // fast NICs so the
    let s2 = b.add_host("S2", "10.0.1.2").unwrap(); // senders are not the
    b.add_nic(s2, "eth0", 100_000_000).unwrap(); // bottleneck
    let r = b.add_host("R", "10.0.1.3").unwrap();
    b.add_nic(r, "eth0", 100_000_000).unwrap();
    b.connect((s1, PortIx(0)), (hub, PortIx(0))).unwrap();
    b.connect((s2, PortIx(0)), (hub, PortIx(1))).unwrap();
    b.connect((r, PortIx(0)), (hub, PortIx(2))).unwrap();
    let (sink, handle) = DiscardSink::with_handle();
    b.install_app(r, Box::new(sink), Some(DISCARD_PORT))
        .unwrap();
    use netqos_sim::traffic::CbrSource;
    b.install_app(
        s1,
        Box::new(CbrSource::new(
            ip("10.0.1.3"),
            DISCARD_PORT,
            1_000_000,
            1400,
        )),
        None,
    )
    .unwrap();
    b.install_app(
        s2,
        Box::new(CbrSource::new(
            ip("10.0.1.3"),
            DISCARD_PORT,
            1_000_000,
            1400,
        )),
        None,
    )
    .unwrap();
    let mut lan = b.build();
    lan.run_for(SimDuration::from_secs(5));
    let received = handle.borrow().payload_bytes;
    // Offered: 2 MB/s application payload = 16 Mb/s >> medium.
    // Delivered application payload can be at most medium_rate * t.
    let cap = 10_000_000u64 / 8 * 5;
    assert!(received <= cap, "received {received} > medium cap {cap}");
    assert!(received > cap / 4, "medium should still carry real traffic");
}

#[test]
fn switch_counters_see_only_addressed_traffic() {
    // The fig-6 property: on a switch, traffic to S2 appears on S2's
    // connection only.
    let mut b = LanBuilder::new();
    let sw = b.add_switch("sw", None).unwrap();
    for i in 0..4 {
        b.add_nic(sw, &format!("p{i}"), 100_000_000).unwrap();
    }
    let mut ids = Vec::new();
    for (i, name) in ["L", "S1", "S2", "S3"].iter().enumerate() {
        let h = b.add_host(name, &format!("10.0.0.{}", i + 1)).unwrap();
        b.add_nic(h, "eth0", 100_000_000).unwrap();
        b.connect((h, PortIx(0)), (sw, PortIx(i as u32))).unwrap();
        b.install_app(h, Box::new(DiscardSink::default()), Some(DISCARD_PORT))
            .unwrap();
        ids.push(h);
    }
    let (l, _s1, s2, s3) = (ids[0], ids[1], ids[2], ids[3]);
    let mut lan = b.build();

    // Prime MAC learning with one small datagram each way.
    for (dev, dst) in [(s2, "10.0.0.1"), (s3, "10.0.0.1")] {
        lan.post_udp(dev, 1, ip(dst), DISCARD_PORT, vec![0u8; 10].into())
            .unwrap();
    }
    lan.run_for(SimDuration::from_millis(10));
    let s3_before = lan.nic_counters(s3, PortIx(0)).unwrap().in_octets.value();

    // Blast L -> S2.
    for _ in 0..10 {
        lan.post_udp(
            l,
            5000,
            ip("10.0.0.3"),
            DISCARD_PORT,
            vec![0u8; 10_000].into(),
        )
        .unwrap();
    }
    lan.run_for(SimDuration::from_millis(100));

    let s2_ctr = lan.nic_counters(s2, PortIx(0)).unwrap();
    let s3_after = lan.nic_counters(s3, PortIx(0)).unwrap().in_octets.value();
    assert!(s2_ctr.in_octets.value() > 100_000);
    assert_eq!(s3_before, s3_after, "switch leaked unicast to S3");
}

#[test]
fn switch_to_hub_uplink_carries_traffic_once() {
    // LIRTSS shape: L on the switch sends to N1 on the hub; the uplink
    // switch port and the hub port to N1 must both see the bytes exactly
    // once.
    let mut b = LanBuilder::new();
    let sw = b.add_switch("sw", None).unwrap();
    let swp: Vec<PortIx> = (0..2)
        .map(|i| b.add_nic(sw, &format!("p{i}"), 100_000_000).unwrap())
        .collect();
    let hub = b.add_hub("hub", 10_000_000).unwrap();
    let hp: Vec<PortIx> = (0..3)
        .map(|i| b.add_nic(hub, &format!("h{i}"), 10_000_000).unwrap())
        .collect();
    let l = b.add_host("L", "10.0.0.1").unwrap();
    b.add_nic(l, "eth0", 100_000_000).unwrap();
    b.connect((l, PortIx(0)), (sw, swp[0])).unwrap();
    b.connect((sw, swp[1]), (hub, hp[0])).unwrap();
    let n1 = b.add_host("N1", "10.0.0.2").unwrap();
    b.add_nic(n1, "eth0", 10_000_000).unwrap();
    b.connect((n1, PortIx(0)), (hub, hp[1])).unwrap();
    let n2 = b.add_host("N2", "10.0.0.3").unwrap();
    b.add_nic(n2, "eth0", 10_000_000).unwrap();
    b.connect((n2, PortIx(0)), (hub, hp[2])).unwrap();
    b.install_app(n1, Box::new(DiscardSink::default()), Some(DISCARD_PORT))
        .unwrap();
    let mut lan = b.build();

    lan.post_udp(
        l,
        5000,
        ip("10.0.0.2"),
        DISCARD_PORT,
        vec![0u8; 20_000].into(),
    )
    .unwrap();
    lan.run_for(SimDuration::from_secs(1));

    let uplink_out = lan.nic_counters(sw, swp[1]).unwrap().out_octets.value();
    let n1_in = lan.nic_counters(n1, PortIx(0)).unwrap().in_octets.value();
    let n2_in = lan.nic_counters(n2, PortIx(0)).unwrap().in_octets.value();
    // ~20 KB + headers on both observation points, nothing at N2.
    assert!(uplink_out > 20_000 && uplink_out < 22_000, "{uplink_out}");
    assert_eq!(uplink_out, n1_in);
    assert_eq!(n2_in, 0);
}

#[test]
fn lossy_link_drops_frames_and_counts_errors() {
    let mut b = LanBuilder::new();
    let a = b.add_host("A", "10.0.0.1").unwrap();
    b.add_nic(a, "eth0", 100_000_000).unwrap();
    let d = b.add_host("B", "10.0.0.2").unwrap();
    b.add_nic(d, "eth0", 100_000_000).unwrap();
    b.connect((a, PortIx(0)), (d, PortIx(0))).unwrap();
    let (sink, handle) = DiscardSink::with_handle();
    b.install_app(d, Box::new(sink), Some(DISCARD_PORT))
        .unwrap();
    let mut lan = b.build();
    lan.set_link_loss(a, PortIx(0), 0.3).unwrap();

    for _ in 0..200 {
        lan.post_udp(
            a,
            5000,
            ip("10.0.0.2"),
            DISCARD_PORT,
            vec![0u8; 1000].into(),
        )
        .unwrap();
    }
    lan.run_for(SimDuration::from_secs(2));

    let rx = lan.nic_counters(d, PortIx(0)).unwrap();
    let delivered = handle.borrow().datagrams;
    assert!(
        delivered < 200,
        "some datagrams must be lost, got {delivered}"
    );
    assert!(
        delivered > 80,
        "loss rate should be ~30%, got {delivered}/200"
    );
    assert!(
        rx.in_errors.value() > 0,
        "lost frames must count as input errors"
    );
    assert_eq!(
        rx.in_errors.value() as u64 + delivered,
        200,
        "every frame is either delivered or an input error"
    );
    assert_eq!(lan.stats().frames_dropped_loss, rx.in_errors.value() as u64);
}

#[test]
fn link_loss_validation() {
    let mut b = LanBuilder::new();
    let a = b.add_host("A", "10.0.0.1").unwrap();
    b.add_nic(a, "eth0", 100).unwrap();
    let mut lan = b.build();
    // Uncabled port: cannot set loss.
    assert!(lan.set_link_loss(a, PortIx(0), 0.5).is_err());
    assert!(lan.set_link_loss(a, PortIx(9), 0.5).is_err());
}

#[test]
fn determinism_identical_runs_produce_identical_counters() {
    let run = || {
        let (mut lan, n1, _n2, _n3) = hub_lan();
        use netqos_sim::traffic::{CbrSource, NoiseSource};
        // Drive with an externally posted mix of events instead of
        // installed apps to exercise post_udp determinism too.
        let _ = (
            CbrSource::new(ip("10.0.1.2"), 9, 1, 1),
            NoiseSource::new(1, SimDuration::from_millis(1)),
        );
        for k in 0..50 {
            lan.post_udp(
                n1,
                5000,
                ip("10.0.1.2"),
                DISCARD_PORT,
                vec![0u8; 100 + k].into(),
            )
            .unwrap();
        }
        lan.run_for(SimDuration::from_secs(1));
        let hub = lan.device_by_name("hub").unwrap();
        (0..3)
            .map(|i| lan.nic_counters(hub, PortIx(i)).unwrap().out_octets.value())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
