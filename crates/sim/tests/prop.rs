//! Property tests for the simulator: byte conservation, counter
//! consistency, and determinism under random workloads.

use bytes::Bytes;
use netqos_sim::app::DiscardSink;
use netqos_sim::builder::LanBuilder;
use netqos_sim::packet::DISCARD_PORT;
use netqos_sim::time::SimDuration;
use netqos_sim::{DeviceId, Lan, PortIx};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn two_hosts() -> (
    Lan,
    DeviceId,
    DeviceId,
    Rc<RefCell<netqos_sim::app::DiscardStats>>,
) {
    let mut b = LanBuilder::new();
    let a = b.add_host("A", "10.0.0.1").unwrap();
    b.add_nic(a, "eth0", 100_000_000).unwrap();
    let d = b.add_host("B", "10.0.0.2").unwrap();
    b.add_nic(d, "eth0", 100_000_000).unwrap();
    b.connect((a, PortIx(0)), (d, PortIx(0))).unwrap();
    let (sink, handle) = DiscardSink::with_handle();
    b.install_app(d, Box::new(sink), Some(DISCARD_PORT))
        .unwrap();
    (b.build(), a, d, handle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On a loss-free point-to-point link, every octet transmitted by A
    /// is received by B, and the payload arrives complete.
    #[test]
    fn octet_conservation_on_direct_link(
        sizes in prop::collection::vec(1usize..20_000, 1..20),
    ) {
        let (mut lan, a, d, handle) = two_hosts();
        let total: usize = sizes.iter().sum();
        for size in &sizes {
            lan.post_udp(a, 5000, "10.0.0.2".parse().unwrap(), DISCARD_PORT,
                         Bytes::from(vec![0u8; *size])).unwrap();
        }
        // Enough time for everything to drain (100 Mb/s link).
        lan.run_for(SimDuration::from_secs(60));
        let tx = lan.nic_counters(a, PortIx(0)).unwrap();
        let rx = lan.nic_counters(d, PortIx(0)).unwrap();
        prop_assert_eq!(tx.out_discards.value(), 0, "no drops expected");
        prop_assert_eq!(tx.out_octets.value(), rx.in_octets.value());
        prop_assert_eq!(handle.borrow().payload_bytes as usize, total);
        // Wire octets strictly exceed payload (headers + padding).
        prop_assert!(tx.out_octets.total() as usize > total);
    }

    /// Packet counters match: unicast frames out == unicast frames in.
    #[test]
    fn packet_count_conservation(
        n_datagrams in 1usize..40,
        size in 1usize..1400,
    ) {
        let (mut lan, a, d, _) = two_hosts();
        for _ in 0..n_datagrams {
            lan.post_udp(a, 5000, "10.0.0.2".parse().unwrap(), DISCARD_PORT,
                         Bytes::from(vec![0u8; size])).unwrap();
        }
        lan.run_for(SimDuration::from_secs(10));
        let tx = lan.nic_counters(a, PortIx(0)).unwrap();
        let rx = lan.nic_counters(d, PortIx(0)).unwrap();
        prop_assert_eq!(tx.out_ucast_pkts.value(), n_datagrams as u32);
        prop_assert_eq!(rx.in_ucast_pkts.value(), n_datagrams as u32);
    }

    /// The engine is deterministic: identical stimulus sequences produce
    /// identical counters and statistics.
    #[test]
    fn determinism_under_random_workload(
        sizes in prop::collection::vec(1usize..5_000, 1..15),
    ) {
        let run = |sizes: &[usize]| {
            let (mut lan, a, d, _) = two_hosts();
            for (k, size) in sizes.iter().enumerate() {
                lan.post_udp(a, 5000 + (k as u16 % 100), "10.0.0.2".parse().unwrap(),
                             DISCARD_PORT, Bytes::from(vec![0u8; *size])).unwrap();
            }
            lan.run_for(SimDuration::from_secs(5));
            (
                lan.nic_counters(a, PortIx(0)).unwrap(),
                lan.nic_counters(d, PortIx(0)).unwrap(),
                lan.stats(),
            )
        };
        prop_assert_eq!(run(&sizes), run(&sizes));
    }

    /// Counters wrap like real Counter32s: with a preloaded near-wrap
    /// value, the 32-bit view wraps while the shadow total keeps growing.
    #[test]
    fn preloaded_counters_wrap(extra in 1usize..50_000) {
        let (mut lan, a, _, _) = two_hosts();
        // 40 octets of headroom: even a minimum-size (64-octet) frame
        // crosses the wrap point.
        lan.preload_octet_counters(a, PortIx(0), 0, u32::MAX - 40).unwrap();
        lan.post_udp(a, 5000, "10.0.0.2".parse().unwrap(), DISCARD_PORT,
                     Bytes::from(vec![0u8; extra])).unwrap();
        lan.run_for(SimDuration::from_secs(10));
        let tx = lan.nic_counters(a, PortIx(0)).unwrap();
        prop_assert!(tx.out_octets.total() > u32::MAX as u64);
        prop_assert!(tx.out_octets.value() < u32::MAX - 40);
    }
}
