//! Network interfaces: per-port state and MIB-visible counters.

use crate::addr::MacAddr;
use crate::counters::Counter32;
use crate::events::LinkId;
use crate::packet::Frame;
use crate::time::{SimDuration, SimTime};

/// The MIB-II counter set of one interface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicCounters {
    /// `ifInOctets`.
    pub in_octets: Counter32,
    /// `ifInUcastPkts`.
    pub in_ucast_pkts: Counter32,
    /// `ifInNUcastPkts`.
    pub in_nucast_pkts: Counter32,
    /// `ifInDiscards`.
    pub in_discards: Counter32,
    /// `ifInErrors`.
    pub in_errors: Counter32,
    /// `ifOutOctets`.
    pub out_octets: Counter32,
    /// `ifOutUcastPkts`.
    pub out_ucast_pkts: Counter32,
    /// `ifOutNUcastPkts`.
    pub out_nucast_pkts: Counter32,
    /// `ifOutDiscards`.
    pub out_discards: Counter32,
    /// `ifOutErrors`.
    pub out_errors: Counter32,
}

impl NicCounters {
    /// Records a received frame.
    pub fn record_rx(&mut self, frame: &Frame) {
        self.in_octets.add(frame.wire_len() as u64);
        if frame.is_broadcast() {
            self.in_nucast_pkts.inc();
        } else {
            self.in_ucast_pkts.inc();
        }
    }

    /// Records a transmitted frame.
    pub fn record_tx(&mut self, frame: &Frame) {
        self.out_octets.add(frame.wire_len() as u64);
        if frame.is_broadcast() {
            self.out_nucast_pkts.inc();
        } else {
            self.out_ucast_pkts.inc();
        }
    }
}

/// One NIC / switch port / hub port.
#[derive(Debug, Clone)]
pub struct Nic {
    /// Hardware address.
    pub mac: MacAddr,
    /// Interface description (`ifDescr`), matching the specification
    /// file's interface local name so the monitor can correlate.
    pub descr: String,
    /// Static bandwidth in bits/s (`ifSpeed`).
    pub speed_bps: u64,
    /// Counters.
    pub counters: NicCounters,
    /// Attached link, once cabled.
    pub link: Option<LinkId>,
    /// Time at which the transmitter finishes its current backlog.
    pub tx_free_at: SimTime,
    /// Maximum transmit backlog before tail drop (time depth of the
    /// output queue).
    pub queue_limit: SimDuration,
}

impl Nic {
    /// Creates an unlinked NIC.
    pub fn new(mac: MacAddr, descr: &str, speed_bps: u64) -> Self {
        Nic {
            mac,
            descr: descr.to_owned(),
            speed_bps,
            counters: NicCounters::default(),
            link: None,
            tx_free_at: SimTime::ZERO,
            queue_limit: SimDuration::from_millis(200),
        }
    }
}

/// A read-only snapshot of a NIC, handed to SNMP agents and probes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NicSnapshot {
    /// 1-based MIB-II ifIndex.
    pub if_index: u32,
    /// `ifDescr`.
    pub descr: String,
    /// `ifSpeed` in bits/s.
    pub speed_bps: u64,
    /// MAC address.
    pub mac: MacAddr,
    /// Counters at snapshot time.
    pub counters: NicCounters,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ipv4Addr;
    use crate::packet::{FramePayload, UdpDatagram};
    use bytes::Bytes;

    fn unicast_frame(len: usize) -> Frame {
        Frame {
            src: MacAddr::from_seed(1),
            dst: MacAddr::from_seed(2),
            payload: FramePayload::Udp(UdpDatagram {
                src_ip: Ipv4Addr::new(10, 0, 0, 1),
                dst_ip: Ipv4Addr::new(10, 0, 0, 2),
                src_port: 1,
                dst_port: 9,
                payload: Bytes::from(vec![0u8; len]),
            }),
        }
    }

    #[test]
    fn rx_tx_update_matching_counters() {
        let mut c = NicCounters::default();
        let f = unicast_frame(1000);
        c.record_rx(&f);
        c.record_tx(&f);
        assert_eq!(c.in_octets.value() as usize, f.wire_len());
        assert_eq!(c.out_octets.value() as usize, f.wire_len());
        assert_eq!(c.in_ucast_pkts.value(), 1);
        assert_eq!(c.out_ucast_pkts.value(), 1);
        assert_eq!(c.in_nucast_pkts.value(), 0);
    }

    #[test]
    fn broadcast_counts_as_nucast() {
        let mut c = NicCounters::default();
        let f = Frame::raw(MacAddr::from_seed(1), MacAddr::BROADCAST, 60);
        c.record_rx(&f);
        assert_eq!(c.in_nucast_pkts.value(), 1);
        assert_eq!(c.in_ucast_pkts.value(), 0);
    }

    #[test]
    fn nic_defaults() {
        let n = Nic::new(MacAddr::from_seed(9), "eth0", 100_000_000);
        assert_eq!(n.descr, "eth0");
        assert!(n.link.is_none());
        assert_eq!(n.tx_free_at, SimTime::ZERO);
        assert!(n.queue_limit > SimDuration::ZERO);
    }
}
