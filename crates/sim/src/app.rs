//! The UDP application layer.
//!
//! Everything that *does* something in the simulation — load generators,
//! DISCARD sinks, echo responders, SNMP agents, SNMP managers — is a
//! [`UdpApp`] installed on a host (or on a switch's management stack).
//! Apps interact with the world exclusively through an [`AppCtx`], which
//! defers all side effects until the callback returns; this keeps the
//! engine single-threaded, borrow-clean, and deterministic.

use crate::addr::Ipv4Addr;
use crate::events::{DeviceId, PortIx};
use crate::nic::{Nic, NicSnapshot};
use crate::packet::UdpDatagram;
use crate::time::{SimDuration, SimTime};
use bytes::Bytes;
use std::cell::RefCell;
use std::rc::Rc;

/// Deferred side effects produced by an app callback.
#[derive(Debug, Clone)]
pub(crate) enum Action {
    /// Send a UDP datagram (fragmented by the host stack as needed).
    SendUdp {
        src_port: u16,
        dst_ip: Ipv4Addr,
        dst_port: u16,
        payload: Bytes,
    },
    /// Emit an uninterpreted broadcast frame (background chatter).
    SendRawBroadcast { ip_len: usize, port: Option<PortIx> },
    /// Arm a timer.
    Timer { after: SimDuration, token: u64 },
}

/// Execution context handed to app callbacks.
pub struct AppCtx<'a> {
    pub(crate) now: SimTime,
    pub(crate) dev: DeviceId,
    pub(crate) device_name: &'a str,
    pub(crate) device_ip: Option<Ipv4Addr>,
    pub(crate) epoch: SimTime,
    pub(crate) nics: &'a [Nic],
    /// Learning-bridge forwarding database (switches only): learned MAC →
    /// port index.
    pub(crate) fdb: Option<&'a std::collections::HashMap<crate::addr::MacAddr, PortIx>>,
    pub(crate) actions: Vec<Action>,
}

impl AppCtx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The device this app runs on.
    pub fn device(&self) -> DeviceId {
        self.dev
    }

    /// The device's name.
    pub fn device_name(&self) -> &str {
        self.device_name
    }

    /// The device's IP address (hosts and managed switches have one).
    pub fn device_ip(&self) -> Option<Ipv4Addr> {
        self.device_ip
    }

    /// `sysUpTime` of this device in TimeTicks (hundredths of a second).
    pub fn uptime_ticks(&self) -> u32 {
        self.now.timeticks_since(self.epoch)
    }

    /// Snapshots of the device's interfaces in ifIndex order — what an
    /// SNMP agent exports.
    pub fn nic_snapshots(&self) -> Vec<NicSnapshot> {
        self.nics
            .iter()
            .enumerate()
            .map(|(i, n)| NicSnapshot {
                if_index: i as u32 + 1,
                descr: n.descr.clone(),
                speed_bps: n.speed_bps,
                mac: n.mac,
                counters: n.counters,
            })
            .collect()
    }

    /// The device's bridge forwarding database, as `(mac, ifIndex)` pairs
    /// sorted by MAC, when this device is a learning switch — what the
    /// BRIDGE-MIB `dot1dTpFdbTable` exports. `None` on hosts and hubs.
    pub fn fdb_snapshot(&self) -> Option<Vec<(crate::addr::MacAddr, u32)>> {
        self.fdb.map(|table| {
            let mut v: Vec<(crate::addr::MacAddr, u32)> = table
                .iter()
                .map(|(mac, port)| (*mac, port.if_index()))
                .collect();
            v.sort_by_key(|(mac, _)| mac.octets());
            v
        })
    }

    /// Sends a UDP datagram. Large payloads are fragmented into MTU-sized
    /// packets by the host stack.
    pub fn send_udp(&mut self, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16, payload: Bytes) {
        self.actions.push(Action::SendUdp {
            src_port,
            dst_ip,
            dst_port,
            payload,
        });
    }

    /// Emits an uninterpreted broadcast frame of the given IP-layer length
    /// (background-noise sources use this). `port` defaults to the first
    /// NIC.
    pub fn send_raw_broadcast(&mut self, ip_len: usize, port: Option<PortIx>) {
        self.actions.push(Action::SendRawBroadcast { ip_len, port });
    }

    /// Arms a timer that will call [`UdpApp::on_timer`] with `token` after
    /// `after`.
    pub fn schedule(&mut self, after: SimDuration, token: u64) {
        self.actions.push(Action::Timer { after, token });
    }
}

/// A UDP application installed on a device.
///
/// All callbacks receive a fresh [`AppCtx`]; effects requested through it
/// are applied when the callback returns.
pub trait UdpApp {
    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut AppCtx<'_>) {}

    /// Called when a datagram arrives on the app's bound port.
    fn on_datagram(&mut self, _ctx: &mut AppCtx<'_>, _dgram: &UdpDatagram) {}

    /// Called when a timer armed with [`AppCtx::schedule`] fires.
    fn on_timer(&mut self, _ctx: &mut AppCtx<'_>, _token: u64) {}
}

/// Statistics accumulated by a [`DiscardSink`], observable from outside
/// the simulation through a shared handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiscardStats {
    /// Datagrams received.
    pub datagrams: u64,
    /// Application payload bytes received.
    pub payload_bytes: u64,
}

/// The DISCARD service (RFC 863): accepts datagrams and drops them,
/// counting as it goes — the paper's load-generator target.
#[derive(Debug, Default)]
pub struct DiscardSink {
    stats: Rc<RefCell<DiscardStats>>,
}

impl DiscardSink {
    /// Creates a sink and a handle to its statistics.
    pub fn with_handle() -> (Self, Rc<RefCell<DiscardStats>>) {
        let stats = Rc::new(RefCell::new(DiscardStats::default()));
        (
            DiscardSink {
                stats: stats.clone(),
            },
            stats,
        )
    }
}

impl UdpApp for DiscardSink {
    fn on_datagram(&mut self, _ctx: &mut AppCtx<'_>, dgram: &UdpDatagram) {
        let mut s = self.stats.borrow_mut();
        s.datagrams += 1;
        s.payload_bytes += dgram.payload.len() as u64;
    }
}

/// The ECHO service (RFC 862): returns every datagram to its sender —
/// used by the latency-measurement extension.
#[derive(Debug, Default)]
pub struct EchoResponder;

impl UdpApp for EchoResponder {
    fn on_datagram(&mut self, ctx: &mut AppCtx<'_>, dgram: &UdpDatagram) {
        ctx.send_udp(
            dgram.dst_port,
            dgram.src_ip,
            dgram.src_port,
            dgram.payload.clone(),
        );
    }
}

/// A mailbox app: stores everything it receives, for external inspection.
/// The in-simulation SNMP manager uses one of these to collect agent
/// responses between engine steps.
#[derive(Debug, Default)]
pub struct Mailbox {
    inbox: Rc<RefCell<Vec<(SimTime, UdpDatagram)>>>,
}

impl Mailbox {
    /// Creates a mailbox and a handle to its inbox.
    #[allow(clippy::type_complexity)]
    pub fn with_handle() -> (Self, Rc<RefCell<Vec<(SimTime, UdpDatagram)>>>) {
        let inbox: Rc<RefCell<Vec<(SimTime, UdpDatagram)>>> = Rc::default();
        (
            Mailbox {
                inbox: inbox.clone(),
            },
            inbox,
        )
    }
}

impl UdpApp for Mailbox {
    fn on_datagram(&mut self, ctx: &mut AppCtx<'_>, dgram: &UdpDatagram) {
        self.inbox.borrow_mut().push((ctx.now(), dgram.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::MacAddr;

    fn ctx_with_nics(nics: &[Nic]) -> AppCtx<'_> {
        AppCtx {
            now: SimTime::from_micros(2_500_000),
            dev: DeviceId(0),
            device_name: "L",
            device_ip: Some(Ipv4Addr::new(10, 0, 0, 1)),
            epoch: SimTime::ZERO,
            nics,
            fdb: None,
            actions: Vec::new(),
        }
    }

    #[test]
    fn fdb_snapshot_none_on_hosts_sorted_on_switches() {
        let ctx = ctx_with_nics(&[]);
        assert!(ctx.fdb_snapshot().is_none());

        let mut table = std::collections::HashMap::new();
        table.insert(MacAddr::from_seed(9), PortIx(2));
        table.insert(MacAddr::from_seed(1), PortIx(0));
        let mut ctx = ctx_with_nics(&[]);
        ctx.fdb = Some(&table);
        let snap = ctx.fdb_snapshot().unwrap();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0], (MacAddr::from_seed(1), 1)); // sorted, 1-based
        assert_eq!(snap[1], (MacAddr::from_seed(9), 3));
    }

    #[test]
    fn uptime_ticks_from_epoch() {
        let ctx = ctx_with_nics(&[]);
        assert_eq!(ctx.uptime_ticks(), 250);
    }

    #[test]
    fn nic_snapshots_are_one_based() {
        let nics = vec![
            Nic::new(MacAddr::from_seed(1), "eth0", 100),
            Nic::new(MacAddr::from_seed(2), "eth1", 200),
        ];
        let ctx = ctx_with_nics(&nics);
        let snaps = ctx.nic_snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].if_index, 1);
        assert_eq!(snaps[1].if_index, 2);
        assert_eq!(snaps[1].descr, "eth1");
    }

    #[test]
    fn actions_are_deferred() {
        let mut ctx = ctx_with_nics(&[]);
        ctx.send_udp(1, Ipv4Addr::new(10, 0, 0, 2), 9, Bytes::from_static(b"x"));
        ctx.schedule(SimDuration::from_millis(5), 42);
        ctx.send_raw_broadcast(60, None);
        assert_eq!(ctx.actions.len(), 3);
    }

    #[test]
    fn discard_sink_counts() {
        let (mut sink, handle) = DiscardSink::with_handle();
        let mut ctx = ctx_with_nics(&[]);
        let d = UdpDatagram {
            src_ip: Ipv4Addr::new(10, 0, 0, 2),
            dst_ip: Ipv4Addr::new(10, 0, 0, 1),
            src_port: 5000,
            dst_port: 9,
            payload: Bytes::from(vec![0u8; 100]),
        };
        sink.on_datagram(&mut ctx, &d);
        sink.on_datagram(&mut ctx, &d);
        let s = handle.borrow();
        assert_eq!(s.datagrams, 2);
        assert_eq!(s.payload_bytes, 200);
    }

    #[test]
    fn echo_swaps_endpoints() {
        let mut echo = EchoResponder;
        let mut ctx = ctx_with_nics(&[]);
        let d = UdpDatagram {
            src_ip: Ipv4Addr::new(10, 0, 0, 2),
            dst_ip: Ipv4Addr::new(10, 0, 0, 1),
            src_port: 5000,
            dst_port: 7,
            payload: Bytes::from_static(b"ping"),
        };
        echo.on_datagram(&mut ctx, &d);
        match &ctx.actions[0] {
            Action::SendUdp {
                src_port,
                dst_ip,
                dst_port,
                payload,
            } => {
                assert_eq!(*src_port, 7);
                assert_eq!(*dst_ip, Ipv4Addr::new(10, 0, 0, 2));
                assert_eq!(*dst_port, 5000);
                assert_eq!(payload.as_ref(), b"ping");
            }
            other => panic!("unexpected action {other:?}"),
        }
    }
}
