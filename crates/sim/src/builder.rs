//! Assembling a [`Lan`].
//!
//! The builder mirrors the topology operations of `netqos-topology` so a
//! parsed specification can be lowered mechanically: add devices, add
//! NICs, cable ports, install apps, build.

use crate::addr::{Ipv4Addr, MacAddr};
use crate::app::UdpApp;
use crate::error::SimError;
use crate::events::{AppId, DeviceId, LinkId, PortIx};
use crate::nic::Nic;
use crate::time::{SimDuration, SimTime};
use crate::world::{Device, DeviceKind, Lan, Link};
use std::collections::HashMap;

/// Builder for a [`Lan`].
pub struct LanBuilder {
    devices: Vec<Device>,
    links: Vec<Link>,
    arp: HashMap<Ipv4Addr, (DeviceId, MacAddr)>,
    name_index: HashMap<String, DeviceId>,
    mac_seed: u64,
    default_propagation: SimDuration,
}

impl Default for LanBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl LanBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        LanBuilder {
            devices: Vec::new(),
            links: Vec::new(),
            arp: HashMap::new(),
            name_index: HashMap::new(),
            mac_seed: 1,
            default_propagation: SimDuration::from_micros(2), // ~400 m of cable
        }
    }

    /// Sets the propagation delay used by subsequent `connect` calls.
    pub fn set_propagation(&mut self, d: SimDuration) {
        self.default_propagation = d;
    }

    fn add_device(&mut self, name: &str, kind: DeviceKind) -> Result<DeviceId, SimError> {
        if self.name_index.contains_key(name) {
            return Err(SimError::DuplicateName(name.to_owned()));
        }
        let id = DeviceId(self.devices.len() as u32);
        self.devices.push(Device {
            name: name.to_owned(),
            kind,
            nics: Vec::new(),
            apps: Vec::new(),
            udp_bindings: HashMap::new(),
            epoch: SimTime::ZERO,
        });
        self.name_index.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Adds a host with the given IP.
    pub fn add_host(&mut self, name: &str, ip: &str) -> Result<DeviceId, SimError> {
        let ip: Ipv4Addr = ip
            .parse()
            .map_err(|_| SimError::DuplicateIp(Ipv4Addr::new(0, 0, 0, 0)))?;
        self.add_host_addr(name, ip)
    }

    /// Adds a host with a parsed IP.
    pub fn add_host_addr(&mut self, name: &str, ip: Ipv4Addr) -> Result<DeviceId, SimError> {
        if self.arp.contains_key(&ip) {
            return Err(SimError::DuplicateIp(ip));
        }
        let id = self.add_device(
            name,
            DeviceKind::Host {
                ip,
                routes: HashMap::new(),
            },
        )?;
        // ARP registration completes when the first NIC appears; reserve
        // the entry now with a placeholder MAC and fix it in add_nic.
        self.arp.insert(ip, (id, MacAddr::from_seed(0)));
        Ok(id)
    }

    /// Adds a switch; pass a management IP to make it SNMP-manageable.
    pub fn add_switch(&mut self, name: &str, mgmt_ip: Option<&str>) -> Result<DeviceId, SimError> {
        let mgmt = match mgmt_ip {
            Some(s) => {
                let ip: Ipv4Addr = s
                    .parse()
                    .map_err(|_| SimError::DuplicateIp(Ipv4Addr::new(0, 0, 0, 0)))?;
                if self.arp.contains_key(&ip) {
                    return Err(SimError::DuplicateIp(ip));
                }
                let mac = MacAddr::from_seed(0xAAAA_0000 + self.mac_seed);
                self.mac_seed += 1;
                Some((ip, mac))
            }
            None => None,
        };
        let id = self.add_device(
            name,
            DeviceKind::Switch {
                mgmt,
                mac_table: HashMap::new(),
                proc_delay: SimDuration::from_micros(5),
            },
        )?;
        if let Some((ip, mac)) = mgmt {
            self.arp.insert(ip, (id, mac));
        }
        Ok(id)
    }

    /// Adds a hub with the given shared-medium rate.
    pub fn add_hub(&mut self, name: &str, medium_bps: u64) -> Result<DeviceId, SimError> {
        self.add_device(
            name,
            DeviceKind::Hub {
                medium_bps,
                medium_free_at: SimTime::ZERO,
            },
        )
    }

    /// Adds a NIC/port to a device; returns its port index.
    pub fn add_nic(
        &mut self,
        dev: DeviceId,
        descr: &str,
        speed_bps: u64,
    ) -> Result<PortIx, SimError> {
        let d = self
            .devices
            .get_mut(dev.index())
            .ok_or(SimError::NoSuchDevice(dev))?;
        let mac = MacAddr::from_seed(self.mac_seed);
        self.mac_seed += 1;
        let port = PortIx(d.nics.len() as u32);
        d.nics.push(Nic::new(mac, descr, speed_bps));
        // The host's first NIC defines its ARP-visible MAC.
        if port == PortIx(0) {
            if let DeviceKind::Host { ip, .. } = &d.kind {
                self.arp.insert(*ip, (dev, mac));
            }
        }
        Ok(port)
    }

    /// Cables two ports together. The link rate is the minimum of the two
    /// NIC speeds (auto-negotiation).
    pub fn connect(
        &mut self,
        a: (DeviceId, PortIx),
        b: (DeviceId, PortIx),
    ) -> Result<LinkId, SimError> {
        if a == b {
            return Err(SimError::SelfLink(a.0, a.1));
        }
        for (dev, port) in [a, b] {
            let d = self
                .devices
                .get(dev.index())
                .ok_or(SimError::NoSuchDevice(dev))?;
            let nic = d
                .nics
                .get(port.index())
                .ok_or(SimError::NoSuchPort(dev, port))?;
            if nic.link.is_some() {
                return Err(SimError::PortAlreadyLinked(dev, port));
            }
        }
        let rate = self.devices[a.0.index()].nics[a.1.index()]
            .speed_bps
            .min(self.devices[b.0.index()].nics[b.1.index()].speed_bps);
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            a,
            b,
            bits_per_sec: rate,
            propagation: self.default_propagation,
            loss_probability: 0.0,
        });
        self.devices[a.0.index()].nics[a.1.index()].link = Some(id);
        self.devices[b.0.index()].nics[b.1.index()].link = Some(id);
        Ok(id)
    }

    /// Adds a static route on a multi-homed host: traffic for `dst_ip`
    /// leaves through `port`.
    pub fn add_route(&mut self, dev: DeviceId, dst_ip: &str, port: PortIx) -> Result<(), SimError> {
        let ip: Ipv4Addr = dst_ip
            .parse()
            .map_err(|_| SimError::DuplicateIp(Ipv4Addr::new(0, 0, 0, 0)))?;
        let d = self
            .devices
            .get_mut(dev.index())
            .ok_or(SimError::NoSuchDevice(dev))?;
        if port.index() >= d.nics.len() {
            return Err(SimError::NoSuchPort(dev, port));
        }
        match &mut d.kind {
            DeviceKind::Host { routes, .. } => {
                routes.insert(ip, port);
                Ok(())
            }
            _ => Err(SimError::NotAHost(dev)),
        }
    }

    /// Installs an app on a device, optionally binding it to a UDP port.
    pub fn install_app(
        &mut self,
        dev: DeviceId,
        app: Box<dyn UdpApp>,
        udp_port: Option<u16>,
    ) -> Result<AppId, SimError> {
        let d = self
            .devices
            .get_mut(dev.index())
            .ok_or(SimError::NoSuchDevice(dev))?;
        let id = AppId(d.apps.len() as u32);
        if let Some(port) = udp_port {
            if d.udp_bindings.contains_key(&port) {
                return Err(SimError::UdpPortTaken(dev, port));
            }
            d.udp_bindings.insert(port, id);
        }
        d.apps.push(Some(app));
        Ok(id)
    }

    /// Finalizes the LAN and starts all apps.
    pub fn build(self) -> Lan {
        let mut lan = Lan::from_parts(self.devices, self.links, self.arp, self.name_index);
        lan.start();
        lan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_names_rejected() {
        let mut b = LanBuilder::new();
        b.add_host("A", "10.0.0.1").unwrap();
        assert!(matches!(
            b.add_host("A", "10.0.0.2"),
            Err(SimError::DuplicateName(_))
        ));
    }

    #[test]
    fn duplicate_ips_rejected() {
        let mut b = LanBuilder::new();
        b.add_host("A", "10.0.0.1").unwrap();
        assert!(matches!(
            b.add_host("B", "10.0.0.1"),
            Err(SimError::DuplicateIp(_))
        ));
    }

    #[test]
    fn connect_validates_ports() {
        let mut b = LanBuilder::new();
        let a = b.add_host("A", "10.0.0.1").unwrap();
        let a0 = b.add_nic(a, "eth0", 100).unwrap();
        let c = b.add_host("B", "10.0.0.2").unwrap();
        let c0 = b.add_nic(c, "eth0", 100).unwrap();
        assert!(matches!(
            b.connect((a, a0), (a, a0)),
            Err(SimError::SelfLink(..))
        ));
        assert!(matches!(
            b.connect((a, PortIx(9)), (c, c0)),
            Err(SimError::NoSuchPort(..))
        ));
        b.connect((a, a0), (c, c0)).unwrap();
        // Port is taken now.
        let d = b.add_host("D", "10.0.0.3").unwrap();
        let d0 = b.add_nic(d, "eth0", 100).unwrap();
        assert!(matches!(
            b.connect((a, a0), (d, d0)),
            Err(SimError::PortAlreadyLinked(..))
        ));
    }

    #[test]
    fn link_rate_is_min_of_nics() {
        let mut b = LanBuilder::new();
        let a = b.add_host("A", "10.0.0.1").unwrap();
        let a0 = b.add_nic(a, "eth0", 100_000_000).unwrap();
        let c = b.add_host("B", "10.0.0.2").unwrap();
        let c0 = b.add_nic(c, "eth0", 10_000_000).unwrap();
        b.connect((a, a0), (c, c0)).unwrap();
        assert_eq!(b.links[0].bits_per_sec, 10_000_000);
    }

    #[test]
    fn udp_port_conflict_rejected() {
        use crate::app::DiscardSink;
        let mut b = LanBuilder::new();
        let a = b.add_host("A", "10.0.0.1").unwrap();
        b.install_app(a, Box::new(DiscardSink::default()), Some(9))
            .unwrap();
        assert!(matches!(
            b.install_app(a, Box::new(DiscardSink::default()), Some(9)),
            Err(SimError::UdpPortTaken(..))
        ));
        // Unbound apps are fine in any number.
        b.install_app(a, Box::new(DiscardSink::default()), None)
            .unwrap();
    }

    #[test]
    fn routes_only_on_hosts() {
        let mut b = LanBuilder::new();
        let sw = b.add_switch("sw", None).unwrap();
        b.add_nic(sw, "p1", 100).unwrap();
        assert!(matches!(
            b.add_route(sw, "10.0.0.9", PortIx(0)),
            Err(SimError::NotAHost(_))
        ));
        let a = b.add_host("A", "10.0.0.1").unwrap();
        b.add_nic(a, "eth0", 100).unwrap();
        b.add_nic(a, "eth1", 100).unwrap();
        b.add_route(a, "10.0.0.9", PortIx(1)).unwrap();
    }

    #[test]
    fn build_produces_named_devices() {
        let mut b = LanBuilder::new();
        let a = b.add_host("A", "10.0.0.1").unwrap();
        b.add_nic(a, "eth0", 100).unwrap();
        let lan = b.build();
        assert_eq!(lan.device_by_name("A"), Some(a));
        assert_eq!(lan.device_name(a).unwrap(), "A");
        assert_eq!(lan.device_ip(a).unwrap(), Some("10.0.0.1".parse().unwrap()));
    }
}
