//! Built-in traffic sources.
//!
//! [`CbrSource`] is a fixed-rate UDP sender (the full profile-driven load
//! generator of the paper lives in `netqos-loadgen`); [`NoiseSource`] is
//! the stochastic background chatter that gives experiments the small
//! "background traffic" floor the paper measures and subtracts.

use crate::addr::Ipv4Addr;
use crate::app::{AppCtx, UdpApp};
use crate::time::SimDuration;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A constant-bit-rate UDP sender: emits `chunk_bytes` of payload every
/// `chunk_bytes / rate` seconds toward a destination port.
pub struct CbrSource {
    /// Destination IP.
    pub dst_ip: Ipv4Addr,
    /// Destination UDP port.
    pub dst_port: u16,
    /// Source UDP port.
    pub src_port: u16,
    /// Application payload rate in bytes/second.
    pub rate_bytes_per_sec: u64,
    /// Payload bytes per send (fragmented to MTU by the stack if larger).
    pub chunk_bytes: usize,
    /// Stop after this much simulated time (None = forever).
    pub stop_after: Option<SimDuration>,
    elapsed: SimDuration,
}

impl CbrSource {
    /// Creates a CBR source.
    pub fn new(
        dst_ip: Ipv4Addr,
        dst_port: u16,
        rate_bytes_per_sec: u64,
        chunk_bytes: usize,
    ) -> Self {
        CbrSource {
            dst_ip,
            dst_port,
            src_port: 30000,
            rate_bytes_per_sec,
            chunk_bytes: chunk_bytes.max(1),
            stop_after: None,
            elapsed: SimDuration::ZERO,
        }
    }

    fn interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.chunk_bytes as f64 / self.rate_bytes_per_sec as f64)
    }
}

impl UdpApp for CbrSource {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        if self.rate_bytes_per_sec > 0 {
            ctx.schedule(self.interval(), 0);
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx<'_>, _token: u64) {
        let iv = self.interval();
        self.elapsed = self.elapsed + iv;
        if let Some(stop) = self.stop_after {
            if self.elapsed > stop {
                return;
            }
        }
        ctx.send_udp(
            self.src_port,
            self.dst_ip,
            self.dst_port,
            Bytes::from(vec![0u8; self.chunk_bytes]),
        );
        ctx.schedule(iv, 0);
    }
}

/// Stochastic background broadcast chatter: small frames at exponentially
/// distributed intervals, seeded for reproducibility.
pub struct NoiseSource {
    rng: StdRng,
    /// Mean interval between frames.
    pub mean_interval: SimDuration,
    /// IP-length range of emitted frames.
    pub len_range: (usize, usize),
}

impl NoiseSource {
    /// Creates a noise source with the given seed and mean rate.
    pub fn new(seed: u64, mean_interval: SimDuration) -> Self {
        NoiseSource {
            rng: StdRng::seed_from_u64(seed),
            mean_interval,
            len_range: (46, 300),
        }
    }

    fn next_interval(&mut self) -> SimDuration {
        // Exponential via inverse CDF; clamp away from zero.
        let u: f64 = self.rng.gen_range(1e-6..1.0);
        let secs = -u.ln() * self.mean_interval.as_secs_f64();
        SimDuration::from_secs_f64(secs.max(1e-6))
    }
}

impl UdpApp for NoiseSource {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        let iv = self.next_interval();
        ctx.schedule(iv, 0);
    }

    fn on_timer(&mut self, ctx: &mut AppCtx<'_>, _token: u64) {
        let len = self.rng.gen_range(self.len_range.0..=self.len_range.1);
        ctx.send_raw_broadcast(len, None);
        let iv = self.next_interval();
        ctx.schedule(iv, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::DiscardSink;
    use crate::builder::LanBuilder;
    use crate::events::PortIx;
    use crate::packet::DISCARD_PORT;
    use crate::time::SimTime;

    #[test]
    fn cbr_rate_is_accurate() {
        let mut b = LanBuilder::new();
        let a = b.add_host("A", "10.0.0.1").unwrap();
        b.add_nic(a, "eth0", 100_000_000).unwrap();
        let d = b.add_host("B", "10.0.0.2").unwrap();
        b.add_nic(d, "eth0", 100_000_000).unwrap();
        b.connect((a, PortIx(0)), (d, PortIx(0))).unwrap();
        let (sink, handle) = DiscardSink::with_handle();
        b.install_app(d, Box::new(sink), Some(DISCARD_PORT))
            .unwrap();
        // 100 KB/s in 1 KB chunks.
        b.install_app(
            a,
            Box::new(CbrSource::new(
                "10.0.0.2".parse().unwrap(),
                DISCARD_PORT,
                100_000,
                1000,
            )),
            None,
        )
        .unwrap();
        let mut lan = b.build();
        lan.run_until(SimTime::ZERO + SimDuration::from_secs(10));
        let got = handle.borrow().payload_bytes as f64;
        let expect = 100_000.0 * 10.0;
        let err = (got - expect).abs() / expect;
        assert!(err < 0.02, "got {got}, expected {expect} (err {err})");
    }

    #[test]
    fn cbr_stop_after_halts_traffic() {
        let mut b = LanBuilder::new();
        let a = b.add_host("A", "10.0.0.1").unwrap();
        b.add_nic(a, "eth0", 100_000_000).unwrap();
        let d = b.add_host("B", "10.0.0.2").unwrap();
        b.add_nic(d, "eth0", 100_000_000).unwrap();
        b.connect((a, PortIx(0)), (d, PortIx(0))).unwrap();
        let (sink, handle) = DiscardSink::with_handle();
        b.install_app(d, Box::new(sink), Some(DISCARD_PORT))
            .unwrap();
        let mut src = CbrSource::new("10.0.0.2".parse().unwrap(), DISCARD_PORT, 100_000, 1000);
        src.stop_after = Some(SimDuration::from_secs(2));
        b.install_app(a, Box::new(src), None).unwrap();
        let mut lan = b.build();
        lan.run_for(SimDuration::from_secs(10));
        let got = handle.borrow().payload_bytes as f64;
        // ~2 seconds of traffic only.
        assert!(got <= 210_000.0, "got {got}");
        assert!(got >= 180_000.0, "got {got}");
    }

    #[test]
    fn noise_is_reproducible_across_runs() {
        let run = || {
            let mut b = LanBuilder::new();
            let a = b.add_host("A", "10.0.0.1").unwrap();
            b.add_nic(a, "eth0", 10_000_000).unwrap();
            let d = b.add_host("B", "10.0.0.2").unwrap();
            b.add_nic(d, "eth0", 10_000_000).unwrap();
            b.connect((a, PortIx(0)), (d, PortIx(0))).unwrap();
            b.install_app(
                a,
                Box::new(NoiseSource::new(42, SimDuration::from_millis(50))),
                None,
            )
            .unwrap();
            let mut lan = b.build();
            lan.run_for(SimDuration::from_secs(5));
            lan.nic_counters(d, PortIx(0)).unwrap().in_octets.value()
        };
        let x = run();
        let y = run();
        assert!(x > 0);
        assert_eq!(x, y, "same seed must give identical traffic");
    }

    #[test]
    fn noise_counts_as_nucast_on_receivers() {
        let mut b = LanBuilder::new();
        let a = b.add_host("A", "10.0.0.1").unwrap();
        b.add_nic(a, "eth0", 10_000_000).unwrap();
        let d = b.add_host("B", "10.0.0.2").unwrap();
        b.add_nic(d, "eth0", 10_000_000).unwrap();
        b.connect((a, PortIx(0)), (d, PortIx(0))).unwrap();
        b.install_app(
            a,
            Box::new(NoiseSource::new(7, SimDuration::from_millis(20))),
            None,
        )
        .unwrap();
        let mut lan = b.build();
        lan.run_for(SimDuration::from_secs(2));
        let c = lan.nic_counters(d, PortIx(0)).unwrap();
        assert!(c.in_nucast_pkts.value() > 10);
        assert_eq!(c.in_ucast_pkts.value(), 0);
    }
}
