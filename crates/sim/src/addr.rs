//! Layer-2 and layer-3 addresses.

use std::fmt;
use std::str::FromStr;

/// A 48-bit Ethernet MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Deterministic locally-administered unicast MAC derived from a seed
    /// (used by the builder to assign unique NIC addresses).
    pub fn from_seed(seed: u64) -> MacAddr {
        let b = seed.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    /// True for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == MacAddr::BROADCAST
    }

    /// Raw octets.
    pub fn octets(self) -> [u8; 6] {
        self.0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// An IPv4 address (the simulator's only network-layer protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// Builds from octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr([a, b, c, d])
    }

    /// Raw octets.
    pub fn octets(self) -> [u8; 4] {
        self.0
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// Error parsing an IPv4 address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIpError(pub String);

impl fmt::Display for ParseIpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 address `{}`", self.0)
    }
}

impl std::error::Error for ParseIpError {}

impl FromStr for Ipv4Addr {
    type Err = ParseIpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut n = 0;
        for part in s.split('.') {
            if n == 4 {
                return Err(ParseIpError(s.to_owned()));
            }
            octets[n] = part.parse().map_err(|_| ParseIpError(s.to_owned()))?;
            n += 1;
        }
        if n != 4 {
            return Err(ParseIpError(s.to_owned()));
        }
        Ok(Ipv4Addr(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_from_seed_unique_and_unicast() {
        let a = MacAddr::from_seed(1);
        let b = MacAddr::from_seed(2);
        assert_ne!(a, b);
        assert!(!a.is_broadcast());
        assert_eq!(a.octets()[0], 0x02);
    }

    #[test]
    fn mac_display() {
        assert_eq!(MacAddr::BROADCAST.to_string(), "ff:ff:ff:ff:ff:ff");
        assert_eq!(
            MacAddr([0x02, 0, 0, 0, 0, 0x2a]).to_string(),
            "02:00:00:00:00:2a"
        );
    }

    #[test]
    fn ip_parse_and_display() {
        let ip: Ipv4Addr = "10.0.0.42".parse().unwrap();
        assert_eq!(ip, Ipv4Addr::new(10, 0, 0, 42));
        assert_eq!(ip.to_string(), "10.0.0.42");
    }

    #[test]
    fn ip_parse_rejects_garbage() {
        assert!("10.0.0".parse::<Ipv4Addr>().is_err());
        assert!("10.0.0.0.1".parse::<Ipv4Addr>().is_err());
        assert!("10.0.0.256".parse::<Ipv4Addr>().is_err());
        assert!("a.b.c.d".parse::<Ipv4Addr>().is_err());
    }
}
