//! The LAN world: devices, links, and the discrete-event engine.
//!
//! ## Forwarding model
//!
//! * **Hosts** accept frames addressed to their NIC's MAC (or broadcast);
//!   everything else is filtered in "hardware" and — matching real
//!   non-promiscuous NICs — not counted by the interface counters. UDP
//!   datagrams are delivered to the app bound to the destination port.
//! * **Switches** are store-and-forward learning bridges: the source MAC
//!   of every frame is learned against its ingress port; unicast frames go
//!   out the learned port only (or flood when unknown); broadcasts flood.
//!   A managed switch additionally owns a management MAC/IP and delivers
//!   frames addressed to it to its own apps (the SNMP agent).
//! * **Hubs** repeat every arriving frame out all other ports through one
//!   shared medium: the repeat serializes at the hub's rate through a
//!   single `medium_free_at` gate, so concurrent senders share the hub's
//!   capacity — the physical property behind the paper's hub-sum
//!   bandwidth rule.
//!
//! ## Timing model
//!
//! A transmitted frame occupies its out-port for `wire_len / link_rate`
//! (frames queue FIFO behind `tx_free_at`, with tail-drop past the port's
//! backlog limit) and arrives after the link's propagation delay. Hub
//! repeats additionally serialize through the shared medium. Timing is
//! intentionally simple — the monitor under test observes *byte counters*,
//! not microsecond latencies — but capacity limits and queue losses are
//! real, so overload behaves like overload.

use crate::addr::{Ipv4Addr, MacAddr};
use crate::app::{Action, AppCtx, UdpApp};
use crate::error::SimError;
use crate::events::{AppId, DeviceId, Event, EventQueue, PortIx};
use crate::nic::{Nic, NicCounters, NicSnapshot};
use crate::packet::{fragment_sizes, Frame, FramePayload, UdpDatagram};
use crate::time::{SimDuration, SimTime};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Role-specific device state.
#[derive(Debug)]
pub(crate) enum DeviceKind {
    /// An end host.
    Host {
        ip: Ipv4Addr,
        /// Static routes: destination IP → out port. Missing entries fall
        /// back to port 0 (hosts are usually single-homed).
        routes: HashMap<Ipv4Addr, PortIx>,
    },
    /// A learning switch, optionally managed (management IP + MAC).
    Switch {
        mgmt: Option<(Ipv4Addr, MacAddr)>,
        mac_table: HashMap<MacAddr, PortIx>,
        proc_delay: SimDuration,
    },
    /// A repeater hub with a shared medium.
    Hub {
        medium_bps: u64,
        medium_free_at: SimTime,
    },
}

pub(crate) struct Device {
    pub(crate) name: String,
    pub(crate) kind: DeviceKind,
    pub(crate) nics: Vec<Nic>,
    pub(crate) apps: Vec<Option<Box<dyn UdpApp>>>,
    pub(crate) udp_bindings: HashMap<u16, AppId>,
    pub(crate) epoch: SimTime,
}

impl Device {
    fn ip(&self) -> Option<Ipv4Addr> {
        match &self.kind {
            DeviceKind::Host { ip, .. } => Some(*ip),
            DeviceKind::Switch { mgmt, .. } => mgmt.map(|(ip, _)| ip),
            DeviceKind::Hub { .. } => None,
        }
    }
}

/// A cable between two ports.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Link {
    pub(crate) a: (DeviceId, PortIx),
    pub(crate) b: (DeviceId, PortIx),
    pub(crate) bits_per_sec: u64,
    pub(crate) propagation: SimDuration,
    /// Probability in [0, 1] that a frame is corrupted in transit and
    /// dropped at the receiver (counted as an input error). Zero on
    /// healthy cables; used for failure injection.
    pub(crate) loss_probability: f64,
}

impl Link {
    fn far_end(&self, dev: DeviceId, port: PortIx) -> (DeviceId, PortIx) {
        if (dev, port) == self.a {
            self.b
        } else {
            self.a
        }
    }
}

/// Global engine statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LanStats {
    /// Frames fully delivered to a device port.
    pub frames_delivered: u64,
    /// Frames a switch forwarded to a known port.
    pub frames_forwarded: u64,
    /// Frames flooded (unknown destination or broadcast).
    pub frames_flooded: u64,
    /// Frames dropped at a full transmit queue.
    pub frames_dropped_queue: u64,
    /// Frames a hub dropped because the shared medium backlog was full.
    pub frames_dropped_medium: u64,
    /// Datagrams delivered to applications.
    pub datagrams_delivered: u64,
    /// Datagrams arriving on an unbound UDP port (silently discarded).
    pub datagrams_unbound: u64,
    /// Frames corrupted on a lossy link and dropped at the receiver.
    pub frames_dropped_loss: u64,
    /// Sends that failed for lack of an ARP entry.
    pub arp_failures: u64,
    /// App timer events dispatched.
    pub timers_fired: u64,
}

/// The simulated LAN.
pub struct Lan {
    pub(crate) devices: Vec<Device>,
    pub(crate) links: Vec<Link>,
    pub(crate) queue: EventQueue,
    pub(crate) now: SimTime,
    pub(crate) arp: HashMap<Ipv4Addr, (DeviceId, MacAddr)>,
    pub(crate) name_index: HashMap<String, DeviceId>,
    pub(crate) stats: LanStats,
    pub(crate) rng: StdRng,
    started: bool,
}

impl Lan {
    pub(crate) fn from_parts(
        devices: Vec<Device>,
        links: Vec<Link>,
        arp: HashMap<Ipv4Addr, (DeviceId, MacAddr)>,
        name_index: HashMap<String, DeviceId>,
    ) -> Self {
        Lan {
            devices,
            links,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            arp,
            name_index,
            stats: LanStats::default(),
            rng: StdRng::seed_from_u64(0xC0FF_EE00),
            started: false,
        }
    }

    /// Sets the corruption probability of the link attached to the given
    /// port (failure injection). Frames lost this way increment the
    /// receiver's `ifInErrors`.
    pub fn set_link_loss(
        &mut self,
        dev: DeviceId,
        port: PortIx,
        probability: f64,
    ) -> Result<(), SimError> {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability out of range"
        );
        let link_id = self
            .device(dev)?
            .nics
            .get(port.index())
            .ok_or(SimError::NoSuchPort(dev, port))?
            .link
            .ok_or(SimError::NoSuchPort(dev, port))?;
        self.links[link_id.index()].loss_probability = probability;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Engine statistics.
    pub fn stats(&self) -> LanStats {
        self.stats
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Device lookup by name.
    pub fn device_by_name(&self, name: &str) -> Option<DeviceId> {
        self.name_index.get(name).copied()
    }

    /// A device's name.
    pub fn device_name(&self, dev: DeviceId) -> Result<&str, SimError> {
        Ok(&self.device(dev)?.name)
    }

    /// A device's IP (hosts and managed switches).
    pub fn device_ip(&self, dev: DeviceId) -> Result<Option<Ipv4Addr>, SimError> {
        Ok(self.device(dev)?.ip())
    }

    /// Snapshot of one NIC's counters.
    pub fn nic_counters(&self, dev: DeviceId, port: PortIx) -> Result<NicCounters, SimError> {
        let d = self.device(dev)?;
        d.nics
            .get(port.index())
            .map(|n| n.counters)
            .ok_or(SimError::NoSuchPort(dev, port))
    }

    /// Snapshots of all NICs of a device in ifIndex order.
    pub fn nic_snapshots(&self, dev: DeviceId) -> Result<Vec<NicSnapshot>, SimError> {
        let d = self.device(dev)?;
        Ok(d.nics
            .iter()
            .enumerate()
            .map(|(i, n)| NicSnapshot {
                if_index: i as u32 + 1,
                descr: n.descr.clone(),
                speed_bps: n.speed_bps,
                mac: n.mac,
                counters: n.counters,
            })
            .collect())
    }

    /// `sysUpTime` of a device at the current instant, in TimeTicks.
    pub fn uptime_ticks(&self, dev: DeviceId) -> Result<u32, SimError> {
        Ok(self.now.timeticks_since(self.device(dev)?.epoch))
    }

    /// Pre-loads a NIC's octet counters (e.g. to just below the 2^32 wrap
    /// point), so tests can exercise counter-wrap handling without
    /// simulating gigabytes of traffic. Mirrors a host that has been up
    /// for a long time before monitoring starts.
    pub fn preload_octet_counters(
        &mut self,
        dev: DeviceId,
        port: PortIx,
        in_octets: u32,
        out_octets: u32,
    ) -> Result<(), SimError> {
        let d = self
            .devices
            .get_mut(dev.index())
            .ok_or(SimError::NoSuchDevice(dev))?;
        let nic = d
            .nics
            .get_mut(port.index())
            .ok_or(SimError::NoSuchPort(dev, port))?;
        nic.counters.in_octets = crate::counters::Counter32::with_value(in_octets);
        nic.counters.out_octets = crate::counters::Counter32::with_value(out_octets);
        Ok(())
    }

    fn device(&self, dev: DeviceId) -> Result<&Device, SimError> {
        self.devices
            .get(dev.index())
            .ok_or(SimError::NoSuchDevice(dev))
    }

    // ------------------------------------------------------------------
    // External stimulation
    // ------------------------------------------------------------------

    /// Injects a UDP send from a device, as if one of its apps called
    /// [`AppCtx::send_udp`]. Used by external drivers (e.g. the monitor
    /// runtime posting SNMP polls).
    pub fn post_udp(
        &mut self,
        dev: DeviceId,
        src_port: u16,
        dst_ip: Ipv4Addr,
        dst_port: u16,
        payload: Bytes,
    ) -> Result<(), SimError> {
        self.device(dev)?;
        self.send_udp_internal(dev, src_port, dst_ip, dst_port, payload)
    }

    /// Arms a timer for an installed app from outside the simulation.
    pub fn post_timer(
        &mut self,
        dev: DeviceId,
        app: AppId,
        after: SimDuration,
        token: u64,
    ) -> Result<(), SimError> {
        let d = self.device(dev)?;
        if app.index() >= d.apps.len() {
            return Err(SimError::NoSuchApp(dev, app.0));
        }
        self.queue
            .push(self.now + after, Event::Timer { dev, app, token });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Engine
    // ------------------------------------------------------------------

    /// Runs `on_start` for every installed app (idempotent; invoked by the
    /// builder's `build()`).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for dev_ix in 0..self.devices.len() {
            let dev = DeviceId(dev_ix as u32);
            let app_count = self.devices[dev_ix].apps.len();
            for app_ix in 0..app_count {
                self.with_app(dev, AppId(app_ix as u32), |app, ctx| app.on_start(ctx));
            }
        }
    }

    /// Processes the next event, if any. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        let Some(scheduled) = self.queue.pop() else {
            return false;
        };
        debug_assert!(scheduled.at >= self.now, "time went backwards");
        netqos_telemetry::global()
            .counter("netqos_sim_events_total")
            .inc();
        self.now = scheduled.at;
        match scheduled.event {
            Event::FrameArrive { dev, port, frame } => self.handle_frame_arrive(dev, port, frame),
            Event::Timer { dev, app, token } => {
                self.stats.timers_fired += 1;
                self.with_app(dev, app, |a, ctx| a.on_timer(ctx, token));
            }
        }
        true
    }

    /// Runs until simulated time reaches `until` (events after `until`
    /// stay queued; `now` advances to exactly `until`).
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            self.step();
        }
        if self.now < until {
            self.now = until;
        }
    }

    /// Runs for a span of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let until = self.now + d;
        self.run_until(until);
    }

    /// Number of pending events (for tests and progress reporting).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Processes one event if it is due at or before `deadline`; returns
    /// `true` if an event was processed. When nothing is due, the clock
    /// advances to `deadline` and `false` is returned. This lets external
    /// drivers (e.g. the SNMP poll runtime) interleave with the engine
    /// while checking conditions between events.
    pub fn step_before(&mut self, deadline: SimTime) -> bool {
        match self.queue.peek_time() {
            Some(t) if t <= deadline => self.step(),
            _ => {
                if self.now < deadline {
                    self.now = deadline;
                }
                false
            }
        }
    }

    // ------------------------------------------------------------------
    // App dispatch
    // ------------------------------------------------------------------

    fn with_app<F>(&mut self, dev: DeviceId, app: AppId, f: F)
    where
        F: FnOnce(&mut Box<dyn UdpApp>, &mut AppCtx<'_>),
    {
        let dev_ix = dev.index();
        if dev_ix >= self.devices.len() {
            return;
        }
        let Some(slot) = self.devices[dev_ix].apps.get_mut(app.index()) else {
            return;
        };
        let Some(mut obj) = slot.take() else {
            return; // re-entrant dispatch; cannot happen with deferred actions
        };
        let actions = {
            let d = &self.devices[dev_ix];
            let fdb = match &d.kind {
                DeviceKind::Switch { mac_table, .. } => Some(mac_table),
                _ => None,
            };
            let mut ctx = AppCtx {
                now: self.now,
                dev,
                device_name: &d.name,
                device_ip: d.ip(),
                epoch: d.epoch,
                nics: &d.nics,
                fdb,
                actions: Vec::new(),
            };
            f(&mut obj, &mut ctx);
            ctx.actions
        };
        self.devices[dev_ix].apps[app.index()] = Some(obj);
        self.apply_actions(dev, app, actions);
    }

    fn apply_actions(&mut self, dev: DeviceId, app: AppId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::SendUdp {
                    src_port,
                    dst_ip,
                    dst_port,
                    payload,
                } => {
                    // Failures (no ARP entry) are counted, not propagated:
                    // a real sendto() to an unresolvable peer also fails
                    // asynchronously from the app's perspective.
                    if self
                        .send_udp_internal(dev, src_port, dst_ip, dst_port, payload)
                        .is_err()
                    {
                        self.stats.arp_failures += 1;
                    }
                }
                Action::SendRawBroadcast { ip_len, port } => {
                    let port = port.unwrap_or(PortIx(0));
                    let Ok(d) = self.device(dev) else { continue };
                    let Some(nic) = d.nics.get(port.index()) else {
                        continue;
                    };
                    let frame = Frame::raw(nic.mac, MacAddr::BROADCAST, ip_len);
                    self.transmit(dev, port, frame);
                }
                Action::Timer { after, token } => {
                    self.queue
                        .push(self.now + after, Event::Timer { dev, app, token });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Sending
    // ------------------------------------------------------------------

    fn send_udp_internal(
        &mut self,
        dev: DeviceId,
        src_port: u16,
        dst_ip: Ipv4Addr,
        dst_port: u16,
        payload: Bytes,
    ) -> Result<(), SimError> {
        let src_ip = self.device(dev)?.ip().ok_or(SimError::NotAHost(dev))?;

        // Loopback: deliver directly without touching the wire.
        if src_ip == dst_ip {
            let dgram = UdpDatagram {
                src_ip,
                dst_ip,
                src_port,
                dst_port,
                payload,
            };
            self.deliver_udp(dev, dgram);
            return Ok(());
        }

        let (_dst_dev, dst_mac) = *self.arp.get(&dst_ip).ok_or(SimError::NoArpEntry(dst_ip))?;

        // Fragment to MTU.
        let sizes = fragment_sizes(payload.len());
        let mut offset = 0usize;
        for size in sizes {
            let chunk = payload.slice(offset..offset + size);
            offset += size;
            let dgram = UdpDatagram {
                src_ip,
                dst_ip,
                src_port,
                dst_port,
                payload: chunk,
            };
            let out_port = self.pick_out_port(dev, dst_ip, dst_mac)?;
            match out_port {
                OutPort::Port(p) => {
                    let src_mac = self.device(dev)?.nics[p.index()].mac;
                    let frame = Frame::udp(src_mac, dst_mac, dgram);
                    self.transmit(dev, p, frame);
                }
                OutPort::FloodAll => {
                    // Management stack with unlearned destination: send a
                    // copy out of every port (a real bridge floods).
                    let ports: Vec<PortIx> = (0..self.device(dev)?.nics.len() as u32)
                        .map(PortIx)
                        .collect();
                    for p in ports {
                        let src_mac = self.device(dev)?.nics[p.index()].mac;
                        let frame = Frame::udp(src_mac, dst_mac, dgram.clone());
                        self.transmit(dev, p, frame);
                    }
                }
            }
        }
        Ok(())
    }

    fn pick_out_port(
        &self,
        dev: DeviceId,
        dst_ip: Ipv4Addr,
        dst_mac: MacAddr,
    ) -> Result<OutPort, SimError> {
        let d = self.device(dev)?;
        if d.nics.is_empty() {
            return Err(SimError::NoNic(dev));
        }
        Ok(match &d.kind {
            DeviceKind::Host { routes, .. } => {
                OutPort::Port(routes.get(&dst_ip).copied().unwrap_or(PortIx(0)))
            }
            DeviceKind::Switch { mac_table, .. } => match mac_table.get(&dst_mac) {
                Some(&p) => OutPort::Port(p),
                None => OutPort::FloodAll,
            },
            DeviceKind::Hub { .. } => OutPort::Port(PortIx(0)),
        })
    }

    /// Serializes a frame out of a port onto its link.
    fn transmit(&mut self, dev: DeviceId, port: PortIx, frame: Frame) {
        let Ok(d) = self.device(dev) else { return };
        let Some(nic) = d.nics.get(port.index()) else {
            return;
        };
        let Some(link_id) = nic.link else {
            return; // uncabled port: frame disappears (cable unplugged)
        };
        let link = self.links[link_id.index()];
        let rate = link.bits_per_sec;
        let wire = frame.wire_len();
        let now = self.now;

        let nic = &mut self.devices[dev.index()].nics[port.index()];
        let start = nic.tx_free_at.max(now);
        if start.duration_since(now) > nic.queue_limit {
            nic.counters.out_discards.inc();
            self.stats.frames_dropped_queue += 1;
            return;
        }
        let ser = SimDuration::serialization(wire, rate);
        nic.tx_free_at = start + ser;
        nic.counters.record_tx(&frame);

        let (fdev, fport) = link.far_end(dev, port);
        let arrive = start + ser + link.propagation;
        self.queue.push(
            arrive,
            Event::FrameArrive {
                dev: fdev,
                port: fport,
                frame,
            },
        );
    }

    // ------------------------------------------------------------------
    // Receiving / forwarding
    // ------------------------------------------------------------------

    fn handle_frame_arrive(&mut self, dev: DeviceId, port: PortIx, frame: Frame) {
        let dev_ix = dev.index();
        if dev_ix >= self.devices.len() || port.index() >= self.devices[dev_ix].nics.len() {
            return;
        }

        // Failure injection: a lossy cable corrupts the frame; the
        // receiver detects the bad FCS and drops it as an input error.
        if let Some(link_id) = self.devices[dev_ix].nics[port.index()].link {
            let p = self.links[link_id.index()].loss_probability;
            if p > 0.0 && self.rng.gen::<f64>() < p {
                self.devices[dev_ix].nics[port.index()]
                    .counters
                    .in_errors
                    .inc();
                self.stats.frames_dropped_loss += 1;
                return;
            }
        }
        self.stats.frames_delivered += 1;

        enum Disposition {
            HostDeliver(Option<UdpDatagram>),
            HostFiltered,
            SwitchForward(Option<PortIx>, bool /* deliver to mgmt */),
            HubRepeat,
        }

        let disposition = {
            let d = &mut self.devices[dev_ix];
            match &mut d.kind {
                DeviceKind::Host { ip, .. } => {
                    let nic = &mut d.nics[port.index()];
                    if frame.dst == nic.mac || frame.is_broadcast() {
                        nic.counters.record_rx(&frame);
                        match &frame.payload {
                            FramePayload::Udp(dgram)
                                if dgram.dst_ip == *ip && !frame.is_broadcast() =>
                            {
                                Disposition::HostDeliver(Some(dgram.clone()))
                            }
                            _ => Disposition::HostDeliver(None),
                        }
                    } else {
                        // Hardware MAC filter: frame not for us (hub
                        // segment): silently ignored, not counted.
                        Disposition::HostFiltered
                    }
                }
                DeviceKind::Switch {
                    mgmt, mac_table, ..
                } => {
                    d.nics[port.index()].counters.record_rx(&frame);
                    // Learn the sender's location.
                    if !frame.src.is_broadcast() {
                        mac_table.insert(frame.src, port);
                    }
                    let to_mgmt = matches!(mgmt, Some((_, mac)) if frame.dst == *mac);
                    if to_mgmt {
                        Disposition::SwitchForward(None, true)
                    } else if frame.is_broadcast() {
                        Disposition::SwitchForward(None, false) // flood
                    } else {
                        match mac_table.get(&frame.dst) {
                            Some(&out) if out != port => {
                                Disposition::SwitchForward(Some(out), false)
                            }
                            Some(_) => {
                                // Destination lives on the ingress port
                                // segment: filter (already delivered).
                                return;
                            }
                            None => Disposition::SwitchForward(None, false), // flood
                        }
                    }
                }
                DeviceKind::Hub { .. } => {
                    d.nics[port.index()].counters.record_rx(&frame);
                    Disposition::HubRepeat
                }
            }
        };

        match disposition {
            Disposition::HostFiltered => {}
            Disposition::HostDeliver(Some(dgram)) => self.deliver_udp(dev, dgram),
            Disposition::HostDeliver(None) => {}
            Disposition::SwitchForward(maybe_port, to_mgmt) => {
                if to_mgmt {
                    if let FramePayload::Udp(dgram) = &frame.payload {
                        let dgram = dgram.clone();
                        self.deliver_udp(dev, dgram);
                    }
                    return;
                }
                let proc = match &self.devices[dev_ix].kind {
                    DeviceKind::Switch { proc_delay, .. } => *proc_delay,
                    _ => SimDuration::ZERO,
                };
                // Store-and-forward processing latency is modelled by
                // delaying the transmit start; we fold it into the event
                // time by scheduling through `transmit` at now (+proc is
                // negligible vs serialization; kept simple and counted in
                // tx_free_at ordering).
                let _ = proc;
                match maybe_port {
                    Some(out) => {
                        self.stats.frames_forwarded += 1;
                        self.transmit(dev, out, frame);
                    }
                    None => {
                        self.stats.frames_flooded += 1;
                        let nports = self.devices[dev_ix].nics.len() as u32;
                        for p in 0..nports {
                            let p = PortIx(p);
                            if p != port {
                                self.transmit(dev, p, frame.clone());
                            }
                        }
                    }
                }
            }
            Disposition::HubRepeat => self.hub_repeat(dev, port, frame),
        }
    }

    /// Repeats a frame out of all other hub ports through the shared
    /// medium.
    fn hub_repeat(&mut self, dev: DeviceId, in_port: PortIx, frame: Frame) {
        let dev_ix = dev.index();
        let wire = frame.wire_len();
        let now = self.now;

        let (start, after_medium) = {
            let DeviceKind::Hub {
                medium_bps,
                medium_free_at,
            } = &mut self.devices[dev_ix].kind
            else {
                return;
            };
            let start = (*medium_free_at).max(now);
            // Shared-medium backlog limit: mirror the per-port queue depth.
            if start.duration_since(now) > SimDuration::from_millis(200) {
                self.stats.frames_dropped_medium += 1;
                self.devices[dev_ix].nics[in_port.index()]
                    .counters
                    .in_discards
                    .inc();
                return;
            }
            let busy = SimDuration::serialization(wire, *medium_bps);
            *medium_free_at = start + busy;
            (start, start + busy)
        };
        let _ = start;

        let nports = self.devices[dev_ix].nics.len();
        for p in 0..nports {
            let p = PortIx(p as u32);
            if p == in_port {
                continue;
            }
            let (link_id, _) = {
                let nic = &self.devices[dev_ix].nics[p.index()];
                match nic.link {
                    Some(l) => (l, ()),
                    None => continue,
                }
            };
            let link = self.links[link_id.index()];
            // Count the repeat on the hub's own egress port.
            self.devices[dev_ix].nics[p.index()]
                .counters
                .record_tx(&frame);
            let (fdev, fport) = link.far_end(dev, p);
            let arrive = after_medium + link.propagation;
            self.queue.push(
                arrive,
                Event::FrameArrive {
                    dev: fdev,
                    port: fport,
                    frame: frame.clone(),
                },
            );
        }
    }

    fn deliver_udp(&mut self, dev: DeviceId, dgram: UdpDatagram) {
        let dev_ix = dev.index();
        let Some(&app) = self.devices[dev_ix].udp_bindings.get(&dgram.dst_port) else {
            self.stats.datagrams_unbound += 1;
            return;
        };
        self.stats.datagrams_delivered += 1;
        self.with_app(dev, app, |a, ctx| a.on_datagram(ctx, &dgram));
    }
}

enum OutPort {
    Port(PortIx),
    FloodAll,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{DiscardSink, EchoResponder, Mailbox};
    use crate::builder::LanBuilder;
    use crate::packet::{DISCARD_PORT, ECHO_PORT};

    /// A <-> switch <-> B plus C on the switch.
    fn three_hosts_on_switch() -> (Lan, DeviceId, DeviceId, DeviceId) {
        let mut b = LanBuilder::new();
        let a = b.add_host("A", "10.0.0.1").unwrap();
        b.add_nic(a, "eth0", 100_000_000).unwrap();
        let h2 = b.add_host("B", "10.0.0.2").unwrap();
        b.add_nic(h2, "eth0", 100_000_000).unwrap();
        let h3 = b.add_host("C", "10.0.0.3").unwrap();
        b.add_nic(h3, "eth0", 100_000_000).unwrap();
        let sw = b.add_switch("sw", None).unwrap();
        for i in 1..=3 {
            b.add_nic(sw, &format!("p{i}"), 100_000_000).unwrap();
        }
        b.connect((a, PortIx(0)), (sw, PortIx(0))).unwrap();
        b.connect((h2, PortIx(0)), (sw, PortIx(1))).unwrap();
        b.connect((h3, PortIx(0)), (sw, PortIx(2))).unwrap();
        b.install_app(h2, Box::new(DiscardSink::default()), Some(DISCARD_PORT))
            .unwrap();
        b.install_app(h3, Box::new(DiscardSink::default()), Some(DISCARD_PORT))
            .unwrap();
        (b.build(), a, h2, h3)
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn unicast_reaches_destination_only() {
        let (mut lan, a, bdev, c) = three_hosts_on_switch();
        // First frame floods (unlearned); send one to prime the tables,
        // then check isolation on the second.
        lan.post_udp(a, 5000, ip("10.0.0.2"), DISCARD_PORT, vec![0u8; 100].into())
            .unwrap();
        lan.run_for(SimDuration::from_millis(10));
        // B replies nothing, but B's MAC is unknown to the switch until B
        // transmits; flooding is expected on frame 1. Now B learns via...
        // actually only A's MAC is learned. Prime B by sending from B.
        lan.post_udp(bdev, 5000, ip("10.0.0.1"), 4242, vec![0u8; 10].into())
            .unwrap();
        lan.run_for(SimDuration::from_millis(10));

        let c_before = lan.nic_counters(c, PortIx(0)).unwrap();
        lan.post_udp(a, 5000, ip("10.0.0.2"), DISCARD_PORT, vec![0u8; 100].into())
            .unwrap();
        lan.run_for(SimDuration::from_millis(10));
        let c_after = lan.nic_counters(c, PortIx(0)).unwrap();
        // C saw nothing of the A->B unicast once the switch had learned B.
        assert_eq!(
            c_before.in_octets.value(),
            c_after.in_octets.value(),
            "switch must isolate unicast traffic"
        );
        let b_ctr = lan.nic_counters(bdev, PortIx(0)).unwrap();
        assert!(b_ctr.in_octets.value() > 0);
    }

    #[test]
    fn unknown_destination_floods() {
        let (mut lan, a, _b, c) = three_hosts_on_switch();
        let c_before = lan.nic_counters(c, PortIx(0)).unwrap();
        lan.post_udp(a, 5000, ip("10.0.0.2"), DISCARD_PORT, vec![0u8; 100].into())
            .unwrap();
        lan.run_for(SimDuration::from_millis(10));
        let c_after = lan.nic_counters(c, PortIx(0)).unwrap();
        // The frame was flooded, so C's port transmitted it; but C's NIC
        // filters it (wrong dst MAC) and must NOT count it.
        assert_eq!(c_before.in_octets.value(), c_after.in_octets.value());
        assert!(lan.stats().frames_flooded >= 1);
    }

    #[test]
    fn payload_bytes_arrive_intact() {
        let (mut lan, a, bdev, _c) = three_hosts_on_switch();
        let (sink, handle) = DiscardSink::with_handle();
        // Rebind port 9 on B is not allowed; bind a different port.
        let app = lan.devices[bdev.index()].apps.len();
        lan.devices[bdev.index()].apps.push(Some(Box::new(sink)));
        lan.devices[bdev.index()]
            .udp_bindings
            .insert(4000, AppId(app as u32));
        lan.post_udp(a, 5000, ip("10.0.0.2"), 4000, vec![7u8; 5000].into())
            .unwrap();
        lan.run_for(SimDuration::from_millis(50));
        let s = handle.borrow();
        assert_eq!(s.payload_bytes, 5000);
        assert_eq!(s.datagrams, 4); // 1472*3 + 584
    }

    #[test]
    fn echo_round_trip() {
        let mut b = LanBuilder::new();
        let a = b.add_host("A", "10.0.0.1").unwrap();
        b.add_nic(a, "eth0", 10_000_000).unwrap();
        let e = b.add_host("E", "10.0.0.2").unwrap();
        b.add_nic(e, "eth0", 10_000_000).unwrap();
        b.connect((a, PortIx(0)), (e, PortIx(0))).unwrap();
        b.install_app(e, Box::new(EchoResponder), Some(ECHO_PORT))
            .unwrap();
        let (mbox, inbox) = Mailbox::with_handle();
        b.install_app(a, Box::new(mbox), Some(6000)).unwrap();
        let mut lan = b.build();
        lan.post_udp(
            a,
            6000,
            ip("10.0.0.2"),
            ECHO_PORT,
            Bytes::from_static(b"ping"),
        )
        .unwrap();
        lan.run_for(SimDuration::from_millis(20));
        let inbox = inbox.borrow();
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].1.payload.as_ref(), b"ping");
        // RTT is positive: serialization both ways.
        assert!(inbox[0].0 > SimTime::ZERO);
    }

    #[test]
    fn loopback_delivery_bypasses_wire() {
        let mut b = LanBuilder::new();
        let a = b.add_host("A", "10.0.0.1").unwrap();
        b.add_nic(a, "eth0", 10_000_000).unwrap();
        let (sink, handle) = DiscardSink::with_handle();
        b.install_app(a, Box::new(sink), Some(DISCARD_PORT))
            .unwrap();
        let mut lan = b.build();
        lan.post_udp(a, 5000, ip("10.0.0.1"), DISCARD_PORT, vec![0u8; 10].into())
            .unwrap();
        lan.run_for(SimDuration::from_millis(1));
        assert_eq!(handle.borrow().datagrams, 1);
        let ctr = lan.nic_counters(a, PortIx(0)).unwrap();
        assert_eq!(ctr.out_octets.value(), 0, "loopback must not touch the NIC");
    }

    #[test]
    fn no_arp_entry_counted() {
        let (mut lan, a, _, _) = three_hosts_on_switch();
        assert!(matches!(
            lan.post_udp(a, 1, ip("10.9.9.9"), 9, Bytes::new()),
            Err(SimError::NoArpEntry(_))
        ));
    }

    #[test]
    fn queue_overflow_drops_and_counts() {
        let (mut lan, a, _b, _c) = three_hosts_on_switch();
        // Saturate: 100 Mb/s link, 200 ms queue ≈ 2.5 MB of backlog.
        // Posting 10 MB at one instant must overflow.
        for _ in 0..100 {
            lan.post_udp(
                a,
                5000,
                ip("10.0.0.2"),
                DISCARD_PORT,
                vec![0u8; 100_000].into(),
            )
            .unwrap();
        }
        lan.run_for(SimDuration::from_secs(2));
        let stats = lan.stats();
        assert!(stats.frames_dropped_queue > 0, "{stats:?}");
        let ctr = lan.nic_counters(a, PortIx(0)).unwrap();
        assert!(ctr.out_discards.value() > 0);
    }

    #[test]
    fn throughput_respects_link_rate() {
        // 10 Mb/s bottleneck: 2 seconds of full blast delivers ~2.5 MB max.
        let mut b = LanBuilder::new();
        let a = b.add_host("A", "10.0.0.1").unwrap();
        b.add_nic(a, "eth0", 10_000_000).unwrap();
        let d = b.add_host("B", "10.0.0.2").unwrap();
        b.add_nic(d, "eth0", 10_000_000).unwrap();
        b.connect((a, PortIx(0)), (d, PortIx(0))).unwrap();
        let (sink, handle) = DiscardSink::with_handle();
        b.install_app(d, Box::new(sink), Some(DISCARD_PORT))
            .unwrap();
        let mut lan = b.build();
        // Offer 2 MB instantly (queue holds 200ms = 250 KB; rest drops).
        for _ in 0..20 {
            lan.post_udp(
                a,
                1,
                ip("10.0.0.2"),
                DISCARD_PORT,
                vec![0u8; 100_000].into(),
            )
            .unwrap();
        }
        lan.run_for(SimDuration::from_secs(1));
        let received = handle.borrow().payload_bytes;
        // Can never exceed line rate * time.
        assert!(received <= 10_000_000 / 8, "received {received}");
        assert!(received > 0);
    }

    #[test]
    fn uptime_advances_with_time() {
        let (mut lan, a, _, _) = three_hosts_on_switch();
        assert_eq!(lan.uptime_ticks(a).unwrap(), 0);
        lan.run_for(SimDuration::from_secs(5));
        assert_eq!(lan.uptime_ticks(a).unwrap(), 500);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let (mut lan, _, _, _) = three_hosts_on_switch();
        lan.run_until(SimTime::from_micros(123_456));
        assert_eq!(lan.now(), SimTime::from_micros(123_456));
    }

    #[test]
    fn timers_fire_in_order() {
        use std::cell::RefCell;
        use std::rc::Rc;
        struct Recorder(Rc<RefCell<Vec<u64>>>);
        impl UdpApp for Recorder {
            fn on_timer(&mut self, _ctx: &mut AppCtx<'_>, token: u64) {
                self.0.borrow_mut().push(token);
            }
        }
        let mut b = LanBuilder::new();
        let a = b.add_host("A", "10.0.0.1").unwrap();
        b.add_nic(a, "eth0", 10_000_000).unwrap();
        let log = Rc::new(RefCell::new(Vec::new()));
        let app = b
            .install_app(a, Box::new(Recorder(log.clone())), None)
            .unwrap();
        let mut lan = b.build();
        lan.post_timer(a, app, SimDuration::from_millis(30), 3)
            .unwrap();
        lan.post_timer(a, app, SimDuration::from_millis(10), 1)
            .unwrap();
        lan.post_timer(a, app, SimDuration::from_millis(20), 2)
            .unwrap();
        lan.run_for(SimDuration::from_millis(100));
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }
}
