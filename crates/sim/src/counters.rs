//! Wrapping 32-bit counters with MIB-II semantics.
//!
//! RFC 1155 Counters increase monotonically and wrap modulo 2^32. The
//! simulator tracks true 64-bit totals as well, so tests can verify that
//! the monitor's wrap-aware delta logic recovers the truth.

/// A Counter32 with a shadow 64-bit total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter32 {
    total: u64,
}

impl Counter32 {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter32 { total: 0 }
    }

    /// A counter pre-loaded near the wrap point (for tests).
    pub fn with_value(v: u32) -> Self {
        Counter32 { total: v as u64 }
    }

    /// Adds `n` (saturating only at u64, which is unreachable in practice).
    pub fn add(&mut self, n: u64) {
        self.total = self.total.wrapping_add(n);
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// The MIB-visible 32-bit value (wrapped).
    pub fn value(&self) -> u32 {
        (self.total % (1u64 << 32)) as u32
    }

    /// The true total (not exposed via SNMP; for ground-truth checks).
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// The wrap-aware difference `new − old (mod 2^32)` — what a monitor must
/// compute between two polls of a Counter32 (paper §3.1: "The old value is
/// subtracted from the new one").
pub fn counter_delta(old: u32, new: u32) -> u32 {
    new.wrapping_sub(old)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_value() {
        let mut c = Counter32::new();
        c.add(1000);
        c.inc();
        assert_eq!(c.value(), 1001);
        assert_eq!(c.total(), 1001);
    }

    #[test]
    fn wraps_at_2_32() {
        let mut c = Counter32::with_value(u32::MAX);
        c.add(3);
        assert_eq!(c.value(), 2);
        assert_eq!(c.total(), u32::MAX as u64 + 3);
    }

    #[test]
    fn delta_without_wrap() {
        assert_eq!(counter_delta(100, 250), 150);
        assert_eq!(counter_delta(0, 0), 0);
    }

    #[test]
    fn delta_across_wrap() {
        assert_eq!(counter_delta(u32::MAX - 10, 5), 16);
        assert_eq!(counter_delta(u32::MAX, 0), 1);
    }

    #[test]
    fn delta_recovers_simulated_growth() {
        let mut c = Counter32::with_value(u32::MAX - 500);
        let before = c.value();
        c.add(12_345);
        let after = c.value();
        assert_eq!(counter_delta(before, after), 12_345);
    }
}
