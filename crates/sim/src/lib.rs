//! # netqos-sim
//!
//! A deterministic discrete-event Ethernet LAN simulator — the testbed
//! substrate for the netqos reproduction of *Monitoring Network QoS in a
//! Dynamic Real-Time System* (IPPS 2002).
//!
//! The paper's evaluation ran on a physical laboratory LAN (one 100 Mb/s
//! switch, one 10 Mb/s hub, Linux/Solaris/NT hosts). This crate recreates
//! that substrate in software with the properties the monitor depends on:
//!
//! * **Frame-level forwarding semantics.** A switch learns source MACs and
//!   forwards unicast frames only toward their destination port (flooding
//!   unknowns and broadcasts); a **hub** repeats every frame to every other
//!   port through one shared medium whose capacity all stations share.
//! * **MIB-visible counters.** Every NIC maintains the MIB-II interface
//!   counters (`ifInOctets`, `ifOutOctets`, unicast/non-unicast packets,
//!   discards) as wrapping 32-bit counters, exactly what an SNMP agent
//!   exports.
//! * **Bandwidth and queueing.** Frames serialize at link rate; each port
//!   has a bounded transmit backlog with tail drop; hubs add a shared-
//!   medium serialization so concurrent senders contend for the hub's
//!   capacity.
//! * **A UDP application layer.** Hosts run [`app::UdpApp`]s bound to UDP
//!   ports; the load generator, the DISCARD sink, the echo responder, and
//!   the in-simulation SNMP agents/managers are all apps. Time is driven
//!   by app timers and frame events only — runs are bit-for-bit
//!   reproducible.
//!
//! ## Example
//!
//! ```
//! use netqos_sim::builder::LanBuilder;
//! use netqos_sim::app::DiscardSink;
//! use netqos_sim::time::{SimDuration, SimTime};
//!
//! let mut b = LanBuilder::new();
//! let a = b.add_host("A", "10.0.0.1").unwrap();
//! let a0 = b.add_nic(a, "eth0", 100_000_000).unwrap();
//! let sw = b.add_switch("sw", None).unwrap();
//! let p1 = b.add_nic(sw, "p1", 100_000_000).unwrap();
//! let p2 = b.add_nic(sw, "p2", 100_000_000).unwrap();
//! let c = b.add_host("B", "10.0.0.2").unwrap();
//! let c0 = b.add_nic(c, "eth0", 100_000_000).unwrap();
//! b.connect((a, a0), (sw, p1)).unwrap();
//! b.connect((sw, p2), (c, c0)).unwrap();
//! b.install_app(c, Box::new(DiscardSink::default()), Some(9)).unwrap();
//! let mut lan = b.build();
//!
//! lan.post_udp(a, 5000, "10.0.0.2".parse().unwrap(), 9, vec![0u8; 1000].into())
//!     .unwrap();
//! lan.run_until(SimTime::ZERO + SimDuration::from_millis(10));
//! let rx = lan.nic_counters(c, c0).unwrap();
//! assert!(rx.in_octets.value() > 1000);
//! ```

pub mod addr;
pub mod app;
pub mod builder;
pub mod counters;
pub mod error;
pub mod events;
pub mod nic;
pub mod packet;
pub mod time;
pub mod traffic;
pub mod world;

pub use addr::{Ipv4Addr, MacAddr};
pub use app::{AppCtx, UdpApp};
pub use builder::LanBuilder;
pub use error::SimError;
pub use events::{AppId, DeviceId, PortIx};
pub use packet::{Frame, UdpDatagram};
pub use time::{SimDuration, SimTime};
pub use world::Lan;
