//! Simulator error type.

use crate::addr::Ipv4Addr;
use crate::events::{DeviceId, PortIx};
use std::fmt;

/// Errors from building or driving a [`Lan`](crate::world::Lan).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Device id out of range.
    NoSuchDevice(DeviceId),
    /// Device name already taken.
    DuplicateName(String),
    /// IP address already assigned.
    DuplicateIp(Ipv4Addr),
    /// Port index out of range for the device.
    NoSuchPort(DeviceId, PortIx),
    /// Port already cabled to another port.
    PortAlreadyLinked(DeviceId, PortIx),
    /// Attempted to cable a port to itself.
    SelfLink(DeviceId, PortIx),
    /// The operation needs a host, but the device is a switch/hub.
    NotAHost(DeviceId),
    /// No NIC from which to transmit.
    NoNic(DeviceId),
    /// No ARP entry for the destination IP.
    NoArpEntry(Ipv4Addr),
    /// The UDP port is already bound by another app.
    UdpPortTaken(DeviceId, u16),
    /// App id out of range.
    NoSuchApp(DeviceId, u32),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoSuchDevice(d) => write!(f, "no such device {d:?}"),
            SimError::DuplicateName(n) => write!(f, "duplicate device name `{n}`"),
            SimError::DuplicateIp(ip) => write!(f, "duplicate IP address {ip}"),
            SimError::NoSuchPort(d, p) => write!(f, "device {d:?} has no port {p:?}"),
            SimError::PortAlreadyLinked(d, p) => {
                write!(f, "port {p:?} on {d:?} is already cabled")
            }
            SimError::SelfLink(d, p) => write!(f, "cannot cable {d:?}:{p:?} to itself"),
            SimError::NotAHost(d) => write!(f, "device {d:?} is not a host"),
            SimError::NoNic(d) => write!(f, "device {d:?} has no NIC"),
            SimError::NoArpEntry(ip) => write!(f, "no ARP entry for {ip}"),
            SimError::UdpPortTaken(d, p) => write!(f, "UDP port {p} already bound on {d:?}"),
            SimError::NoSuchApp(d, a) => write!(f, "device {d:?} has no app {a}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = SimError::NoArpEntry(Ipv4Addr::new(10, 0, 0, 9));
        assert!(e.to_string().contains("10.0.0.9"));
        let e = SimError::UdpPortTaken(DeviceId(1), 161);
        assert!(e.to_string().contains("161"));
    }
}
