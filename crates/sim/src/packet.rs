//! The frame/packet model.
//!
//! Only the fields the simulation needs are modelled: addressing, UDP
//! ports, and — crucially for the paper's error analysis — exact on-wire
//! sizes. The paper attributes ~2 % of its measurement bias to "the IP and
//! UDP headers in a system with 1,500-byte MTU"; the constants here encode
//! precisely that arithmetic.

use crate::addr::{Ipv4Addr, MacAddr};
use bytes::Bytes;

/// IP maximum transmission unit of the simulated Ethernet.
pub const MTU: usize = 1500;
/// IPv4 header size (no options).
pub const IP_HEADER: usize = 20;
/// UDP header size.
pub const UDP_HEADER: usize = 8;
/// Ethernet framing counted by `ifInOctets`/`ifOutOctets`: 14-byte header
/// plus 4-byte FCS. (Preamble and inter-frame gap occupy the medium but
/// are not counted by the MIB, matching real interface counters.)
pub const ETH_OVERHEAD: usize = 18;
/// Minimum Ethernet frame size (header + padded payload + FCS).
pub const MIN_FRAME: usize = 64;
/// Largest UDP payload that fits one IP packet without fragmentation.
pub const MAX_UDP_PAYLOAD: usize = MTU - IP_HEADER - UDP_HEADER; // 1472

/// The DISCARD service port (RFC 863) — the paper's load generator
/// destination.
pub const DISCARD_PORT: u16 = 9;
/// The ECHO service port (RFC 862) — used by the latency extension.
pub const ECHO_PORT: u16 = 7;
/// The SNMP agent port.
pub const SNMP_PORT: u16 = 161;

/// A UDP datagram as carried inside one frame (already fragmented to fit
/// the MTU by the sending host).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source IP.
    pub src_ip: Ipv4Addr,
    /// Destination IP.
    pub dst_ip: Ipv4Addr,
    /// Source UDP port.
    pub src_port: u16,
    /// Destination UDP port.
    pub dst_port: u16,
    /// Application payload (zero-copy shared).
    pub payload: Bytes,
}

impl UdpDatagram {
    /// Total IP packet length: payload + UDP + IP headers.
    pub fn ip_len(&self) -> usize {
        self.payload.len() + UDP_HEADER + IP_HEADER
    }
}

/// What a frame carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FramePayload {
    /// A UDP/IP packet.
    Udp(UdpDatagram),
    /// Uninterpreted traffic of a given IP-layer length — background
    /// chatter (ARP-ish broadcasts, clock sync, etc.) that loads the wire
    /// and the counters without an application consumer.
    Raw {
        /// IP-layer byte count represented by this frame.
        ip_len: usize,
    },
}

/// An Ethernet frame in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Source MAC.
    pub src: MacAddr,
    /// Destination MAC (possibly broadcast).
    pub dst: MacAddr,
    /// The payload.
    pub payload: FramePayload,
}

impl Frame {
    /// Builds a UDP frame.
    pub fn udp(src: MacAddr, dst: MacAddr, dgram: UdpDatagram) -> Frame {
        Frame {
            src,
            dst,
            payload: FramePayload::Udp(dgram),
        }
    }

    /// Builds an uninterpreted background frame.
    pub fn raw(src: MacAddr, dst: MacAddr, ip_len: usize) -> Frame {
        Frame {
            src,
            dst,
            payload: FramePayload::Raw { ip_len },
        }
    }

    /// IP-layer length of the carried packet.
    pub fn ip_len(&self) -> usize {
        match &self.payload {
            FramePayload::Udp(d) => d.ip_len(),
            FramePayload::Raw { ip_len } => *ip_len,
        }
    }

    /// Octets counted by the MIB interface counters for this frame:
    /// Ethernet header + IP packet + FCS, padded to the 64-byte minimum.
    pub fn wire_len(&self) -> usize {
        (self.ip_len() + ETH_OVERHEAD).max(MIN_FRAME)
    }

    /// True for broadcast destination.
    pub fn is_broadcast(&self) -> bool {
        self.dst.is_broadcast()
    }
}

/// Splits an application payload length into per-packet UDP payload sizes
/// respecting the MTU — the fragmentation the sending host performs.
pub fn fragment_sizes(total: usize) -> Vec<usize> {
    if total == 0 {
        return vec![0];
    }
    let mut out = Vec::with_capacity(total.div_ceil(MAX_UDP_PAYLOAD));
    let mut left = total;
    while left > 0 {
        let take = left.min(MAX_UDP_PAYLOAD);
        out.push(take);
        left -= take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(n: u8) -> MacAddr {
        MacAddr([2, 0, 0, 0, 0, n])
    }

    fn ip(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, n)
    }

    #[test]
    fn header_overhead_is_28_bytes() {
        // The paper: IP+UDP headers contribute ~2% at 1500-byte MTU.
        assert_eq!(IP_HEADER + UDP_HEADER, 28);
        let overhead_fraction = (IP_HEADER + UDP_HEADER) as f64 / MAX_UDP_PAYLOAD as f64;
        assert!((overhead_fraction - 0.019).abs() < 0.001);
    }

    #[test]
    fn wire_len_includes_all_overheads() {
        let d = UdpDatagram {
            src_ip: ip(1),
            dst_ip: ip(2),
            src_port: 5000,
            dst_port: DISCARD_PORT,
            payload: Bytes::from(vec![0u8; 1000]),
        };
        let f = Frame::udp(mac(1), mac(2), d);
        assert_eq!(f.ip_len(), 1028);
        assert_eq!(f.wire_len(), 1046);
    }

    #[test]
    fn tiny_frames_pad_to_minimum() {
        let f = Frame::raw(mac(1), MacAddr::BROADCAST, 1);
        assert_eq!(f.wire_len(), MIN_FRAME);
        assert!(f.is_broadcast());
    }

    #[test]
    fn fragmentation_respects_mtu() {
        assert_eq!(fragment_sizes(0), vec![0]);
        assert_eq!(fragment_sizes(100), vec![100]);
        assert_eq!(fragment_sizes(1472), vec![1472]);
        assert_eq!(fragment_sizes(1473), vec![1472, 1]);
        assert_eq!(fragment_sizes(4000), vec![1472, 1472, 1056]);
        let total: usize = fragment_sizes(100_000).iter().sum();
        assert_eq!(total, 100_000);
        assert!(fragment_sizes(100_000)
            .iter()
            .all(|&s| s <= MAX_UDP_PAYLOAD));
    }
}
