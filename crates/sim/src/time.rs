//! Simulation time.
//!
//! Time is a monotonically increasing count of **microseconds** since the
//! simulation epoch. Microsecond resolution resolves individual minimum-
//! size Ethernet frames at 100 Mb/s (~5.8 µs) while keeping arithmetic in
//! comfortable `u64` range for days of simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (µs since epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (µs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from microseconds since epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since epoch as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time since `earlier`; saturates to zero if `earlier` is later.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// SNMP TimeTicks (hundredths of a second) since `epoch`, wrapping at
    /// 2^32 like a real `sysUpTime`.
    pub fn timeticks_since(self, epoch: SimTime) -> u32 {
        let cs = self.0.saturating_sub(epoch.0) / 10_000;
        (cs % (1u64 << 32)) as u32
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// From fractional seconds (panics on negative/non-finite input).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The time needed to serialize `bytes` at `bits_per_sec`, rounded up
    /// to a whole microsecond (so a nonzero transmission never takes zero
    /// time).
    pub fn serialization(bytes: usize, bits_per_sec: u64) -> Self {
        if bits_per_sec == 0 {
            return SimDuration(u64::MAX / 4); // effectively never
        }
        let bits = bytes as u64 * 8;
        let us = (bits * 1_000_000).div_ceil(bits_per_sec);
        SimDuration(us.max(1))
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(2);
        assert_eq!(t.as_micros(), 2_000_000);
        let t2 = t + SimDuration::from_millis(500);
        assert_eq!(t2.duration_since(t), SimDuration::from_millis(500));
        assert_eq!(t.duration_since(t2), SimDuration::ZERO); // saturates
    }

    #[test]
    fn timeticks_are_hundredths() {
        let epoch = SimTime::from_micros(1_000_000);
        let now = epoch + SimDuration::from_secs(3) + SimDuration::from_millis(450);
        assert_eq!(now.timeticks_since(epoch), 345);
    }

    #[test]
    fn serialization_time() {
        // 1250 bytes at 10 Mb/s = 1 ms.
        assert_eq!(
            SimDuration::serialization(1250, 10_000_000),
            SimDuration::from_millis(1)
        );
        // 64 bytes at 100 Mb/s = 5.12 µs -> rounds up to 6.
        assert_eq!(
            SimDuration::serialization(64, 100_000_000),
            SimDuration::from_micros(6)
        );
        // Nonzero payload never serializes in zero time.
        assert!(SimDuration::serialization(1, u64::MAX / 16).as_micros() >= 1);
    }

    #[test]
    fn zero_rate_is_effectively_infinite() {
        let d = SimDuration::serialization(100, 0);
        assert!(d > SimDuration::from_secs(1_000_000));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_secs_f64(1e-6).as_micros(), 1);
    }

    #[test]
    #[should_panic]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
