//! Identifiers and the event queue of the discrete-event engine.

use crate::packet::Frame;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a device (host, switch, or hub) in a [`Lan`].
///
/// [`Lan`]: crate::world::Lan
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub u32);

/// Port (NIC) index within a device; `ifIndex == PortIx.0 + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortIx(pub u32);

/// Identifier of an application installed on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppId(pub u32);

/// Identifier of a link (cable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub u32);

impl DeviceId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PortIx {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The 1-based MIB-II ifIndex of this port.
    pub fn if_index(self) -> u32 {
        self.0 + 1
    }
}

impl AppId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Something that happens at an instant.
#[derive(Debug, Clone)]
pub enum Event {
    /// A frame finishes arriving at a device port.
    FrameArrive {
        /// Receiving device.
        dev: DeviceId,
        /// Receiving port.
        port: PortIx,
        /// The frame.
        frame: Frame,
    },
    /// An application timer fires.
    Timer {
        /// Owning device.
        dev: DeviceId,
        /// Owning app.
        app: AppId,
        /// App-chosen token to distinguish timers.
        token: u64,
    },
}

/// An event scheduled at a time; `seq` breaks ties FIFO so simultaneous
/// events process in scheduling order (determinism).
#[derive(Debug, Clone)]
pub struct Scheduled {
    /// Fire time.
    pub at: SimTime,
    /// Tie-break sequence number.
    pub seq: u64,
    /// The event.
    pub event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap; we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The pending-event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `at`.
    pub fn push(&mut self, at: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<Scheduled> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn timer(tok: u64) -> Event {
        Event::Timer {
            dev: DeviceId(0),
            app: AppId(0),
            token: tok,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let t0 = SimTime::ZERO;
        q.push(t0 + SimDuration::from_micros(30), timer(3));
        q.push(t0 + SimDuration::from_micros(10), timer(1));
        q.push(t0 + SimDuration::from_micros(20), timer(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|s| match s.event {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for tok in 0..10 {
            q.push(t, timer(tok));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|s| match s.event {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(42), timer(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(42)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
