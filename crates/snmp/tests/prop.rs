//! Property-based tests for the SNMP codec layers: round-trip identities
//! and decoder robustness against arbitrary bytes.

use netqos_snmp::ber::{self, Reader};
use netqos_snmp::message::{MessageBody, SnmpMessage, SnmpVersion};
use netqos_snmp::oid::Oid;
use netqos_snmp::pdu::{ErrorStatus, Pdu, PduType, TrapPdu, VarBind};
use netqos_snmp::value::SnmpValue;
use proptest::prelude::*;

/// Arbitrary BER-encodable OID: first arc 0..=2, second constrained, then
/// up to 10 free arcs.
fn arb_oid() -> impl Strategy<Value = Oid> {
    (
        0u32..=2,
        0u32..40,
        prop::collection::vec(any::<u32>(), 0..10),
    )
        .prop_map(|(first, second, rest)| {
            let mut arcs = vec![first, second];
            arcs.extend(rest);
            Oid::new(arcs)
        })
}

fn arb_value() -> impl Strategy<Value = SnmpValue> {
    prop_oneof![
        any::<i64>().prop_map(SnmpValue::Integer),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(SnmpValue::OctetString),
        Just(SnmpValue::Null),
        arb_oid().prop_map(SnmpValue::Oid),
        any::<[u8; 4]>().prop_map(SnmpValue::IpAddress),
        any::<u32>().prop_map(SnmpValue::Counter32),
        any::<u32>().prop_map(SnmpValue::Gauge32),
        any::<u32>().prop_map(SnmpValue::TimeTicks),
        prop::collection::vec(any::<u8>(), 0..32).prop_map(SnmpValue::Opaque),
    ]
}

fn arb_varbind() -> impl Strategy<Value = VarBind> {
    (arb_oid(), arb_value()).prop_map(|(oid, value)| VarBind { oid, value })
}

fn arb_pdu() -> impl Strategy<Value = Pdu> {
    (
        prop::sample::select(vec![
            PduType::GetRequest,
            PduType::GetNextRequest,
            PduType::GetResponse,
            PduType::SetRequest,
        ]),
        any::<i32>(),
        0i64..6,
        0u32..10,
        prop::collection::vec(arb_varbind(), 0..8),
    )
        .prop_map(
            |(pdu_type, request_id, status, error_index, bindings)| Pdu {
                pdu_type,
                request_id,
                error_status: ErrorStatus::from_code(status),
                error_index,
                bindings,
            },
        )
}

proptest! {
    #[test]
    fn value_round_trip(v in arb_value()) {
        let enc = ber::encode_value(&v).unwrap();
        let mut r = Reader::new(&enc);
        let back = r.read_value().unwrap();
        prop_assert_eq!(back, v);
        r.finish().unwrap();
    }

    #[test]
    fn oid_round_trip(o in arb_oid()) {
        let enc = ber::encode_oid(&o).unwrap();
        let mut r = Reader::new(&enc);
        prop_assert_eq!(r.read_oid().unwrap(), o);
    }

    #[test]
    fn oid_parse_display_round_trip(o in arb_oid()) {
        let s = o.to_string();
        let back: Oid = s.parse().unwrap();
        prop_assert_eq!(back, o);
    }

    #[test]
    fn integer_round_trip(v in any::<i64>()) {
        let enc = ber::encode_integer(v);
        let mut r = Reader::new(&enc);
        prop_assert_eq!(r.read_integer().unwrap(), v);
    }

    #[test]
    fn message_round_trip(pdu in arb_pdu(), community in "[a-zA-Z0-9]{0,16}") {
        let msg = SnmpMessage::v1(&community, pdu);
        let enc = msg.encode().unwrap();
        let back = SnmpMessage::decode(&enc).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn trap_round_trip(
        enterprise in arb_oid(),
        addr in any::<[u8; 4]>(),
        generic in 0i32..7,
        specific in any::<i32>(),
        stamp in any::<u32>(),
        bindings in prop::collection::vec(arb_varbind(), 0..4),
    ) {
        let trap = TrapPdu { enterprise, agent_addr: addr, generic_trap: generic,
                             specific_trap: specific, time_stamp: stamp, bindings };
        let msg = SnmpMessage::v1_trap("t", trap);
        let enc = msg.encode().unwrap();
        let back = SnmpMessage::decode(&enc).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// The decoder must never panic, whatever bytes arrive; it may only
    /// return errors.
    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = SnmpMessage::decode(&bytes);
        let mut r = Reader::new(&bytes);
        let _ = r.read_value();
    }

    /// Flipping any single byte of a valid message must never panic the
    /// decoder (it may still decode successfully, e.g. a flipped counter
    /// byte).
    #[test]
    fn decoder_survives_single_byte_corruption(
        pdu in arb_pdu(),
        pos_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let msg = SnmpMessage::v1("public", pdu);
        let mut enc = msg.encode().unwrap();
        let pos = pos_seed % enc.len();
        enc[pos] ^= flip;
        let _ = SnmpMessage::decode(&enc);
    }

    /// Version field sanity: decoding always reports V1 for messages we
    /// produce.
    #[test]
    fn version_always_v1(pdu in arb_pdu()) {
        let msg = SnmpMessage::v1("c", pdu);
        let enc = msg.encode().unwrap();
        let back = SnmpMessage::decode(&enc).unwrap();
        prop_assert_eq!(back.version, SnmpVersion::V1);
        prop_assert!(matches!(back.body, MessageBody::Pdu(_)));
    }

    /// A v2c bulk walk yields exactly the same instances as a v1 GetNext
    /// walk, for arbitrary MIB contents and any max-repetitions.
    #[test]
    fn bulk_walk_equals_getnext_walk(
        entries in prop::collection::vec((arb_oid(), arb_value()), 1..30),
        reps in 1u32..25,
    ) {
        use netqos_snmp::agent::SnmpAgent;
        use netqos_snmp::client::SnmpClient;
        use netqos_snmp::mib::ScalarMib;
        use netqos_snmp::transport::LoopbackTransport;

        let mut mib = ScalarMib::new();
        for (oid, value) in &entries {
            // Request-side placeholders cannot be response values in a
            // walk comparison; replace Null with an Integer marker.
            let v = if matches!(value, SnmpValue::Null) {
                SnmpValue::Integer(0)
            } else {
                value.clone()
            };
            mib.insert(oid.clone(), v);
        }
        let prefix: Oid = Oid::from([1, 3]);

        let t = LoopbackTransport::new(SnmpAgent::new("c"), mib.clone());
        let mut c1 = SnmpClient::new(t, "c");
        let via_next = c1.walk(&prefix).unwrap();

        let t = LoopbackTransport::new(SnmpAgent::new("c"), mib);
        let mut c2 = SnmpClient::new(t, "c");
        let via_bulk = c2.bulk_walk(&prefix, reps).unwrap();

        prop_assert_eq!(via_next, via_bulk);
    }
}
