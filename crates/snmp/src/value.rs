//! The SNMP value union.
//!
//! SNMPv1 variable bindings carry one of the ASN.1 universal types
//! (INTEGER, OCTET STRING, NULL, OBJECT IDENTIFIER) or one of the
//! application-wide types defined by RFC 1155 (IpAddress, Counter,
//! Gauge, TimeTicks, Opaque).

use crate::oid::Oid;
use std::fmt;

/// A value carried in a variable binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnmpValue {
    /// ASN.1 INTEGER (signed, up to 64 bits here; SNMPv1 uses 32).
    Integer(i64),
    /// ASN.1 OCTET STRING — arbitrary bytes (often ASCII text).
    OctetString(Vec<u8>),
    /// ASN.1 NULL — the placeholder value in requests.
    Null,
    /// ASN.1 OBJECT IDENTIFIER.
    Oid(Oid),
    /// RFC 1155 IpAddress: 4 octets, network byte order.
    IpAddress([u8; 4]),
    /// RFC 1155 Counter: wraps modulo 2^32 (e.g. `ifInOctets`).
    Counter32(u32),
    /// RFC 1155 Gauge: clamps at 2^32−1 (e.g. `ifSpeed`).
    Gauge32(u32),
    /// RFC 1155 TimeTicks: hundredths of a second (e.g. `sysUpTime`).
    TimeTicks(u32),
    /// RFC 1155 Opaque: uninterpreted BER-wrapped bytes.
    Opaque(Vec<u8>),
    /// SNMPv2c exception: the object does not exist (context tag 0).
    NoSuchObject,
    /// SNMPv2c exception: the instance does not exist (context tag 1).
    NoSuchInstance,
    /// SNMPv2c exception: a GetBulk/GetNext ran past the MIB (context
    /// tag 2).
    EndOfMibView,
}

impl SnmpValue {
    /// Builds an `OctetString` from text.
    pub fn text(s: &str) -> Self {
        SnmpValue::OctetString(s.as_bytes().to_vec())
    }

    /// The value as an unsigned 32-bit quantity, if it is one of the
    /// counter-like types (Counter32 / Gauge32 / TimeTicks) or a
    /// non-negative Integer that fits.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            SnmpValue::Counter32(v) | SnmpValue::Gauge32(v) | SnmpValue::TimeTicks(v) => Some(*v),
            SnmpValue::Integer(v) => u32::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a signed integer, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            SnmpValue::Integer(v) => Some(*v),
            SnmpValue::Counter32(v) | SnmpValue::Gauge32(v) | SnmpValue::TimeTicks(v) => {
                Some(i64::from(*v))
            }
            _ => None,
        }
    }

    /// The value as UTF-8 text, if it is an octet string holding valid
    /// UTF-8.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            SnmpValue::OctetString(b) => std::str::from_utf8(b).ok(),
            _ => None,
        }
    }

    /// Short type name, useful in diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            SnmpValue::Integer(_) => "INTEGER",
            SnmpValue::OctetString(_) => "OCTET STRING",
            SnmpValue::Null => "NULL",
            SnmpValue::Oid(_) => "OBJECT IDENTIFIER",
            SnmpValue::IpAddress(_) => "IpAddress",
            SnmpValue::Counter32(_) => "Counter32",
            SnmpValue::Gauge32(_) => "Gauge32",
            SnmpValue::TimeTicks(_) => "TimeTicks",
            SnmpValue::Opaque(_) => "Opaque",
            SnmpValue::NoSuchObject => "noSuchObject",
            SnmpValue::NoSuchInstance => "noSuchInstance",
            SnmpValue::EndOfMibView => "endOfMibView",
        }
    }

    /// True for the SNMPv2c exception markers.
    pub fn is_exception(&self) -> bool {
        matches!(
            self,
            SnmpValue::NoSuchObject | SnmpValue::NoSuchInstance | SnmpValue::EndOfMibView
        )
    }
}

impl fmt::Display for SnmpValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnmpValue::Integer(v) => write!(f, "{v}"),
            SnmpValue::OctetString(b) => match std::str::from_utf8(b) {
                Ok(s) => write!(f, "{s:?}"),
                Err(_) => {
                    write!(f, "0x")?;
                    for byte in b {
                        write!(f, "{byte:02x}")?;
                    }
                    Ok(())
                }
            },
            SnmpValue::Null => f.write_str("NULL"),
            SnmpValue::Oid(oid) => write!(f, "{oid}"),
            SnmpValue::IpAddress(a) => write!(f, "{}.{}.{}.{}", a[0], a[1], a[2], a[3]),
            SnmpValue::Counter32(v) => write!(f, "Counter32({v})"),
            SnmpValue::Gauge32(v) => write!(f, "Gauge32({v})"),
            SnmpValue::TimeTicks(v) => {
                // Render like net-snmp: ticks plus a human duration.
                let total_cs = *v as u64;
                let days = total_cs / (100 * 60 * 60 * 24);
                let hours = (total_cs / (100 * 60 * 60)) % 24;
                let mins = (total_cs / (100 * 60)) % 60;
                let secs = (total_cs / 100) % 60;
                let cs = total_cs % 100;
                write!(
                    f,
                    "TimeTicks({v}) {days}d {hours:02}:{mins:02}:{secs:02}.{cs:02}"
                )
            }
            SnmpValue::Opaque(b) => write!(f, "Opaque[{} bytes]", b.len()),
            SnmpValue::NoSuchObject => f.write_str("noSuchObject"),
            SnmpValue::NoSuchInstance => f.write_str("noSuchInstance"),
            SnmpValue::EndOfMibView => f.write_str("endOfMibView"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_u32_conversions() {
        assert_eq!(SnmpValue::Counter32(7).as_u32(), Some(7));
        assert_eq!(SnmpValue::Gauge32(8).as_u32(), Some(8));
        assert_eq!(SnmpValue::TimeTicks(9).as_u32(), Some(9));
        assert_eq!(SnmpValue::Integer(10).as_u32(), Some(10));
        assert_eq!(SnmpValue::Integer(-1).as_u32(), None);
        assert_eq!(SnmpValue::Integer(1 << 40).as_u32(), None);
        assert_eq!(SnmpValue::Null.as_u32(), None);
    }

    #[test]
    fn as_text() {
        assert_eq!(SnmpValue::text("eth0").as_text(), Some("eth0"));
        assert_eq!(SnmpValue::OctetString(vec![0xff, 0xfe]).as_text(), None);
        assert_eq!(SnmpValue::Integer(1).as_text(), None);
    }

    #[test]
    fn display_time_ticks() {
        // 1 day, 2 hours, 3 minutes, 4.56 seconds.
        let ticks = ((24 * 3600 + 2 * 3600 + 3 * 60 + 4) * 100 + 56) as u32;
        let s = SnmpValue::TimeTicks(ticks).to_string();
        assert!(s.contains("1d 02:03:04.56"), "{s}");
    }

    #[test]
    fn display_binary_octets_as_hex() {
        let s = SnmpValue::OctetString(vec![0xff, 0xfe]).to_string();
        assert_eq!(s, "0xfffe");
    }

    #[test]
    fn display_ip() {
        assert_eq!(SnmpValue::IpAddress([10, 0, 0, 1]).to_string(), "10.0.0.1");
    }
}
