//! The SNMP agent: request handling against a [`MibView`].
//!
//! The agent is transport-free: [`SnmpAgent::handle`] maps request bytes to
//! optional response bytes. SNMPv1 semantics implemented:
//!
//! * community mismatch → silently drop the request (and count it);
//! * `GetRequest` with any unknown name → `noSuchName` with the 1-based
//!   index of the first offender, bindings echoed;
//! * `GetNextRequest` past the end of the MIB → `noSuchName`;
//! * `SetRequest` → `readOnly` (this agent never writes);
//! * responses/traps received by an agent are ignored.

use crate::error::SnmpError;
use crate::message::{MessageBody, SnmpMessage};
use crate::mib::MibView;
use crate::pdu::{ErrorStatus, Pdu, PduType, VarBind};

/// Counters describing an agent's life so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgentStats {
    /// Requests successfully parsed and answered (including error
    /// responses).
    pub answered: u64,
    /// Messages dropped for a community mismatch.
    pub bad_community: u64,
    /// Messages dropped as undecodable.
    pub malformed: u64,
    /// Error responses among `answered`.
    pub error_responses: u64,
}

/// A read-only SNMPv1 agent.
#[derive(Debug, Clone)]
pub struct SnmpAgent {
    community: Vec<u8>,
    stats: AgentStats,
    max_response_bytes: usize,
}

impl SnmpAgent {
    /// Creates an agent that accepts the given community string.
    ///
    /// The default maximum response size is 64 KiB (the UDP datagram
    /// limit); use [`SnmpAgent::set_max_response_bytes`] to model agents
    /// with smaller buffers, which answer oversized requests with the
    /// `tooBig` error (RFC 1157 §4.1.2).
    pub fn new(community: &str) -> Self {
        SnmpAgent {
            community: community.as_bytes().to_vec(),
            stats: AgentStats::default(),
            max_response_bytes: 65_507,
        }
    }

    /// Limits the encoded response size; larger replies become `tooBig`
    /// errors.
    pub fn set_max_response_bytes(&mut self, limit: usize) {
        self.max_response_bytes = limit;
    }

    /// The agent's life-time statistics.
    pub fn stats(&self) -> AgentStats {
        self.stats
    }

    /// Handles one request datagram against `view`. Returns the response
    /// datagram, or `None` when SNMPv1 prescribes silence (bad community,
    /// unparseable message, or a non-request PDU).
    pub fn handle(&mut self, request: &[u8], view: &dyn MibView) -> Option<Vec<u8>> {
        let msg = match SnmpMessage::decode(request) {
            Ok(m) => m,
            Err(_) => {
                self.stats.malformed += 1;
                return None;
            }
        };
        if msg.community != self.community {
            self.stats.bad_community += 1;
            return None;
        }
        let pdu = match msg.body {
            MessageBody::Pdu(p) => p,
            MessageBody::Bulk(bulk) => {
                // GetBulk exists only in v2c; a v1 message carrying it is
                // a protocol violation and is dropped.
                if msg.version != crate::message::SnmpVersion::V2c {
                    self.stats.malformed += 1;
                    return None;
                }
                let response = self.do_get_bulk(&bulk, view);
                self.stats.answered += 1;
                let out = SnmpMessage {
                    version: msg.version,
                    community: msg.community,
                    body: MessageBody::Pdu(response),
                };
                let encoded = out.encode().ok()?;
                if encoded.len() > self.max_response_bytes {
                    // Shrink by halving repetitions is the RFC's advice;
                    // we answer tooBig and let the manager adapt.
                    let too_big = Pdu {
                        pdu_type: PduType::GetResponse,
                        request_id: bulk.request_id,
                        error_status: ErrorStatus::TooBig,
                        error_index: 0,
                        bindings: Vec::new(),
                    };
                    self.stats.error_responses += 1;
                    return SnmpMessage {
                        version: crate::message::SnmpVersion::V2c,
                        community: self.community.clone(),
                        body: MessageBody::Pdu(too_big),
                    }
                    .encode()
                    .ok();
                }
                return Some(encoded);
            }
            MessageBody::Trap(_) => return None,
        };
        let mut response = match pdu.pdu_type {
            PduType::GetRequest => self.do_get(&pdu, view),
            PduType::GetNextRequest => self.do_get_next(&pdu, view),
            PduType::SetRequest => pdu.error_response(ErrorStatus::ReadOnly, 1),
            PduType::GetResponse => return None, // agents do not answer responses
        };
        let mut out = SnmpMessage {
            version: msg.version,
            community: msg.community,
            body: MessageBody::Pdu(response.clone()),
        };
        // RFC 1157 §4.1.2: if the reply would exceed a local limitation,
        // respond tooBig with empty-ish bindings instead.
        let mut encoded = out.encode().ok()?;
        if encoded.len() > self.max_response_bytes {
            response = pdu.error_response(ErrorStatus::TooBig, 0);
            response.bindings.clear();
            out.body = MessageBody::Pdu(response.clone());
            encoded = out.encode().ok()?;
        }
        self.stats.answered += 1;
        if !response.error_status.is_ok() {
            self.stats.error_responses += 1;
        }
        Some(encoded)
    }

    fn do_get(&self, pdu: &Pdu, view: &dyn MibView) -> Pdu {
        let mut bindings = Vec::with_capacity(pdu.bindings.len());
        for (i, vb) in pdu.bindings.iter().enumerate() {
            match view.get(&vb.oid) {
                Some(value) => bindings.push(VarBind::new(vb.oid.clone(), value)),
                None => return pdu.error_response(ErrorStatus::NoSuchName, (i + 1) as u32),
            }
        }
        pdu.response(bindings)
    }

    /// RFC 1905 §4.2.3 GetBulk semantics: `non_repeaters` leading names
    /// get one successor each; every remaining name is stepped up to
    /// `max_repetitions` times; walks past the MIB yield `endOfMibView`
    /// values (never an error).
    fn do_get_bulk(&self, bulk: &crate::pdu::BulkPdu, view: &dyn MibView) -> Pdu {
        let mut bindings = Vec::new();
        let nr = (bulk.non_repeaters as usize).min(bulk.bindings.len());
        for vb in &bulk.bindings[..nr] {
            match view.next_after(&vb.oid) {
                Some((oid, value)) => bindings.push(VarBind::new(oid, value)),
                None => bindings.push(VarBind::new(
                    vb.oid.clone(),
                    crate::value::SnmpValue::EndOfMibView,
                )),
            }
        }
        let repeaters: Vec<_> = bulk.bindings[nr..].to_vec();
        let mut cursors: Vec<_> = repeaters.iter().map(|vb| vb.oid.clone()).collect();
        let mut done: Vec<bool> = vec![false; cursors.len()];
        for _ in 0..bulk.max_repetitions {
            if done.iter().all(|&d| d) {
                break;
            }
            for (i, cursor) in cursors.iter_mut().enumerate() {
                if done[i] {
                    continue;
                }
                match view.next_after(cursor) {
                    Some((oid, value)) => {
                        *cursor = oid.clone();
                        bindings.push(VarBind::new(oid, value));
                    }
                    None => {
                        done[i] = true;
                        bindings.push(VarBind::new(
                            cursor.clone(),
                            crate::value::SnmpValue::EndOfMibView,
                        ));
                    }
                }
            }
        }
        Pdu {
            pdu_type: PduType::GetResponse,
            request_id: bulk.request_id,
            error_status: ErrorStatus::NoError,
            error_index: 0,
            bindings,
        }
    }

    fn do_get_next(&self, pdu: &Pdu, view: &dyn MibView) -> Pdu {
        let mut bindings = Vec::with_capacity(pdu.bindings.len());
        for (i, vb) in pdu.bindings.iter().enumerate() {
            match view.next_after(&vb.oid) {
                Some((oid, value)) => bindings.push(VarBind::new(oid, value)),
                None => return pdu.error_response(ErrorStatus::NoSuchName, (i + 1) as u32),
            }
        }
        pdu.response(bindings)
    }
}

/// Convenience for tests and simple deployments: decode a response message
/// and extract its PDU, verifying it is a `GetResponse`.
pub fn decode_response(bytes: &[u8]) -> Result<Pdu, SnmpError> {
    let msg = SnmpMessage::decode(bytes)?;
    match msg.body {
        MessageBody::Pdu(p) if p.pdu_type == PduType::GetResponse => Ok(p),
        _ => Err(SnmpError::NotAResponse),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mib::ScalarMib;
    use crate::mib2::{self, interfaces::IfEntry, SystemInfo};
    use crate::oid::Oid;
    use crate::value::SnmpValue;

    fn oid(s: &str) -> Oid {
        s.parse().unwrap()
    }

    fn demo_mib() -> ScalarMib {
        let mut mib = ScalarMib::new();
        mib2::system::install(&mut mib, &SystemInfo::new("L"), 1000);
        mib2::interfaces::install(
            &mut mib,
            &[IfEntry::ethernet(
                1,
                "eth0",
                100_000_000,
                [2, 0, 0, 0, 0, 1],
            )],
        );
        mib
    }

    fn get_req(community: &str, id: i32, oids: &[Oid]) -> Vec<u8> {
        SnmpMessage::v1(community, Pdu::request(PduType::GetRequest, id, oids))
            .encode()
            .unwrap()
    }

    #[test]
    fn get_returns_values() {
        let mib = demo_mib();
        let mut agent = SnmpAgent::new("public");
        let req = get_req(
            "public",
            5,
            &[
                mib2::system::sys_uptime_instance(),
                mib2::interfaces::instance_oid(mib2::interfaces::column::IF_SPEED, 1),
            ],
        );
        let resp = agent.handle(&req, &mib).unwrap();
        let pdu = decode_response(&resp).unwrap();
        assert_eq!(pdu.request_id, 5);
        assert!(pdu.error_status.is_ok());
        assert_eq!(pdu.bindings[0].value, SnmpValue::TimeTicks(1000));
        assert_eq!(pdu.bindings[1].value, SnmpValue::Gauge32(100_000_000));
        assert_eq!(agent.stats().answered, 1);
    }

    #[test]
    fn get_unknown_name_errors_with_index() {
        let mib = demo_mib();
        let mut agent = SnmpAgent::new("public");
        let req = get_req(
            "public",
            6,
            &[mib2::system::sys_uptime_instance(), oid("1.3.9.9.9.0")],
        );
        let resp = agent.handle(&req, &mib).unwrap();
        let pdu = decode_response(&resp).unwrap();
        assert_eq!(pdu.error_status, ErrorStatus::NoSuchName);
        assert_eq!(pdu.error_index, 2);
        // v1 echoes the request bindings.
        assert_eq!(pdu.bindings[1].value, SnmpValue::Null);
        assert_eq!(agent.stats().error_responses, 1);
    }

    #[test]
    fn get_next_walks() {
        let mib = demo_mib();
        let mut agent = SnmpAgent::new("public");
        // Start a walk at the interfaces table root.
        let req = SnmpMessage::v1(
            "public",
            Pdu::request(PduType::GetNextRequest, 7, &[oid("1.3.6.1.2.1.2")]),
        )
        .encode()
        .unwrap();
        let resp = agent.handle(&req, &mib).unwrap();
        let pdu = decode_response(&resp).unwrap();
        assert_eq!(pdu.bindings[0].oid, mib2::interfaces::if_number_instance());
        assert_eq!(pdu.bindings[0].value, SnmpValue::Integer(1));
    }

    #[test]
    fn get_next_at_end_of_mib_errors() {
        let mib = demo_mib();
        let mut agent = SnmpAgent::new("public");
        let req = SnmpMessage::v1(
            "public",
            Pdu::request(PduType::GetNextRequest, 8, &[oid("2.99.9")]),
        )
        .encode()
        .unwrap();
        let resp = agent.handle(&req, &mib).unwrap();
        let pdu = decode_response(&resp).unwrap();
        assert_eq!(pdu.error_status, ErrorStatus::NoSuchName);
    }

    #[test]
    fn bad_community_dropped_silently() {
        let mib = demo_mib();
        let mut agent = SnmpAgent::new("secret");
        let req = get_req("public", 9, &[mib2::system::sys_uptime_instance()]);
        assert!(agent.handle(&req, &mib).is_none());
        assert_eq!(agent.stats().bad_community, 1);
        assert_eq!(agent.stats().answered, 0);
    }

    #[test]
    fn malformed_dropped_silently() {
        let mib = demo_mib();
        let mut agent = SnmpAgent::new("public");
        assert!(agent.handle(&[0x30, 0x05, 0x01], &mib).is_none());
        assert_eq!(agent.stats().malformed, 1);
    }

    #[test]
    fn set_rejected_read_only() {
        let mib = demo_mib();
        let mut agent = SnmpAgent::new("public");
        let req = SnmpMessage::v1(
            "public",
            Pdu {
                pdu_type: PduType::SetRequest,
                request_id: 10,
                error_status: ErrorStatus::NoError,
                error_index: 0,
                bindings: vec![VarBind::new(
                    mib2::system::sys_name_instance(),
                    SnmpValue::text("evil"),
                )],
            },
        )
        .encode()
        .unwrap();
        let resp = agent.handle(&req, &mib).unwrap();
        let pdu = decode_response(&resp).unwrap();
        assert_eq!(pdu.error_status, ErrorStatus::ReadOnly);
    }

    #[test]
    fn response_pdu_ignored() {
        let mib = demo_mib();
        let mut agent = SnmpAgent::new("public");
        let req = SnmpMessage::v1(
            "public",
            Pdu::request(PduType::GetRequest, 1, &[]).response(vec![]),
        )
        .encode()
        .unwrap();
        assert!(agent.handle(&req, &mib).is_none());
    }

    #[test]
    fn get_bulk_semantics() {
        use crate::pdu::BulkPdu;
        let mib = demo_mib();
        let mut agent = SnmpAgent::new("public");
        // One non-repeater (sysUpTime area) + one repeater over the
        // interfaces table, 3 repetitions.
        let bulk = BulkPdu::request(
            77,
            1,
            3,
            &[oid("1.3.6.1.2.1.1.3"), oid("1.3.6.1.2.1.2.2.1.10")],
        );
        let req = SnmpMessage::v2c_bulk("public", bulk).encode().unwrap();
        let resp = agent.handle(&req, &mib).unwrap();
        let pdu = decode_response(&resp).unwrap();
        assert!(pdu.error_status.is_ok());
        // 1 non-repeater + 3 repetitions of the single repeater.
        assert_eq!(pdu.bindings.len(), 4);
        assert_eq!(pdu.bindings[0].oid, mib2::system::sys_uptime_instance());
        assert_eq!(
            pdu.bindings[1].oid,
            mib2::interfaces::instance_oid(mib2::interfaces::column::IF_IN_OCTETS, 1)
        );
    }

    #[test]
    fn get_bulk_reports_end_of_mib_view() {
        use crate::pdu::BulkPdu;
        let mib = demo_mib();
        let mut agent = SnmpAgent::new("public");
        // Start past everything.
        let bulk = BulkPdu::request(78, 0, 5, &[oid("2.99")]);
        let req = SnmpMessage::v2c_bulk("public", bulk).encode().unwrap();
        let resp = agent.handle(&req, &mib).unwrap();
        let pdu = decode_response(&resp).unwrap();
        assert!(pdu.error_status.is_ok());
        assert_eq!(pdu.bindings.len(), 1);
        assert_eq!(pdu.bindings[0].value, SnmpValue::EndOfMibView);
    }

    #[test]
    fn get_bulk_in_v1_message_dropped() {
        use crate::message::{MessageBody, SnmpVersion};
        use crate::pdu::BulkPdu;
        let mib = demo_mib();
        let mut agent = SnmpAgent::new("public");
        let msg = SnmpMessage {
            version: SnmpVersion::V1,
            community: b"public".to_vec(),
            body: MessageBody::Bulk(BulkPdu::request(1, 0, 5, &[oid("1.3")])),
        };
        assert!(agent.handle(&msg.encode().unwrap(), &mib).is_none());
        assert_eq!(agent.stats().malformed, 1);
    }

    #[test]
    fn oversized_response_becomes_too_big() {
        let mib = demo_mib();
        let mut agent = SnmpAgent::new("public");
        agent.set_max_response_bytes(64);
        // Request enough objects that the reply cannot fit 64 bytes.
        let req = get_req(
            "public",
            11,
            &[
                mib2::system::sys_descr_instance(),
                mib2::system::sys_contact_instance(),
                mib2::system::sys_location_instance(),
            ],
        );
        let resp = agent.handle(&req, &mib).unwrap();
        assert!(resp.len() <= 64, "tooBig reply must itself be small");
        let pdu = decode_response(&resp).unwrap();
        assert_eq!(pdu.error_status, ErrorStatus::TooBig);
        assert!(pdu.bindings.is_empty());
        assert_eq!(agent.stats().error_responses, 1);

        // A small request still succeeds under the same limit.
        let req = get_req("public", 12, &[mib2::system::sys_uptime_instance()]);
        let resp = agent.handle(&req, &mib).unwrap();
        let pdu = decode_response(&resp).unwrap();
        assert!(pdu.error_status.is_ok());
    }

    #[test]
    fn full_walk_terminates_and_covers_mib() {
        let mib = demo_mib();
        let mut agent = SnmpAgent::new("public");
        let mut cur = Oid::from([0, 0]);
        let mut count = 0;
        loop {
            let req = SnmpMessage::v1(
                "public",
                Pdu::request(PduType::GetNextRequest, count, &[cur.clone()]),
            )
            .encode()
            .unwrap();
            let resp = agent.handle(&req, &mib).unwrap();
            let pdu = decode_response(&resp).unwrap();
            if !pdu.error_status.is_ok() {
                break;
            }
            cur = pdu.bindings[0].oid.clone();
            count += 1;
            assert!(count < 1000, "walk did not terminate");
        }
        // 7 system scalars + ifNumber + 21 table cells.
        assert_eq!(count, 29);
    }
}
