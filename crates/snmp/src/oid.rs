//! ASN.1 object identifiers.
//!
//! An [`Oid`] is a sequence of non-negative integer arcs, e.g.
//! `1.3.6.1.2.1.2.2.1.10.3` (`ifInOctets` of interface 3). OIDs order
//! lexicographically by arc, which is exactly the order `GetNextRequest`
//! walks a MIB.

use std::fmt;
use std::str::FromStr;

/// An object identifier: a sequence of arcs.
///
/// The natural `Ord` implementation (lexicographic over arcs) matches MIB
/// ordering, so `Oid` works directly as a `BTreeMap` key for `GetNext`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Oid {
    arcs: Vec<u32>,
}

impl Oid {
    /// Creates an OID from arcs.
    pub fn new(arcs: impl Into<Vec<u32>>) -> Self {
        Oid { arcs: arcs.into() }
    }

    /// The empty OID (zero arcs). Valid as a `GetNext` starting point but
    /// not encodable on the wire (BER requires at least two arcs).
    pub fn empty() -> Self {
        Oid { arcs: Vec::new() }
    }

    /// The arcs of this OID.
    #[inline]
    pub fn arcs(&self) -> &[u32] {
        &self.arcs
    }

    /// Number of arcs.
    #[inline]
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// True when the OID has no arcs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// Returns a new OID with `arc` appended.
    pub fn child(&self, arc: u32) -> Oid {
        let mut arcs = Vec::with_capacity(self.arcs.len() + 1);
        arcs.extend_from_slice(&self.arcs);
        arcs.push(arc);
        Oid { arcs }
    }

    /// Returns a new OID with all of `suffix` appended.
    pub fn extend(&self, suffix: &[u32]) -> Oid {
        let mut arcs = Vec::with_capacity(self.arcs.len() + suffix.len());
        arcs.extend_from_slice(&self.arcs);
        arcs.extend_from_slice(suffix);
        Oid { arcs }
    }

    /// Appends an arc in place.
    pub fn push(&mut self, arc: u32) {
        self.arcs.push(arc);
    }

    /// True if `self` starts with `prefix` (a MIB subtree test).
    pub fn starts_with(&self, prefix: &Oid) -> bool {
        self.arcs.len() >= prefix.arcs.len() && self.arcs[..prefix.arcs.len()] == prefix.arcs[..]
    }

    /// The arcs after `prefix`, or `None` if `self` is not inside that
    /// subtree. Useful for decoding table indices.
    pub fn suffix_of(&self, prefix: &Oid) -> Option<&[u32]> {
        if self.starts_with(prefix) {
            Some(&self.arcs[prefix.arcs.len()..])
        } else {
            None
        }
    }

    /// True if the OID can be BER-encoded: at least two arcs, first arc in
    /// `0..=2`, and second arc `< 40` when the first is 0 or 1.
    pub fn is_encodable(&self) -> bool {
        match self.arcs.as_slice() {
            [first, second, ..] => *first <= 2 && (*first == 2 || *second < 40),
            _ => false,
        }
    }
}

impl From<&[u32]> for Oid {
    fn from(arcs: &[u32]) -> Self {
        Oid::new(arcs.to_vec())
    }
}

impl<const N: usize> From<[u32; N]> for Oid {
    fn from(arcs: [u32; N]) -> Self {
        Oid::new(arcs.to_vec())
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for arc in &self.arcs {
            if !first {
                f.write_str(".")?;
            }
            write!(f, "{arc}")?;
            first = false;
        }
        Ok(())
    }
}

/// Error parsing an OID from its dotted-decimal form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOidError(pub String);

impl fmt::Display for ParseOidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid OID `{}`", self.0)
    }
}

impl std::error::Error for ParseOidError {}

impl FromStr for Oid {
    type Err = ParseOidError;

    /// Parses dotted-decimal notation, tolerating one leading dot
    /// (`.1.3.6.1` as printed by many SNMP tools).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s.strip_prefix('.').unwrap_or(s);
        if body.is_empty() {
            return Err(ParseOidError(s.to_owned()));
        }
        let mut arcs = Vec::new();
        for part in body.split('.') {
            let arc: u32 = part.parse().map_err(|_| ParseOidError(s.to_owned()))?;
            arcs.push(arc);
        }
        Ok(Oid { arcs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let s = "1.3.6.1.2.1.2.2.1.10.3";
        let oid: Oid = s.parse().unwrap();
        assert_eq!(oid.to_string(), s);
        assert_eq!(oid.len(), 11);
    }

    #[test]
    fn leading_dot_tolerated() {
        let oid: Oid = ".1.3.6".parse().unwrap();
        assert_eq!(oid, Oid::from([1, 3, 6]));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Oid>().is_err());
        assert!("1..3".parse::<Oid>().is_err());
        assert!("1.x.3".parse::<Oid>().is_err());
        assert!("-1.3".parse::<Oid>().is_err());
    }

    #[test]
    fn ordering_is_mib_order() {
        let a: Oid = "1.3.6.1.2.1.1.3.0".parse().unwrap();
        let b: Oid = "1.3.6.1.2.1.2.1.0".parse().unwrap();
        let c: Oid = "1.3.6.1.2.1.2.2.1.1.1".parse().unwrap();
        assert!(a < b && b < c);
        // A prefix sorts before any of its children.
        let p: Oid = "1.3.6".parse().unwrap();
        assert!(p < a);
    }

    #[test]
    fn subtree_tests() {
        let table: Oid = "1.3.6.1.2.1.2.2".parse().unwrap();
        let cell: Oid = "1.3.6.1.2.1.2.2.1.10.3".parse().unwrap();
        assert!(cell.starts_with(&table));
        assert!(!table.starts_with(&cell));
        assert_eq!(cell.suffix_of(&table), Some(&[1, 10, 3][..]));
        assert_eq!(table.suffix_of(&cell), None);
    }

    #[test]
    fn child_and_extend() {
        let base: Oid = "1.3".parse().unwrap();
        assert_eq!(base.child(6), "1.3.6".parse().unwrap());
        assert_eq!(base.extend(&[6, 1]), "1.3.6.1".parse().unwrap());
        let mut o = base.clone();
        o.push(9);
        assert_eq!(o, "1.3.9".parse().unwrap());
    }

    #[test]
    fn encodability() {
        assert!(Oid::from([1, 3, 6]).is_encodable());
        assert!(Oid::from([0, 39]).is_encodable());
        assert!(Oid::from([2, 999]).is_encodable());
        assert!(!Oid::from([1, 40]).is_encodable());
        assert!(!Oid::from([3, 1]).is_encodable());
        assert!(!Oid::from([1]).is_encodable());
        assert!(!Oid::empty().is_encodable());
    }
}
