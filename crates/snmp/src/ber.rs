//! ASN.1 Basic Encoding Rules — the subset used by SNMPv1 (RFC 1157 §3.2.2
//! restricts SNMP to definite-length, primitive-where-possible BER).
//!
//! The encoder produces canonical encodings (minimal-length integers and
//! lengths); the decoder is liberal within the SNMP subset but rejects
//! indefinite lengths, truncated elements, and oversized quantities.
//!
//! ## Wire vectors
//!
//! A few worked examples, verifiable by hand against RFC 1157 appendix
//! examples (also asserted in the tests below):
//!
//! ```text
//! INTEGER 5          => 02 01 05
//! INTEGER -1         => 02 01 FF
//! INTEGER 256        => 02 02 01 00
//! OCTET STRING "ab"  => 04 02 61 62
//! NULL               => 05 00
//! OID 1.3.6.1.2.1    => 06 05 2B 06 01 02 01
//! Counter32 0xFFFFFFFF => 41 05 00 FF FF FF FF
//! ```

use crate::error::BerError;
use crate::oid::Oid;
use crate::value::SnmpValue;

/// BER tag constants used by SNMPv1.
pub mod tag {
    /// Universal INTEGER.
    pub const INTEGER: u8 = 0x02;
    /// Universal OCTET STRING.
    pub const OCTET_STRING: u8 = 0x04;
    /// Universal NULL.
    pub const NULL: u8 = 0x05;
    /// Universal OBJECT IDENTIFIER.
    pub const OID: u8 = 0x06;
    /// Universal constructed SEQUENCE (OF).
    pub const SEQUENCE: u8 = 0x30;
    /// Application 0: IpAddress.
    pub const IP_ADDRESS: u8 = 0x40;
    /// Application 1: Counter.
    pub const COUNTER32: u8 = 0x41;
    /// Application 2: Gauge.
    pub const GAUGE32: u8 = 0x42;
    /// Application 3: TimeTicks.
    pub const TIME_TICKS: u8 = 0x43;
    /// Application 4: Opaque.
    pub const OPAQUE: u8 = 0x44;
    /// Context-constructed 0: GetRequest-PDU.
    pub const GET_REQUEST: u8 = 0xA0;
    /// Context-constructed 1: GetNextRequest-PDU.
    pub const GET_NEXT_REQUEST: u8 = 0xA1;
    /// Context-constructed 2: GetResponse-PDU.
    pub const GET_RESPONSE: u8 = 0xA2;
    /// Context-constructed 3: SetRequest-PDU.
    pub const SET_REQUEST: u8 = 0xA3;
    /// Context-constructed 4: Trap-PDU.
    pub const TRAP: u8 = 0xA4;
    /// Context-constructed 5: GetBulkRequest-PDU (SNMPv2c).
    pub const GET_BULK_REQUEST: u8 = 0xA5;
    /// Context primitive 0 inside a varbind value: noSuchObject (v2c).
    pub const NO_SUCH_OBJECT: u8 = 0x80;
    /// Context primitive 1 inside a varbind value: noSuchInstance (v2c).
    pub const NO_SUCH_INSTANCE: u8 = 0x81;
    /// Context primitive 2 inside a varbind value: endOfMibView (v2c).
    pub const END_OF_MIB_VIEW: u8 = 0x82;
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Appends a BER definite length to `out`.
pub fn push_length(out: &mut Vec<u8>, len: usize) {
    if len < 0x80 {
        out.push(len as u8);
    } else {
        let bytes = len.to_be_bytes();
        let skip = bytes.iter().take_while(|&&b| b == 0).count();
        let sig = &bytes[skip..];
        out.push(0x80 | sig.len() as u8);
        out.extend_from_slice(sig);
    }
}

/// Appends a complete TLV element to `out`.
pub fn push_tlv(out: &mut Vec<u8>, tag_byte: u8, content: &[u8]) {
    out.push(tag_byte);
    push_length(out, content.len());
    out.extend_from_slice(content);
}

/// Encodes a signed INTEGER (minimal two's complement content).
pub fn encode_integer(value: i64) -> Vec<u8> {
    let mut content = value.to_be_bytes().to_vec();
    // Strip redundant leading bytes while the sign is preserved.
    while content.len() > 1 {
        let first = content[0];
        let second_msb = content[1] & 0x80;
        if (first == 0x00 && second_msb == 0) || (first == 0xFF && second_msb != 0) {
            content.remove(0);
        } else {
            break;
        }
    }
    let mut out = Vec::with_capacity(content.len() + 2);
    push_tlv(&mut out, tag::INTEGER, &content);
    out
}

/// Encodes an unsigned 32-bit quantity under an application tag
/// (Counter32 / Gauge32 / TimeTicks). Values with the high bit set gain a
/// leading zero octet so they are not read back as negative.
pub fn encode_unsigned(tag_byte: u8, value: u32) -> Vec<u8> {
    let mut content = value.to_be_bytes().to_vec();
    while content.len() > 1 && content[0] == 0 && content[1] & 0x80 == 0 {
        content.remove(0);
    }
    if content[0] & 0x80 != 0 {
        content.insert(0, 0);
    }
    // Minimal form: single zero byte for value 0.
    if value == 0 {
        content = vec![0];
    }
    let mut out = Vec::with_capacity(content.len() + 2);
    push_tlv(&mut out, tag_byte, &content);
    out
}

/// Encodes an OBJECT IDENTIFIER.
pub fn encode_oid(oid: &Oid) -> Result<Vec<u8>, BerError> {
    if !oid.is_encodable() {
        return Err(BerError::UnencodableOid);
    }
    let arcs = oid.arcs();
    let mut content = Vec::with_capacity(arcs.len() + 1);
    // First two arcs combine into one subidentifier: X*40 + Y.
    let first = arcs[0] * 40 + arcs[1];
    push_base128(&mut content, first);
    for &arc in &arcs[2..] {
        push_base128(&mut content, arc);
    }
    let mut out = Vec::with_capacity(content.len() + 2);
    push_tlv(&mut out, tag::OID, &content);
    Ok(out)
}

fn push_base128(out: &mut Vec<u8>, mut v: u32) {
    let mut stack = [0u8; 5];
    let mut n = 0;
    loop {
        stack[n] = (v & 0x7F) as u8;
        n += 1;
        v >>= 7;
        if v == 0 {
            break;
        }
    }
    for i in (0..n).rev() {
        let byte = stack[i] | if i > 0 { 0x80 } else { 0 };
        out.push(byte);
    }
}

/// Encodes any [`SnmpValue`].
pub fn encode_value(value: &SnmpValue) -> Result<Vec<u8>, BerError> {
    Ok(match value {
        SnmpValue::Integer(v) => encode_integer(*v),
        SnmpValue::OctetString(b) => {
            let mut out = Vec::with_capacity(b.len() + 4);
            push_tlv(&mut out, tag::OCTET_STRING, b);
            out
        }
        SnmpValue::Null => vec![tag::NULL, 0x00],
        SnmpValue::Oid(oid) => encode_oid(oid)?,
        SnmpValue::IpAddress(a) => {
            let mut out = Vec::with_capacity(6);
            push_tlv(&mut out, tag::IP_ADDRESS, a);
            out
        }
        SnmpValue::Counter32(v) => encode_unsigned(tag::COUNTER32, *v),
        SnmpValue::Gauge32(v) => encode_unsigned(tag::GAUGE32, *v),
        SnmpValue::TimeTicks(v) => encode_unsigned(tag::TIME_TICKS, *v),
        SnmpValue::Opaque(b) => {
            let mut out = Vec::with_capacity(b.len() + 4);
            push_tlv(&mut out, tag::OPAQUE, b);
            out
        }
        SnmpValue::NoSuchObject => vec![tag::NO_SUCH_OBJECT, 0x00],
        SnmpValue::NoSuchInstance => vec![tag::NO_SUCH_INSTANCE, 0x00],
        SnmpValue::EndOfMibView => vec![tag::END_OF_MIB_VIEW, 0x00],
    })
}

/// Wraps already-encoded elements in a SEQUENCE.
pub fn encode_sequence(parts: &[&[u8]]) -> Vec<u8> {
    let content_len: usize = parts.iter().map(|p| p.len()).sum();
    let mut content = Vec::with_capacity(content_len);
    for p in parts {
        content.extend_from_slice(p);
    }
    let mut out = Vec::with_capacity(content_len + 4);
    push_tlv(&mut out, tag::SEQUENCE, &content);
    out
}

/// Wraps already-encoded elements under an arbitrary constructed tag
/// (used for the PDU context tags).
pub fn encode_constructed(tag_byte: u8, parts: &[&[u8]]) -> Vec<u8> {
    let content_len: usize = parts.iter().map(|p| p.len()).sum();
    let mut content = Vec::with_capacity(content_len);
    for p in parts {
        content.extend_from_slice(p);
    }
    let mut out = Vec::with_capacity(content_len + 4);
    push_tlv(&mut out, tag_byte, &content);
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A cursor over BER input.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BerError> {
        if self.remaining() < n {
            return Err(BerError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn byte(&mut self) -> Result<u8, BerError> {
        Ok(self.take(1)?[0])
    }

    /// Peeks at the next tag without consuming it.
    pub fn peek_tag(&self) -> Result<u8, BerError> {
        self.data.get(self.pos).copied().ok_or(BerError::Truncated)
    }

    /// Reads a tag byte and definite length.
    pub fn read_header(&mut self) -> Result<(u8, usize), BerError> {
        let t = self.byte()?;
        let len = self.read_length()?;
        Ok((t, len))
    }

    fn read_length(&mut self) -> Result<usize, BerError> {
        let first = self.byte()?;
        if first < 0x80 {
            return Ok(first as usize);
        }
        let n = (first & 0x7F) as usize;
        if n == 0 {
            return Err(BerError::IndefiniteLength);
        }
        if n > std::mem::size_of::<usize>() {
            return Err(BerError::BadLength);
        }
        let bytes = self.take(n)?;
        let mut len = 0usize;
        for &b in bytes {
            len = (len << 8) | b as usize;
        }
        Ok(len)
    }

    /// Reads the next element: returns its tag and a sub-reader over its
    /// content.
    pub fn read_element(&mut self) -> Result<(u8, Reader<'a>), BerError> {
        let (t, len) = self.read_header()?;
        let content = self.take(len)?;
        Ok((t, Reader::new(content)))
    }

    /// Reads an element and checks its tag.
    pub fn expect_element(&mut self, expected: u8) -> Result<Reader<'a>, BerError> {
        let (t, r) = self.read_element()?;
        if t != expected {
            return Err(BerError::UnexpectedTag { expected, got: t });
        }
        Ok(r)
    }

    /// Reads a full INTEGER element.
    pub fn read_integer(&mut self) -> Result<i64, BerError> {
        let content = self.expect_element(tag::INTEGER)?;
        decode_integer_content(content.rest())
    }

    /// Reads a full unsigned element under the given application tag.
    pub fn read_unsigned(&mut self, tag_byte: u8) -> Result<u32, BerError> {
        let content = self.expect_element(tag_byte)?;
        decode_unsigned_content(content.rest())
    }

    /// Reads a full OCTET STRING element.
    pub fn read_octet_string(&mut self) -> Result<Vec<u8>, BerError> {
        let content = self.expect_element(tag::OCTET_STRING)?;
        Ok(content.rest().to_vec())
    }

    /// Reads a full OBJECT IDENTIFIER element.
    pub fn read_oid(&mut self) -> Result<Oid, BerError> {
        let content = self.expect_element(tag::OID)?;
        decode_oid_content(content.rest())
    }

    /// Reads any SNMP value element.
    pub fn read_value(&mut self) -> Result<SnmpValue, BerError> {
        let (t, content) = self.read_element()?;
        let bytes = content.rest();
        Ok(match t {
            tag::INTEGER => SnmpValue::Integer(decode_integer_content(bytes)?),
            tag::OCTET_STRING => SnmpValue::OctetString(bytes.to_vec()),
            tag::NULL => SnmpValue::Null,
            tag::OID => SnmpValue::Oid(decode_oid_content(bytes)?),
            tag::IP_ADDRESS => {
                let arr: [u8; 4] = bytes.try_into().map_err(|_| BerError::BadIpAddress)?;
                SnmpValue::IpAddress(arr)
            }
            tag::COUNTER32 => SnmpValue::Counter32(decode_unsigned_content(bytes)?),
            tag::GAUGE32 => SnmpValue::Gauge32(decode_unsigned_content(bytes)?),
            tag::TIME_TICKS => SnmpValue::TimeTicks(decode_unsigned_content(bytes)?),
            tag::OPAQUE => SnmpValue::Opaque(bytes.to_vec()),
            tag::NO_SUCH_OBJECT => SnmpValue::NoSuchObject,
            tag::NO_SUCH_INSTANCE => SnmpValue::NoSuchInstance,
            tag::END_OF_MIB_VIEW => SnmpValue::EndOfMibView,
            other => return Err(BerError::UnknownTag(other)),
        })
    }

    /// The unconsumed input.
    pub fn rest(&self) -> &'a [u8] {
        &self.data[self.pos..]
    }

    /// Fails with [`BerError::TrailingBytes`] unless fully consumed.
    pub fn finish(&self) -> Result<(), BerError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(BerError::TrailingBytes(self.remaining()))
        }
    }
}

fn decode_integer_content(bytes: &[u8]) -> Result<i64, BerError> {
    if bytes.is_empty() || bytes.len() > 8 {
        return Err(BerError::BadInteger);
    }
    let mut v: i64 = if bytes[0] & 0x80 != 0 { -1 } else { 0 };
    for &b in bytes {
        v = (v << 8) | i64::from(b);
    }
    Ok(v)
}

fn decode_unsigned_content(bytes: &[u8]) -> Result<u32, BerError> {
    if bytes.is_empty() {
        return Err(BerError::BadInteger);
    }
    // A 5-byte encoding is legal only with a leading zero octet.
    let sig = if bytes.len() == 5 {
        if bytes[0] != 0 {
            return Err(BerError::UnsignedOverflow);
        }
        &bytes[1..]
    } else if bytes.len() > 5 {
        return Err(BerError::UnsignedOverflow);
    } else {
        bytes
    };
    let mut v: u32 = 0;
    for &b in sig {
        v = (v << 8) | u32::from(b);
    }
    Ok(v)
}

fn decode_oid_content(bytes: &[u8]) -> Result<Oid, BerError> {
    if bytes.is_empty() {
        return Err(BerError::BadOid);
    }
    let mut arcs = Vec::with_capacity(bytes.len() + 1);
    let mut iter = bytes.iter().peekable();
    let mut first = true;
    while iter.peek().is_some() {
        let mut v: u32 = 0;
        loop {
            let &b = iter.next().ok_or(BerError::BadOid)?;
            if v > (u32::MAX >> 7) {
                return Err(BerError::BadOid);
            }
            v = (v << 7) | u32::from(b & 0x7F);
            if b & 0x80 == 0 {
                break;
            }
            if iter.peek().is_none() {
                return Err(BerError::BadOid); // continuation bit on last byte
            }
        }
        if first {
            // Split the combined first subidentifier.
            let (a, b) = if v < 40 {
                (0, v)
            } else if v < 80 {
                (1, v - 40)
            } else {
                (2, v - 80)
            };
            arcs.push(a);
            arcs.push(b);
            first = false;
        } else {
            arcs.push(v);
        }
    }
    Ok(Oid::new(arcs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(s: &str) -> Oid {
        s.parse().unwrap()
    }

    #[test]
    fn integer_wire_vectors() {
        assert_eq!(encode_integer(5), [0x02, 0x01, 0x05]);
        assert_eq!(encode_integer(0), [0x02, 0x01, 0x00]);
        assert_eq!(encode_integer(-1), [0x02, 0x01, 0xFF]);
        assert_eq!(encode_integer(127), [0x02, 0x01, 0x7F]);
        assert_eq!(encode_integer(128), [0x02, 0x02, 0x00, 0x80]);
        assert_eq!(encode_integer(256), [0x02, 0x02, 0x01, 0x00]);
        assert_eq!(encode_integer(-129), [0x02, 0x02, 0xFF, 0x7F]);
    }

    #[test]
    fn integer_decode_round_trip() {
        for v in [
            0i64,
            1,
            -1,
            127,
            128,
            -128,
            -129,
            255,
            256,
            i64::from(i32::MAX),
            i64::from(i32::MIN),
            i64::MAX,
            i64::MIN,
        ] {
            let enc = encode_integer(v);
            let mut r = Reader::new(&enc);
            assert_eq!(r.read_integer().unwrap(), v, "value {v}");
            r.finish().unwrap();
        }
    }

    #[test]
    fn unsigned_wire_vectors() {
        // High-bit values need a leading zero octet.
        assert_eq!(
            encode_unsigned(tag::COUNTER32, 0xFFFF_FFFF),
            [0x41, 0x05, 0x00, 0xFF, 0xFF, 0xFF, 0xFF]
        );
        assert_eq!(encode_unsigned(tag::GAUGE32, 0), [0x42, 0x01, 0x00]);
        assert_eq!(
            encode_unsigned(tag::TIME_TICKS, 0x80),
            [0x43, 0x02, 0x00, 0x80]
        );
    }

    #[test]
    fn unsigned_round_trip() {
        for v in [
            0u32,
            1,
            127,
            128,
            255,
            256,
            0x7FFF_FFFF,
            0x8000_0000,
            u32::MAX,
        ] {
            let enc = encode_unsigned(tag::COUNTER32, v);
            let mut r = Reader::new(&enc);
            assert_eq!(r.read_unsigned(tag::COUNTER32).unwrap(), v);
        }
    }

    #[test]
    fn unsigned_overflow_rejected() {
        // Six content octets can never be a valid 32-bit unsigned.
        let bad = [0x41, 0x06, 0x01, 0, 0, 0, 0, 0];
        let mut r = Reader::new(&bad);
        assert_eq!(
            r.read_unsigned(tag::COUNTER32),
            Err(BerError::UnsignedOverflow)
        );
        // Five octets with nonzero leading byte overflow too.
        let bad = [0x41, 0x05, 0x01, 0, 0, 0, 0];
        let mut r = Reader::new(&bad);
        assert_eq!(
            r.read_unsigned(tag::COUNTER32),
            Err(BerError::UnsignedOverflow)
        );
    }

    #[test]
    fn oid_wire_vector() {
        let enc = encode_oid(&oid("1.3.6.1.2.1")).unwrap();
        assert_eq!(enc, [0x06, 0x05, 0x2B, 0x06, 0x01, 0x02, 0x01]);
    }

    #[test]
    fn oid_multibyte_arcs() {
        // 1.3.6.1.4.1.311 — 311 needs two base-128 bytes (0x82 0x37).
        let enc = encode_oid(&oid("1.3.6.1.4.1.311")).unwrap();
        assert_eq!(enc, [0x06, 0x07, 0x2B, 0x06, 0x01, 0x04, 0x01, 0x82, 0x37]);
        let mut r = Reader::new(&enc);
        assert_eq!(r.read_oid().unwrap(), oid("1.3.6.1.4.1.311"));
    }

    #[test]
    fn oid_first_arc_two() {
        let o = oid("2.100.3");
        let enc = encode_oid(&o).unwrap();
        let mut r = Reader::new(&enc);
        assert_eq!(r.read_oid().unwrap(), o);
    }

    #[test]
    fn oid_max_arc_round_trip() {
        let o = Oid::new(vec![1, 3, u32::MAX]);
        let enc = encode_oid(&o).unwrap();
        let mut r = Reader::new(&enc);
        assert_eq!(r.read_oid().unwrap(), o);
    }

    #[test]
    fn oid_unencodable_rejected() {
        assert_eq!(encode_oid(&Oid::empty()), Err(BerError::UnencodableOid));
        assert_eq!(encode_oid(&Oid::from([1])), Err(BerError::UnencodableOid));
        assert_eq!(
            encode_oid(&Oid::from([1, 40])),
            Err(BerError::UnencodableOid)
        );
    }

    #[test]
    fn oid_truncated_continuation_rejected() {
        // Subidentifier with continuation bit set on the final byte.
        let bad = [0x06, 0x02, 0x2B, 0x86];
        let mut r = Reader::new(&bad);
        assert_eq!(r.read_oid(), Err(BerError::BadOid));
    }

    #[test]
    fn long_form_length_round_trip() {
        let content = vec![0xAB; 300];
        let mut enc = Vec::new();
        push_tlv(&mut enc, tag::OCTET_STRING, &content);
        // 300 > 255 requires two length octets: 0x82 0x01 0x2C.
        assert_eq!(&enc[..4], &[0x04, 0x82, 0x01, 0x2C]);
        let mut r = Reader::new(&enc);
        assert_eq!(r.read_octet_string().unwrap(), content);
    }

    #[test]
    fn indefinite_length_rejected() {
        let bad = [0x30, 0x80, 0x00, 0x00];
        let mut r = Reader::new(&bad);
        assert_eq!(r.read_element().err(), Some(BerError::IndefiniteLength));
    }

    #[test]
    fn truncated_content_rejected() {
        let bad = [0x04, 0x05, 0x61, 0x62]; // claims 5 bytes, has 2
        let mut r = Reader::new(&bad);
        assert_eq!(r.read_octet_string(), Err(BerError::Truncated));
    }

    #[test]
    fn trailing_bytes_detected() {
        let enc = [0x05, 0x00, 0xFF];
        let mut r = Reader::new(&enc);
        r.read_value().unwrap();
        assert_eq!(r.finish(), Err(BerError::TrailingBytes(1)));
    }

    #[test]
    fn value_round_trip_all_types() {
        let values = vec![
            SnmpValue::Integer(-42),
            SnmpValue::OctetString(b"hello".to_vec()),
            SnmpValue::Null,
            SnmpValue::Oid(oid("1.3.6.1.2.1.1.3.0")),
            SnmpValue::IpAddress([192, 168, 1, 1]),
            SnmpValue::Counter32(3_000_000_000),
            SnmpValue::Gauge32(100_000_000),
            SnmpValue::TimeTicks(8_640_000),
            SnmpValue::Opaque(vec![1, 2, 3]),
        ];
        for v in values {
            let enc = encode_value(&v).unwrap();
            let mut r = Reader::new(&enc);
            assert_eq!(r.read_value().unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn sequence_nesting() {
        let a = encode_integer(1);
        let b = encode_value(&SnmpValue::text("x")).unwrap();
        let seq = encode_sequence(&[&a, &b]);
        let mut r = Reader::new(&seq);
        let mut inner = r.expect_element(tag::SEQUENCE).unwrap();
        assert_eq!(inner.read_integer().unwrap(), 1);
        assert_eq!(inner.read_value().unwrap(), SnmpValue::text("x"));
        inner.finish().unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn unexpected_tag_reports_both() {
        let enc = encode_integer(1);
        let mut r = Reader::new(&enc);
        assert_eq!(
            r.expect_element(tag::SEQUENCE).err(),
            Some(BerError::UnexpectedTag {
                expected: 0x30,
                got: 0x02
            })
        );
    }

    #[test]
    fn ip_address_wrong_size_rejected() {
        let bad = [0x40, 0x03, 1, 2, 3];
        let mut r = Reader::new(&bad);
        assert_eq!(r.read_value(), Err(BerError::BadIpAddress));
    }

    #[test]
    fn unknown_tag_rejected() {
        let bad = [0x1F, 0x01, 0x00];
        let mut r = Reader::new(&bad);
        assert_eq!(r.read_value(), Err(BerError::UnknownTag(0x1F)));
    }
}
