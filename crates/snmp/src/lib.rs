//! # netqos-snmp
//!
//! A from-scratch SNMPv1 implementation (RFC 1157) with the MIB-II groups
//! (RFC 1213) needed for network bandwidth monitoring, built for the netqos
//! reproduction of *Monitoring Network QoS in a Dynamic Real-Time System*
//! (IPPS 2002).
//!
//! The crate is **sans-IO at its core**: every protocol operation works on
//! byte slices, so the same agent and manager code runs over real UDP
//! sockets ([`transport::UdpTransport`]), over an in-process loopback
//! ([`transport::LoopbackTransport`]), and over the simulated LAN of
//! `netqos-sim` (glue in `netqos-monitor`).
//!
//! ## Layers
//!
//! * [`ber`] — ASN.1 Basic Encoding Rules subset used by SNMP: definite
//!   lengths, INTEGER / OCTET STRING / NULL / OBJECT IDENTIFIER / SEQUENCE
//!   plus the SNMP application types (IpAddress, Counter32, Gauge32,
//!   TimeTicks, Opaque).
//! * [`oid`] — object identifiers with total ordering (drives `GetNext`).
//! * [`value`] — the SNMP value union.
//! * [`pdu`] / [`message`] — Get/GetNext/Set/Response and Trap PDUs inside
//!   the community-string message wrapper.
//! * [`mib`] — an OID-ordered store and the `MibView` lookup trait.
//! * [`mib2`] — the `system` and `interfaces` groups; includes the exact
//!   six objects of the paper's Table 1.
//! * [`agent`] / [`client`] — request handling and request building.
//! * [`transport`] — pluggable request/response transports with timeout
//!   and retry behaviour.
//!
//! ## Example: in-process agent
//!
//! ```
//! use netqos_snmp::agent::SnmpAgent;
//! use netqos_snmp::client;
//! use netqos_snmp::mib::ScalarMib;
//! use netqos_snmp::mib2::{self, SystemInfo};
//! use netqos_snmp::value::SnmpValue;
//!
//! let mut mib = ScalarMib::new();
//! mib2::system::install(&mut mib, &SystemInfo::new("demo host"), 12345);
//!
//! let mut agent = SnmpAgent::new("public");
//! let req = client::build_get("public", 1, &[mib2::system::sys_uptime_instance()]).unwrap();
//! let resp = agent.handle(&req, &mib).unwrap();
//! let parsed = client::parse_response(&resp).unwrap();
//! assert_eq!(parsed.request_id, 1);
//! assert_eq!(parsed.bindings[0].value, SnmpValue::TimeTicks(12345));
//! ```

pub mod agent;
pub mod ber;
pub mod client;
pub mod error;
pub mod message;
pub mod mib;
pub mod mib2;
pub mod oid;
pub mod pdu;
pub mod telemetry;
pub mod transport;
pub mod value;

pub use agent::SnmpAgent;
pub use error::SnmpError;
pub use message::{SnmpMessage, SnmpVersion};
pub use mib::{MibView, ScalarMib};
pub use oid::Oid;
pub use pdu::{ErrorStatus, Pdu, PduType, VarBind};
pub use value::SnmpValue;
