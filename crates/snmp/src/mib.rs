//! Management Information Base storage and lookup.
//!
//! An SNMP agent answers `Get` by exact lookup and `GetNext` by finding the
//! lexicographically next instance. [`MibView`] abstracts over those two
//! operations; [`ScalarMib`] is the standard implementation backed by a
//! `BTreeMap<Oid, SnmpValue>` whose key order *is* MIB order.

use crate::oid::Oid;
use crate::value::SnmpValue;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Read-only view of a MIB, sufficient to serve Get/GetNext.
pub trait MibView {
    /// Exact instance lookup.
    fn get(&self, oid: &Oid) -> Option<SnmpValue>;

    /// The first instance strictly after `oid` in MIB order, together with
    /// its value. `None` signals the end of the MIB.
    fn next_after(&self, oid: &Oid) -> Option<(Oid, SnmpValue)>;
}

/// A flat OID-to-value store.
#[derive(Debug, Clone, Default)]
pub struct ScalarMib {
    entries: BTreeMap<Oid, SnmpValue>,
}

impl ScalarMib {
    /// Creates an empty MIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces an instance.
    pub fn insert(&mut self, oid: Oid, value: SnmpValue) {
        self.entries.insert(oid, value);
    }

    /// Removes an instance.
    pub fn remove(&mut self, oid: &Oid) -> Option<SnmpValue> {
        self.entries.remove(oid)
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the MIB holds no instances.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates instances in MIB order.
    pub fn iter(&self) -> impl Iterator<Item = (&Oid, &SnmpValue)> {
        self.entries.iter()
    }

    /// All instances under a subtree prefix, in MIB order.
    pub fn subtree<'a>(
        &'a self,
        prefix: &'a Oid,
    ) -> impl Iterator<Item = (&'a Oid, &'a SnmpValue)> {
        self.entries
            .range::<Oid, _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(move |(k, _)| k.starts_with(prefix))
    }
}

impl MibView for ScalarMib {
    fn get(&self, oid: &Oid) -> Option<SnmpValue> {
        self.entries.get(oid).cloned()
    }

    fn next_after(&self, oid: &Oid) -> Option<(Oid, SnmpValue)> {
        self.entries
            .range::<Oid, _>((Bound::Excluded(oid), Bound::Unbounded))
            .next()
            .map(|(k, v)| (k.clone(), v.clone()))
    }
}

/// A [`MibView`] that overlays one view on another: lookups try `upper`
/// first, then `base`. Useful for composing the system group with a
/// dynamically regenerated interfaces table.
pub struct LayeredMib<'a> {
    /// Preferred layer.
    pub upper: &'a dyn MibView,
    /// Fallback layer.
    pub base: &'a dyn MibView,
}

impl MibView for LayeredMib<'_> {
    fn get(&self, oid: &Oid) -> Option<SnmpValue> {
        self.upper.get(oid).or_else(|| self.base.get(oid))
    }

    fn next_after(&self, oid: &Oid) -> Option<(Oid, SnmpValue)> {
        match (self.upper.next_after(oid), self.base.next_after(oid)) {
            (Some(a), Some(b)) => Some(if a.0 <= b.0 { a } else { b }),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(s: &str) -> Oid {
        s.parse().unwrap()
    }

    fn sample() -> ScalarMib {
        let mut m = ScalarMib::new();
        m.insert(oid("1.3.6.1.2.1.1.3.0"), SnmpValue::TimeTicks(100));
        m.insert(oid("1.3.6.1.2.1.2.1.0"), SnmpValue::Integer(2));
        m.insert(oid("1.3.6.1.2.1.2.2.1.10.1"), SnmpValue::Counter32(1111));
        m.insert(oid("1.3.6.1.2.1.2.2.1.10.2"), SnmpValue::Counter32(2222));
        m.insert(oid("1.3.6.1.2.1.2.2.1.16.1"), SnmpValue::Counter32(3333));
        m
    }

    #[test]
    fn get_exact() {
        let m = sample();
        assert_eq!(
            m.get(&oid("1.3.6.1.2.1.1.3.0")),
            Some(SnmpValue::TimeTicks(100))
        );
        assert_eq!(m.get(&oid("1.3.6.1.2.1.1.3")), None); // prefix ≠ instance
    }

    #[test]
    fn next_after_walks_in_order() {
        let m = sample();
        let mut cur = Oid::empty();
        let mut seen = Vec::new();
        while let Some((next, _)) = m.next_after(&cur) {
            seen.push(next.to_string());
            cur = next;
        }
        assert_eq!(
            seen,
            vec![
                "1.3.6.1.2.1.1.3.0",
                "1.3.6.1.2.1.2.1.0",
                "1.3.6.1.2.1.2.2.1.10.1",
                "1.3.6.1.2.1.2.2.1.10.2",
                "1.3.6.1.2.1.2.2.1.16.1",
            ]
        );
    }

    #[test]
    fn next_after_from_prefix_enters_subtree() {
        let m = sample();
        let (next, _) = m.next_after(&oid("1.3.6.1.2.1.2.2")).unwrap();
        assert_eq!(next, oid("1.3.6.1.2.1.2.2.1.10.1"));
    }

    #[test]
    fn next_after_end_of_mib() {
        let m = sample();
        assert_eq!(m.next_after(&oid("1.3.6.1.2.1.2.2.1.16.1")), None);
        assert_eq!(m.next_after(&oid("9.9")), None);
    }

    #[test]
    fn subtree_iteration() {
        let m = sample();
        let table = oid("1.3.6.1.2.1.2.2");
        let rows: Vec<_> = m.subtree(&table).map(|(k, _)| k.to_string()).collect();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.starts_with("1.3.6.1.2.1.2.2")));
    }

    #[test]
    fn layered_prefers_upper_and_merges_walks() {
        let mut base = ScalarMib::new();
        base.insert(oid("1.1"), SnmpValue::Integer(1));
        base.insert(oid("1.3"), SnmpValue::Integer(3));
        let mut upper = ScalarMib::new();
        upper.insert(oid("1.2"), SnmpValue::Integer(2));
        upper.insert(oid("1.3"), SnmpValue::Integer(30)); // shadows base
        let layered = LayeredMib {
            upper: &upper,
            base: &base,
        };
        assert_eq!(layered.get(&oid("1.3")), Some(SnmpValue::Integer(30)));
        assert_eq!(layered.get(&oid("1.1")), Some(SnmpValue::Integer(1)));
        let (n1, _) = layered.next_after(&oid("1.1")).unwrap();
        assert_eq!(n1, oid("1.2"));
        let (n2, v2) = layered.next_after(&oid("1.2")).unwrap();
        assert_eq!((n2, v2), (oid("1.3"), SnmpValue::Integer(30)));
    }
}
