//! Error types shared across the SNMP crate.

use crate::pdu::ErrorStatus;
use std::fmt;

/// Errors produced by BER encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BerError {
    /// Input ended before the announced length.
    Truncated,
    /// A length octet sequence is malformed or unreasonably large.
    BadLength,
    /// Indefinite lengths are forbidden in SNMP.
    IndefiniteLength,
    /// An INTEGER had zero or too many content octets.
    BadInteger,
    /// An unsigned 32-bit quantity overflowed.
    UnsignedOverflow,
    /// An OBJECT IDENTIFIER was malformed (empty, unterminated subid, or
    /// arc overflow).
    BadOid,
    /// An IpAddress did not contain exactly 4 octets.
    BadIpAddress,
    /// A different tag was expected.
    UnexpectedTag { expected: u8, got: u8 },
    /// An unknown/unsupported tag was found where a value was expected.
    UnknownTag(u8),
    /// Bytes remained after the outermost element.
    TrailingBytes(usize),
    /// Attempted to encode an OID with fewer than two arcs or invalid
    /// leading arcs.
    UnencodableOid,
}

impl fmt::Display for BerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BerError::Truncated => f.write_str("truncated BER input"),
            BerError::BadLength => f.write_str("malformed BER length"),
            BerError::IndefiniteLength => f.write_str("indefinite BER length not allowed in SNMP"),
            BerError::BadInteger => f.write_str("malformed BER integer"),
            BerError::UnsignedOverflow => f.write_str("unsigned value exceeds 32 bits"),
            BerError::BadOid => f.write_str("malformed BER object identifier"),
            BerError::BadIpAddress => f.write_str("IpAddress must be exactly 4 octets"),
            BerError::UnexpectedTag { expected, got } => {
                write!(f, "expected tag 0x{expected:02x}, got 0x{got:02x}")
            }
            BerError::UnknownTag(t) => write!(f, "unknown BER tag 0x{t:02x}"),
            BerError::TrailingBytes(n) => write!(f, "{n} trailing bytes after BER element"),
            BerError::UnencodableOid => f.write_str("OID cannot be BER-encoded"),
        }
    }
}

impl std::error::Error for BerError {}

/// Errors produced by the SNMP message/PDU layer and the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnmpError {
    /// BER-level failure.
    Ber(BerError),
    /// Unsupported protocol version field.
    UnsupportedVersion(i64),
    /// The PDU tag was not one recognized by SNMPv1.
    UnknownPduType(u8),
    /// A response carried an SNMP error-status.
    ErrorStatus {
        /// The error reported by the agent.
        status: ErrorStatus,
        /// 1-based index of the offending variable binding (0 if none).
        index: u32,
    },
    /// A response's request-id did not match the request.
    RequestIdMismatch { expected: i32, got: i32 },
    /// A response was expected but a non-response PDU arrived.
    NotAResponse,
    /// The transport gave up (timeout after retries, or I/O failure).
    Transport(String),
    /// A varbind was missing from a response that should contain it.
    MissingBinding(String),
    /// A varbind carried a different type than required.
    WrongType {
        /// What the caller needed.
        expected: &'static str,
        /// What the agent returned.
        got: &'static str,
    },
}

impl fmt::Display for SnmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnmpError::Ber(e) => write!(f, "BER error: {e}"),
            SnmpError::UnsupportedVersion(v) => write!(f, "unsupported SNMP version {v}"),
            SnmpError::UnknownPduType(t) => write!(f, "unknown PDU type 0x{t:02x}"),
            SnmpError::ErrorStatus { status, index } => {
                write!(f, "agent returned {status} at index {index}")
            }
            SnmpError::RequestIdMismatch { expected, got } => {
                write!(f, "request-id mismatch: expected {expected}, got {got}")
            }
            SnmpError::NotAResponse => f.write_str("received PDU is not a GetResponse"),
            SnmpError::Transport(msg) => write!(f, "transport failure: {msg}"),
            SnmpError::MissingBinding(oid) => write!(f, "response missing binding for {oid}"),
            SnmpError::WrongType { expected, got } => {
                write!(f, "wrong value type: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for SnmpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnmpError::Ber(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BerError> for SnmpError {
    fn from(e: BerError) -> Self {
        SnmpError::Ber(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert!(BerError::Truncated.to_string().contains("truncated"));
        assert!(BerError::UnexpectedTag {
            expected: 0x30,
            got: 0x02
        }
        .to_string()
        .contains("0x30"));
        let e = SnmpError::from(BerError::BadOid);
        assert!(e.to_string().contains("BER"));
        let e = SnmpError::ErrorStatus {
            status: ErrorStatus::NoSuchName,
            index: 2,
        };
        assert!(e.to_string().contains("index 2"));
    }

    #[test]
    fn source_chains_ber() {
        use std::error::Error;
        let e = SnmpError::from(BerError::Truncated);
        assert!(e.source().is_some());
        assert!(SnmpError::NotAResponse.source().is_none());
    }
}
