//! The MIB-II `interfaces` group (RFC 1213 §3.5): `ifNumber` and the
//! `ifTable` under 1.3.6.1.2.1.2.
//!
//! Instance OIDs have the form `1.3.6.1.2.1.2.2.1.<column>.<ifIndex>`;
//! `ifIndex` is 1-based.

use crate::mib::ScalarMib;
use crate::oid::Oid;
use crate::value::SnmpValue;

/// Column numbers of `ifEntry`.
pub mod column {
    /// ifIndex(1)
    pub const IF_INDEX: u32 = 1;
    /// ifDescr(2)
    pub const IF_DESCR: u32 = 2;
    /// ifType(3)
    pub const IF_TYPE: u32 = 3;
    /// ifMtu(4)
    pub const IF_MTU: u32 = 4;
    /// ifSpeed(5)
    pub const IF_SPEED: u32 = 5;
    /// ifPhysAddress(6)
    pub const IF_PHYS_ADDRESS: u32 = 6;
    /// ifAdminStatus(7)
    pub const IF_ADMIN_STATUS: u32 = 7;
    /// ifOperStatus(8)
    pub const IF_OPER_STATUS: u32 = 8;
    /// ifLastChange(9)
    pub const IF_LAST_CHANGE: u32 = 9;
    /// ifInOctets(10)
    pub const IF_IN_OCTETS: u32 = 10;
    /// ifInUcastPkts(11)
    pub const IF_IN_UCAST_PKTS: u32 = 11;
    /// ifInNUcastPkts(12)
    pub const IF_IN_NUCAST_PKTS: u32 = 12;
    /// ifInDiscards(13)
    pub const IF_IN_DISCARDS: u32 = 13;
    /// ifInErrors(14)
    pub const IF_IN_ERRORS: u32 = 14;
    /// ifInUnknownProtos(15)
    pub const IF_IN_UNKNOWN_PROTOS: u32 = 15;
    /// ifOutOctets(16)
    pub const IF_OUT_OCTETS: u32 = 16;
    /// ifOutUcastPkts(17)
    pub const IF_OUT_UCAST_PKTS: u32 = 17;
    /// ifOutNUcastPkts(18)
    pub const IF_OUT_NUCAST_PKTS: u32 = 18;
    /// ifOutDiscards(19)
    pub const IF_OUT_DISCARDS: u32 = 19;
    /// ifOutErrors(20)
    pub const IF_OUT_ERRORS: u32 = 20;
    /// ifOutQLen(21)
    pub const IF_OUT_QLEN: u32 = 21;
}

/// `interfaces.ifNumber.0`
pub fn if_number_instance() -> Oid {
    Oid::from([1, 3, 6, 1, 2, 1, 2, 1, 0])
}

/// `ifEntry` base: 1.3.6.1.2.1.2.2.1
pub fn if_entry_base() -> Oid {
    Oid::from([1, 3, 6, 1, 2, 1, 2, 2, 1])
}

/// Column OID without instance: `1.3.6.1.2.1.2.2.1.<col>`.
pub fn column_oid(col: u32) -> Oid {
    if_entry_base().child(col)
}

/// Full instance OID: `1.3.6.1.2.1.2.2.1.<col>.<ifIndex>`.
pub fn instance_oid(col: u32, if_index: u32) -> Oid {
    if_entry_base().extend(&[col, if_index])
}

/// Decodes an `ifTable` instance OID back into `(column, ifIndex)`.
pub fn parse_instance(oid: &Oid) -> Option<(u32, u32)> {
    let suffix = oid.suffix_of(&if_entry_base())?;
    match suffix {
        [col, ifindex] => Some((*col, *ifindex)),
        _ => None,
    }
}

/// `ifType` code for ethernet-csmacd, the only medium in the LAN model.
pub const IF_TYPE_ETHERNET: i64 = 6;

/// `ifAdminStatus` / `ifOperStatus` up(1).
pub const STATUS_UP: i64 = 1;

/// One interface's MIB-visible state — the agent-side mirror of a NIC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfEntry {
    /// 1-based interface index.
    pub if_index: u32,
    /// Textual name (`ifDescr`), e.g. `eth0`.
    pub descr: String,
    /// Interface type code (`ifType`); ethernet-csmacd(6) here.
    pub if_type: i64,
    /// MTU in octets.
    pub mtu: i64,
    /// Static bandwidth in bits/s (`ifSpeed`).
    pub speed_bps: u32,
    /// MAC address (`ifPhysAddress`).
    pub phys_address: [u8; 6],
    /// up(1) / down(2) administrative status.
    pub admin_status: i64,
    /// up(1) / down(2) operational status.
    pub oper_status: i64,
    /// Accumulated octets received (wraps at 2^32).
    pub in_octets: u32,
    /// Accumulated unicast packets delivered upward.
    pub in_ucast_pkts: u32,
    /// Accumulated non-unicast (broadcast/multicast) packets delivered.
    pub in_nucast_pkts: u32,
    /// Inbound discards (e.g. buffer exhaustion).
    pub in_discards: u32,
    /// Inbound errors.
    pub in_errors: u32,
    /// Accumulated octets transmitted (wraps at 2^32).
    pub out_octets: u32,
    /// Accumulated unicast packets requested to transmit.
    pub out_ucast_pkts: u32,
    /// Accumulated non-unicast packets requested to transmit.
    pub out_nucast_pkts: u32,
    /// Outbound discards (queue overflow).
    pub out_discards: u32,
    /// Outbound errors.
    pub out_errors: u32,
    /// Current output queue length.
    pub out_qlen: u32,
}

impl IfEntry {
    /// An up ethernet interface with zeroed counters.
    pub fn ethernet(if_index: u32, descr: &str, speed_bps: u32, phys_address: [u8; 6]) -> Self {
        IfEntry {
            if_index,
            descr: descr.to_owned(),
            if_type: IF_TYPE_ETHERNET,
            mtu: 1500,
            speed_bps,
            phys_address,
            admin_status: STATUS_UP,
            oper_status: STATUS_UP,
            in_octets: 0,
            in_ucast_pkts: 0,
            in_nucast_pkts: 0,
            in_discards: 0,
            in_errors: 0,
            out_octets: 0,
            out_ucast_pkts: 0,
            out_nucast_pkts: 0,
            out_discards: 0,
            out_errors: 0,
            out_qlen: 0,
        }
    }
}

/// Installs `ifNumber` and every `ifTable` column for the given entries.
pub fn install(mib: &mut ScalarMib, entries: &[IfEntry]) {
    mib.insert(
        if_number_instance(),
        SnmpValue::Integer(entries.len() as i64),
    );
    for e in entries {
        let i = e.if_index;
        use column::*;
        mib.insert(instance_oid(IF_INDEX, i), SnmpValue::Integer(i as i64));
        mib.insert(instance_oid(IF_DESCR, i), SnmpValue::text(&e.descr));
        mib.insert(instance_oid(IF_TYPE, i), SnmpValue::Integer(e.if_type));
        mib.insert(instance_oid(IF_MTU, i), SnmpValue::Integer(e.mtu));
        mib.insert(instance_oid(IF_SPEED, i), SnmpValue::Gauge32(e.speed_bps));
        mib.insert(
            instance_oid(IF_PHYS_ADDRESS, i),
            SnmpValue::OctetString(e.phys_address.to_vec()),
        );
        mib.insert(
            instance_oid(IF_ADMIN_STATUS, i),
            SnmpValue::Integer(e.admin_status),
        );
        mib.insert(
            instance_oid(IF_OPER_STATUS, i),
            SnmpValue::Integer(e.oper_status),
        );
        mib.insert(instance_oid(IF_LAST_CHANGE, i), SnmpValue::TimeTicks(0));
        mib.insert(
            instance_oid(IF_IN_OCTETS, i),
            SnmpValue::Counter32(e.in_octets),
        );
        mib.insert(
            instance_oid(IF_IN_UCAST_PKTS, i),
            SnmpValue::Counter32(e.in_ucast_pkts),
        );
        mib.insert(
            instance_oid(IF_IN_NUCAST_PKTS, i),
            SnmpValue::Counter32(e.in_nucast_pkts),
        );
        mib.insert(
            instance_oid(IF_IN_DISCARDS, i),
            SnmpValue::Counter32(e.in_discards),
        );
        mib.insert(
            instance_oid(IF_IN_ERRORS, i),
            SnmpValue::Counter32(e.in_errors),
        );
        mib.insert(
            instance_oid(IF_IN_UNKNOWN_PROTOS, i),
            SnmpValue::Counter32(0),
        );
        mib.insert(
            instance_oid(IF_OUT_OCTETS, i),
            SnmpValue::Counter32(e.out_octets),
        );
        mib.insert(
            instance_oid(IF_OUT_UCAST_PKTS, i),
            SnmpValue::Counter32(e.out_ucast_pkts),
        );
        mib.insert(
            instance_oid(IF_OUT_NUCAST_PKTS, i),
            SnmpValue::Counter32(e.out_nucast_pkts),
        );
        mib.insert(
            instance_oid(IF_OUT_DISCARDS, i),
            SnmpValue::Counter32(e.out_discards),
        );
        mib.insert(
            instance_oid(IF_OUT_ERRORS, i),
            SnmpValue::Counter32(e.out_errors),
        );
        mib.insert(instance_oid(IF_OUT_QLEN, i), SnmpValue::Gauge32(e.out_qlen));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mib::MibView;

    #[test]
    fn instance_oid_layout() {
        assert_eq!(
            instance_oid(column::IF_IN_OCTETS, 3).to_string(),
            "1.3.6.1.2.1.2.2.1.10.3"
        );
        assert_eq!(if_number_instance().to_string(), "1.3.6.1.2.1.2.1.0");
    }

    #[test]
    fn parse_instance_round_trip() {
        let oid = instance_oid(column::IF_SPEED, 7);
        assert_eq!(parse_instance(&oid), Some((column::IF_SPEED, 7)));
        assert_eq!(parse_instance(&column_oid(column::IF_SPEED)), None);
        assert_eq!(parse_instance(&if_number_instance()), None);
    }

    #[test]
    fn install_covers_all_columns() {
        let mut mib = ScalarMib::new();
        let e = IfEntry::ethernet(1, "eth0", 100_000_000, [2, 0, 0, 0, 0, 1]);
        install(&mut mib, &[e]);
        // ifNumber + 21 columns.
        assert_eq!(mib.len(), 22);
        assert_eq!(
            mib.get(&instance_oid(column::IF_SPEED, 1)),
            Some(SnmpValue::Gauge32(100_000_000))
        );
        assert_eq!(
            mib.get(&instance_oid(column::IF_DESCR, 1))
                .unwrap()
                .as_text(),
            Some("eth0")
        );
    }

    #[test]
    fn install_two_interfaces_walk_order_is_column_major() {
        let mut mib = ScalarMib::new();
        install(
            &mut mib,
            &[
                IfEntry::ethernet(1, "eth0", 10, [0; 6]),
                IfEntry::ethernet(2, "eth1", 20, [1; 6]),
            ],
        );
        // MIB order within the table: column, then ifIndex — the standard
        // SNMP walk order (all ifDescr before any ifType, etc.).
        let (next, _) = mib.next_after(&instance_oid(column::IF_INDEX, 2)).unwrap();
        assert_eq!(next, instance_oid(column::IF_DESCR, 1));
    }

    #[test]
    fn counters_reflect_struct_values() {
        let mut e = IfEntry::ethernet(2, "p2", 10_000_000, [0; 6]);
        e.in_octets = u32::MAX; // near wrap
        e.out_octets = 7;
        let mut mib = ScalarMib::new();
        install(&mut mib, &[e]);
        assert_eq!(
            mib.get(&instance_oid(column::IF_IN_OCTETS, 2)),
            Some(SnmpValue::Counter32(u32::MAX))
        );
        assert_eq!(
            mib.get(&instance_oid(column::IF_OUT_OCTETS, 2)),
            Some(SnmpValue::Counter32(7))
        );
    }
}
