//! The MIB-II `system` group (RFC 1213 §3.4): seven scalar objects under
//! 1.3.6.1.2.1.1.

use crate::mib::ScalarMib;
use crate::oid::Oid;
use crate::value::SnmpValue;

/// Arcs of `system.sysUpTime` (1.3.6.1.2.1.1.3), without the `.0` instance.
pub const SYS_UPTIME_ARCS: [u32; 8] = [1, 3, 6, 1, 2, 1, 1, 3];

fn scalar(leaf: u32) -> Oid {
    Oid::from([1, 3, 6, 1, 2, 1, 1, leaf, 0])
}

/// `sysDescr.0`
pub fn sys_descr_instance() -> Oid {
    scalar(1)
}

/// `sysObjectID.0`
pub fn sys_object_id_instance() -> Oid {
    scalar(2)
}

/// `sysUpTime.0` — the paper's polling-interval clock.
pub fn sys_uptime_instance() -> Oid {
    scalar(3)
}

/// `sysContact.0`
pub fn sys_contact_instance() -> Oid {
    scalar(4)
}

/// `sysName.0`
pub fn sys_name_instance() -> Oid {
    scalar(5)
}

/// `sysLocation.0`
pub fn sys_location_instance() -> Oid {
    scalar(6)
}

/// `sysServices.0`
pub fn sys_services_instance() -> Oid {
    scalar(7)
}

/// Static identity of a managed system; `sysUpTime` is supplied separately
/// at install time because it changes on every poll.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemInfo {
    /// `sysDescr`: textual description.
    pub descr: String,
    /// `sysObjectID`: vendor identification OID.
    pub object_id: Oid,
    /// `sysContact`.
    pub contact: String,
    /// `sysName`: administratively assigned node name.
    pub name: String,
    /// `sysLocation`.
    pub location: String,
    /// `sysServices`: layer-service bitmask (72 = application + end-to-end).
    pub services: i64,
}

impl SystemInfo {
    /// A reasonable default identity with the given name/description.
    pub fn new(name: &str) -> Self {
        SystemInfo {
            descr: format!("netqos managed node {name}"),
            object_id: Oid::from([1, 3, 6, 1, 4, 1, 99999, 1]),
            contact: "lirtss@netqos".to_owned(),
            name: name.to_owned(),
            location: "LIRTSS laboratory".to_owned(),
            services: 72,
        }
    }
}

/// Installs the system group into `mib` with the given uptime (TimeTicks,
/// hundredths of a second).
pub fn install(mib: &mut ScalarMib, info: &SystemInfo, uptime_ticks: u32) {
    mib.insert(sys_descr_instance(), SnmpValue::text(&info.descr));
    mib.insert(
        sys_object_id_instance(),
        SnmpValue::Oid(info.object_id.clone()),
    );
    mib.insert(sys_uptime_instance(), SnmpValue::TimeTicks(uptime_ticks));
    mib.insert(sys_contact_instance(), SnmpValue::text(&info.contact));
    mib.insert(sys_name_instance(), SnmpValue::text(&info.name));
    mib.insert(sys_location_instance(), SnmpValue::text(&info.location));
    mib.insert(sys_services_instance(), SnmpValue::Integer(info.services));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mib::MibView;

    #[test]
    fn install_populates_all_seven_scalars() {
        let mut mib = ScalarMib::new();
        install(&mut mib, &SystemInfo::new("S1"), 4242);
        assert_eq!(mib.len(), 7);
        assert_eq!(
            mib.get(&sys_uptime_instance()),
            Some(SnmpValue::TimeTicks(4242))
        );
        assert_eq!(mib.get(&sys_name_instance()).unwrap().as_text(), Some("S1"));
    }

    #[test]
    fn uptime_oid_matches_paper() {
        assert_eq!(sys_uptime_instance().to_string(), "1.3.6.1.2.1.1.3.0");
    }

    #[test]
    fn reinstall_updates_uptime_in_place() {
        let mut mib = ScalarMib::new();
        let info = SystemInfo::new("S1");
        install(&mut mib, &info, 1);
        install(&mut mib, &info, 2);
        assert_eq!(mib.len(), 7);
        assert_eq!(
            mib.get(&sys_uptime_instance()),
            Some(SnmpValue::TimeTicks(2))
        );
    }
}
