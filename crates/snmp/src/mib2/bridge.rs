//! The BRIDGE-MIB transparent-bridging group (RFC 1493): the forwarding
//! database (`dot1dTpFdbTable`, 1.3.6.1.2.1.17.4.3) plus
//! `dot1dBaseNumPorts`.
//!
//! Managed switches expose which MAC address was learned on which port;
//! the monitor's *hybrid topology verification* extension walks this
//! table and cross-checks it against the specification file's connection
//! list (the paper names "dynamic network topology discovery" as future
//! work and suggests "a hybrid approach may be a better solution").
//!
//! Table rows are indexed by the MAC address itself, one OID arc per
//! octet: `dot1dTpFdbPort` of `aa:bb:cc:dd:ee:ff` lives at
//! `1.3.6.1.2.1.17.4.3.1.2.170.187.204.221.238.255`.

use crate::mib::ScalarMib;
use crate::oid::Oid;
use crate::value::SnmpValue;

/// `dot1dBridge` base: 1.3.6.1.2.1.17
pub fn bridge_base() -> Oid {
    Oid::from([1, 3, 6, 1, 2, 1, 17])
}

/// `dot1dBaseNumPorts.0`
pub fn base_num_ports_instance() -> Oid {
    bridge_base().extend(&[1, 2, 0])
}

/// `dot1dTpFdbEntry` base: 1.3.6.1.2.1.17.4.3.1
pub fn fdb_entry_base() -> Oid {
    bridge_base().extend(&[4, 3, 1])
}

/// Column numbers of `dot1dTpFdbEntry`.
pub mod column {
    /// dot1dTpFdbAddress(1)
    pub const ADDRESS: u32 = 1;
    /// dot1dTpFdbPort(2)
    pub const PORT: u32 = 2;
    /// dot1dTpFdbStatus(3)
    pub const STATUS: u32 = 3;
}

/// `dot1dTpFdbStatus` learned(3).
pub const STATUS_LEARNED: i64 = 3;

/// One learned forwarding-database entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdbEntry {
    /// The learned MAC address.
    pub mac: [u8; 6],
    /// The bridge port (1-based, equals the port's ifIndex here).
    pub port: u32,
}

/// Instance OID for a column of the row indexed by `mac`.
pub fn instance_oid(col: u32, mac: [u8; 6]) -> Oid {
    let mut oid = fdb_entry_base().child(col);
    for b in mac {
        oid.push(b as u32);
    }
    oid
}

/// Decodes an FDB instance OID back into `(column, mac)`.
pub fn parse_instance(oid: &Oid) -> Option<(u32, [u8; 6])> {
    let suffix = oid.suffix_of(&fdb_entry_base())?;
    match suffix {
        [col, a, b, c, d, e, f] => {
            let octets = [*a, *b, *c, *d, *e, *f];
            if octets.iter().any(|&x| x > 255) {
                return None;
            }
            Some((
                *col,
                [
                    octets[0] as u8,
                    octets[1] as u8,
                    octets[2] as u8,
                    octets[3] as u8,
                    octets[4] as u8,
                    octets[5] as u8,
                ],
            ))
        }
        _ => None,
    }
}

/// Installs `dot1dBaseNumPorts` and the FDB table.
pub fn install(mib: &mut ScalarMib, num_ports: u32, entries: &[FdbEntry]) {
    mib.insert(
        base_num_ports_instance(),
        SnmpValue::Integer(num_ports as i64),
    );
    for e in entries {
        mib.insert(
            instance_oid(column::ADDRESS, e.mac),
            SnmpValue::OctetString(e.mac.to_vec()),
        );
        mib.insert(
            instance_oid(column::PORT, e.mac),
            SnmpValue::Integer(e.port as i64),
        );
        mib.insert(
            instance_oid(column::STATUS, e.mac),
            SnmpValue::Integer(STATUS_LEARNED),
        );
    }
}

/// Extracts FDB entries from a walk of the `dot1dTpFdbPort` column.
pub fn entries_from_port_walk(bindings: &[crate::pdu::VarBind]) -> Vec<FdbEntry> {
    bindings
        .iter()
        .filter_map(|vb| {
            let (col, mac) = parse_instance(&vb.oid)?;
            if col != column::PORT {
                return None;
            }
            let port = vb.value.as_u32()?;
            Some(FdbEntry { mac, port })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mib::MibView;
    use crate::pdu::VarBind;

    const MAC: [u8; 6] = [0x02, 0x00, 0x00, 0xAA, 0xBB, 0xCC];

    #[test]
    fn instance_oid_layout() {
        let oid = instance_oid(column::PORT, MAC);
        assert_eq!(oid.to_string(), "1.3.6.1.2.1.17.4.3.1.2.2.0.0.170.187.204");
    }

    #[test]
    fn parse_round_trip() {
        let oid = instance_oid(column::STATUS, MAC);
        assert_eq!(parse_instance(&oid), Some((column::STATUS, MAC)));
        assert_eq!(parse_instance(&fdb_entry_base()), None);
        // Arc > 255 in the MAC index is invalid.
        let bad = fdb_entry_base().extend(&[2, 300, 0, 0, 0, 0, 0]);
        assert_eq!(parse_instance(&bad), None);
    }

    #[test]
    fn install_and_lookup() {
        let mut mib = ScalarMib::new();
        install(
            &mut mib,
            8,
            &[
                FdbEntry { mac: MAC, port: 3 },
                FdbEntry {
                    mac: [2, 0, 0, 0, 0, 1],
                    port: 1,
                },
            ],
        );
        assert_eq!(
            mib.get(&base_num_ports_instance()),
            Some(SnmpValue::Integer(8))
        );
        assert_eq!(
            mib.get(&instance_oid(column::PORT, MAC)),
            Some(SnmpValue::Integer(3))
        );
        assert_eq!(
            mib.get(&instance_oid(column::STATUS, MAC)),
            Some(SnmpValue::Integer(STATUS_LEARNED))
        );
        // 1 scalar + 2 rows × 3 columns.
        assert_eq!(mib.len(), 7);
    }

    #[test]
    fn port_walk_extraction() {
        let bindings = vec![
            VarBind::new(instance_oid(column::PORT, MAC), SnmpValue::Integer(3)),
            VarBind::new(
                instance_oid(column::PORT, [2, 0, 0, 0, 0, 1]),
                SnmpValue::Integer(1),
            ),
            // Noise: an address column binding must be skipped.
            VarBind::new(
                instance_oid(column::ADDRESS, MAC),
                SnmpValue::OctetString(MAC.to_vec()),
            ),
        ];
        let entries = entries_from_port_walk(&bindings);
        assert_eq!(entries.len(), 2);
        assert!(entries.contains(&FdbEntry { mac: MAC, port: 3 }));
    }
}
