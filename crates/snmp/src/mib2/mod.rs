//! MIB-II (RFC 1213) — the `system` and `interfaces` groups.
//!
//! These are the only groups the paper's monitor needs: Table 1 of the
//! paper lists `sysUpTime` plus five `ifTable` columns. This module builds
//! agent-side MIB content from plain Rust structs and provides the OID
//! constants and instance helpers the manager side uses to poll.

pub mod bridge;
pub mod interfaces;
pub mod system;

pub use bridge::FdbEntry;
pub use interfaces::IfEntry;
pub use system::SystemInfo;

use crate::oid::Oid;

/// `iso.org.dod.internet.mgmt.mib-2` = 1.3.6.1.2.1
pub fn mib2_base() -> Oid {
    Oid::from([1, 3, 6, 1, 2, 1])
}

/// One row of the paper's Table 1: an object the monitor polls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Object name as printed in the paper.
    pub name: &'static str,
    /// Numeric OID (without instance suffix).
    pub oid: Oid,
    /// The paper's description.
    pub description: &'static str,
}

/// The six MIB-II objects of the paper's Table 1, in paper order.
///
/// The experiment harness prints this list to regenerate Table 1, and the
/// integration tests assert that the monitor polls exactly these objects.
pub fn paper_table1() -> Vec<Table1Row> {
    vec![
        Table1Row {
            name: "system.sysUpTime",
            oid: system::SYS_UPTIME_ARCS.into(),
            description: "The time (in hundredths of a second) since the network \
                          management portion of the system was last re-initialized.",
        },
        Table1Row {
            name: "interfaces.ifTable.ifEntry.ifSpeed",
            oid: interfaces::column_oid(interfaces::column::IF_SPEED),
            description: "An estimate of the interface's current bandwidth in bits per \
                          second (static bandwidth).",
        },
        Table1Row {
            name: "interfaces.ifTable.ifEntry.ifInOctets",
            oid: interfaces::column_oid(interfaces::column::IF_IN_OCTETS),
            description: "Accumulated number of octets received on the interface.",
        },
        Table1Row {
            name: "interfaces.ifTable.ifEntry.ifInUcastPkts",
            oid: interfaces::column_oid(interfaces::column::IF_IN_UCAST_PKTS),
            description: "Accumulated number of subnetwork-unicast packets delivered to \
                          a higher-layer protocol.",
        },
        Table1Row {
            name: "interfaces.ifTable.ifEntry.ifOutOctets",
            oid: interfaces::column_oid(interfaces::column::IF_OUT_OCTETS),
            description: "Accumulated number of octets transmitted out of the interface.",
        },
        Table1Row {
            name: "interfaces.ifTable.ifEntry.ifOutNUcastPkts",
            oid: interfaces::column_oid(interfaces::column::IF_OUT_NUCAST_PKTS),
            description: "The total number of packets that higher-level protocols \
                          requested to be transmitted to a subnetwork-unicast address.",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_oids() {
        let rows = paper_table1();
        assert_eq!(rows.len(), 6);
        let by_name: Vec<(&str, String)> =
            rows.iter().map(|r| (r.name, r.oid.to_string())).collect();
        // Numeric OIDs exactly as printed in the paper's Table 1.
        assert_eq!(by_name[0], ("system.sysUpTime", "1.3.6.1.2.1.1.3".into()));
        assert_eq!(
            by_name[1],
            (
                "interfaces.ifTable.ifEntry.ifSpeed",
                "1.3.6.1.2.1.2.2.1.5".into()
            )
        );
        assert_eq!(
            by_name[2],
            (
                "interfaces.ifTable.ifEntry.ifInOctets",
                "1.3.6.1.2.1.2.2.1.10".into()
            )
        );
        assert_eq!(
            by_name[3],
            (
                "interfaces.ifTable.ifEntry.ifInUcastPkts",
                "1.3.6.1.2.1.2.2.1.11".into()
            )
        );
        assert_eq!(
            by_name[4],
            (
                "interfaces.ifTable.ifEntry.ifOutOctets",
                "1.3.6.1.2.1.2.2.1.16".into()
            )
        );
        assert_eq!(
            by_name[5],
            (
                "interfaces.ifTable.ifEntry.ifOutNUcastPkts",
                "1.3.6.1.2.1.2.2.1.18".into()
            )
        );
    }
}
