//! The SNMPv1 message wrapper (RFC 1157 §4):
//!
//! ```text
//! Message ::= SEQUENCE {
//!     version   INTEGER { version-1(0) },
//!     community OCTET STRING,
//!     data      ANY   -- one of the PDUs
//! }
//! ```

use crate::ber::{self, tag, Reader};
use crate::error::{BerError, SnmpError};
use crate::pdu::{BulkPdu, Pdu, TrapPdu};

/// Protocol version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnmpVersion {
    /// SNMPv1 (wire value 0).
    V1,
    /// SNMPv2c (wire value 1) — community-based v2: adds GetBulk and the
    /// per-binding exception values.
    V2c,
}

impl SnmpVersion {
    /// Wire value of the version field.
    pub fn code(self) -> i64 {
        match self {
            SnmpVersion::V1 => 0,
            SnmpVersion::V2c => 1,
        }
    }

    /// Parses the wire value.
    pub fn from_code(code: i64) -> Result<Self, SnmpError> {
        match code {
            0 => Ok(SnmpVersion::V1),
            1 => Ok(SnmpVersion::V2c),
            other => Err(SnmpError::UnsupportedVersion(other)),
        }
    }
}

/// The PDU payload of a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageBody {
    /// A request or response PDU.
    Pdu(Pdu),
    /// A Trap-PDU.
    Trap(TrapPdu),
    /// A GetBulkRequest-PDU (SNMPv2c only).
    Bulk(BulkPdu),
}

/// A complete SNMPv1 message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnmpMessage {
    /// Protocol version (always V1 here).
    pub version: SnmpVersion,
    /// Community string (plaintext "authentication").
    pub community: Vec<u8>,
    /// The PDU.
    pub body: MessageBody,
}

impl SnmpMessage {
    /// Wraps a request/response PDU in a v1 message.
    pub fn v1(community: &str, pdu: Pdu) -> Self {
        SnmpMessage {
            version: SnmpVersion::V1,
            community: community.as_bytes().to_vec(),
            body: MessageBody::Pdu(pdu),
        }
    }

    /// Wraps a trap in a v1 message.
    pub fn v1_trap(community: &str, trap: TrapPdu) -> Self {
        SnmpMessage {
            version: SnmpVersion::V1,
            community: community.as_bytes().to_vec(),
            body: MessageBody::Trap(trap),
        }
    }

    /// Wraps a request/response PDU in a v2c message.
    pub fn v2c(community: &str, pdu: Pdu) -> Self {
        SnmpMessage {
            version: SnmpVersion::V2c,
            community: community.as_bytes().to_vec(),
            body: MessageBody::Pdu(pdu),
        }
    }

    /// Wraps a GetBulk request in a v2c message.
    pub fn v2c_bulk(community: &str, bulk: BulkPdu) -> Self {
        SnmpMessage {
            version: SnmpVersion::V2c,
            community: community.as_bytes().to_vec(),
            body: MessageBody::Bulk(bulk),
        }
    }

    /// The community string as text, if valid UTF-8.
    pub fn community_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.community).ok()
    }

    /// Serializes the message to wire bytes.
    pub fn encode(&self) -> Result<Vec<u8>, BerError> {
        let start = std::time::Instant::now();
        let version = ber::encode_integer(self.version.code());
        let mut community = Vec::with_capacity(self.community.len() + 4);
        ber::push_tlv(&mut community, tag::OCTET_STRING, &self.community);
        let pdu = match &self.body {
            MessageBody::Pdu(p) => p.encode()?,
            MessageBody::Trap(t) => t.encode()?,
            MessageBody::Bulk(b) => b.encode()?,
        };
        let wire = ber::encode_sequence(&[&version, &community, &pdu]);
        let codec = crate::telemetry::codec();
        codec.encodes.inc();
        codec.encoded_bytes.add(wire.len() as u64);
        codec.encode_ns.add(start.elapsed().as_nanos() as u64);
        Ok(wire)
    }

    /// Parses a message from wire bytes, rejecting trailing garbage.
    pub fn decode(data: &[u8]) -> Result<Self, SnmpError> {
        let start = std::time::Instant::now();
        let codec = crate::telemetry::codec();
        let result = Self::decode_inner(data);
        match &result {
            Ok(_) => {
                codec.decodes.inc();
                codec.decoded_bytes.add(data.len() as u64);
                codec.decode_ns.add(start.elapsed().as_nanos() as u64);
            }
            Err(_) => codec.decode_errors.inc(),
        }
        result
    }

    fn decode_inner(data: &[u8]) -> Result<Self, SnmpError> {
        let mut outer = Reader::new(data);
        let mut seq = outer
            .expect_element(tag::SEQUENCE)
            .map_err(SnmpError::from)?;
        let version = SnmpVersion::from_code(seq.read_integer()?)?;
        let community = seq.read_octet_string()?;
        let body = match seq.peek_tag().map_err(SnmpError::from)? {
            tag::TRAP => MessageBody::Trap(TrapPdu::decode(&mut seq)?),
            tag::GET_BULK_REQUEST => MessageBody::Bulk(BulkPdu::decode(&mut seq)?),
            _ => MessageBody::Pdu(Pdu::decode(&mut seq)?),
        };
        seq.finish().map_err(SnmpError::from)?;
        outer.finish().map_err(SnmpError::from)?;
        Ok(SnmpMessage {
            version,
            community,
            body,
        })
    }

    /// Convenience: the inner request/response PDU, if this is not a trap.
    pub fn pdu(&self) -> Option<&Pdu> {
        match &self.body {
            MessageBody::Pdu(p) => Some(p),
            MessageBody::Trap(_) | MessageBody::Bulk(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::Oid;
    use crate::pdu::{generic_trap, PduType, VarBind};
    use crate::value::SnmpValue;

    fn oid(s: &str) -> Oid {
        s.parse().unwrap()
    }

    #[test]
    fn message_round_trip() {
        let pdu = Pdu::request(PduType::GetRequest, 77, &[oid("1.3.6.1.2.1.1.3.0")]);
        let msg = SnmpMessage::v1("public", pdu);
        let enc = msg.encode().unwrap();
        let back = SnmpMessage::decode(&enc).unwrap();
        assert_eq!(back, msg);
        assert_eq!(back.community_str(), Some("public"));
    }

    #[test]
    fn known_wire_encoding() {
        // GetRequest sysUpTime.0 community "public", request-id 1 —
        // cross-checked against a net-snmp `snmpget -d` hex dump layout.
        let pdu = Pdu::request(PduType::GetRequest, 1, &[oid("1.3.6.1.2.1.1.3.0")]);
        let msg = SnmpMessage::v1("public", pdu);
        let enc = msg.encode().unwrap();
        let expected: Vec<u8> = vec![
            0x30, 0x26, // SEQUENCE, 38 bytes
            0x02, 0x01, 0x00, // version 0
            0x04, 0x06, b'p', b'u', b'b', b'l', b'i', b'c', // community
            0xA0, 0x19, // GetRequest, 25 bytes
            0x02, 0x01, 0x01, // request-id 1
            0x02, 0x01, 0x00, // error-status 0
            0x02, 0x01, 0x00, // error-index 0
            0x30, 0x0E, // varbind list, 14 bytes
            0x30, 0x0C, // varbind, 12 bytes
            0x06, 0x08, 0x2B, 0x06, 0x01, 0x02, 0x01, 0x01, 0x03, 0x00, // OID
            0x05, 0x00, // NULL
        ];
        assert_eq!(enc, expected);
    }

    #[test]
    fn trap_message_round_trip() {
        let trap = TrapPdu {
            enterprise: oid("1.3.6.1.4.1.9999"),
            agent_addr: [10, 1, 2, 3],
            generic_trap: generic_trap::LINK_DOWN,
            specific_trap: 0,
            time_stamp: 1000,
            bindings: vec![VarBind::new(
                oid("1.3.6.1.2.1.2.2.1.1.3"),
                SnmpValue::Integer(3),
            )],
        };
        let msg = SnmpMessage::v1_trap("traps", trap);
        let enc = msg.encode().unwrap();
        let back = SnmpMessage::decode(&enc).unwrap();
        assert_eq!(back, msg);
        assert!(back.pdu().is_none());
    }

    #[test]
    fn unknown_version_rejected_v2c_accepted() {
        let build = |code: i64| {
            let version = ber::encode_integer(code);
            let mut community = Vec::new();
            ber::push_tlv(&mut community, tag::OCTET_STRING, b"public");
            let pdu = Pdu::request(PduType::GetRequest, 1, &[]).encode().unwrap();
            ber::encode_sequence(&[&version, &community, &pdu])
        };
        // SNMPv3 (and garbage) rejected; v2c accepted.
        assert_eq!(
            SnmpMessage::decode(&build(3)),
            Err(SnmpError::UnsupportedVersion(3))
        );
        let v2 = SnmpMessage::decode(&build(1)).unwrap();
        assert_eq!(v2.version, SnmpVersion::V2c);
    }

    #[test]
    fn v2c_bulk_round_trip() {
        let bulk = BulkPdu {
            request_id: 9,
            non_repeaters: 1,
            max_repetitions: 10,
            bindings: vec![
                VarBind::null(oid("1.3.6.1.2.1.1.3.0")),
                VarBind::null(oid("1.3.6.1.2.1.2.2")),
            ],
        };
        let msg = SnmpMessage::v2c_bulk("public", bulk);
        let enc = msg.encode().unwrap();
        let back = SnmpMessage::decode(&enc).unwrap();
        assert_eq!(back, msg);
        assert!(back.pdu().is_none());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let pdu = Pdu::request(PduType::GetRequest, 1, &[]);
        let mut enc = SnmpMessage::v1("public", pdu).encode().unwrap();
        enc.push(0x00);
        assert!(SnmpMessage::decode(&enc).is_err());
    }

    #[test]
    fn binary_community_allowed() {
        let pdu = Pdu::request(PduType::GetRequest, 1, &[]);
        let mut msg = SnmpMessage::v1("x", pdu);
        msg.community = vec![0xff, 0x00, 0x7f];
        let enc = msg.encode().unwrap();
        let back = SnmpMessage::decode(&enc).unwrap();
        assert_eq!(back.community, vec![0xff, 0x00, 0x7f]);
        assert_eq!(back.community_str(), None);
    }
}
