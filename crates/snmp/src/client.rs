//! The manager (client) side: request building, response parsing, and a
//! synchronous convenience client over any [`Transport`].
//!
//! The request builders and [`parse_response`] are sans-IO so the monitor
//! can drive them from the event-driven simulator; [`SnmpClient`] wraps
//! them with request-id bookkeeping and retries for blocking transports
//! (UDP and loopback).

use crate::error::SnmpError;
use crate::message::SnmpMessage;
use crate::oid::Oid;
use crate::pdu::{ErrorStatus, Pdu, PduType, VarBind};
use crate::telemetry::ClientTelemetry;
use crate::transport::Transport;
use crate::value::SnmpValue;
use netqos_telemetry::Tracer;
use std::time::Instant;

/// Builds an encoded `GetRequest` message.
pub fn build_get(community: &str, request_id: i32, oids: &[Oid]) -> Result<Vec<u8>, SnmpError> {
    let pdu = Pdu::request(PduType::GetRequest, request_id, oids);
    Ok(SnmpMessage::v1(community, pdu).encode()?)
}

/// Builds an encoded `GetNextRequest` message.
pub fn build_get_next(
    community: &str,
    request_id: i32,
    oids: &[Oid],
) -> Result<Vec<u8>, SnmpError> {
    let pdu = Pdu::request(PduType::GetNextRequest, request_id, oids);
    Ok(SnmpMessage::v1(community, pdu).encode()?)
}

/// Builds an encoded SNMPv2c `GetBulkRequest` message.
pub fn build_get_bulk(
    community: &str,
    request_id: i32,
    non_repeaters: u32,
    max_repetitions: u32,
    oids: &[Oid],
) -> Result<Vec<u8>, SnmpError> {
    let bulk = crate::pdu::BulkPdu::request(request_id, non_repeaters, max_repetitions, oids);
    Ok(SnmpMessage::v2c_bulk(community, bulk).encode()?)
}

/// A parsed agent response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Echoed request id.
    pub request_id: i32,
    /// Agent-reported status.
    pub error_status: ErrorStatus,
    /// 1-based failing binding index (0 when none).
    pub error_index: u32,
    /// Response bindings.
    pub bindings: Vec<VarBind>,
}

impl Response {
    /// Returns the bindings if the response succeeded, else the agent's
    /// error as [`SnmpError::ErrorStatus`].
    pub fn into_result(self) -> Result<Vec<VarBind>, SnmpError> {
        if self.error_status.is_ok() {
            Ok(self.bindings)
        } else {
            Err(SnmpError::ErrorStatus {
                status: self.error_status,
                index: self.error_index,
            })
        }
    }

    /// The value bound to `oid`, if present.
    pub fn value_of(&self, oid: &Oid) -> Option<&SnmpValue> {
        self.bindings
            .iter()
            .find(|vb| &vb.oid == oid)
            .map(|vb| &vb.value)
    }
}

/// Parses an encoded `GetResponse`.
pub fn parse_response(bytes: &[u8]) -> Result<Response, SnmpError> {
    let msg = SnmpMessage::decode(bytes)?;
    let pdu = msg.pdu().ok_or(SnmpError::NotAResponse)?;
    if pdu.pdu_type != PduType::GetResponse {
        return Err(SnmpError::NotAResponse);
    }
    Ok(Response {
        request_id: pdu.request_id,
        error_status: pdu.error_status,
        error_index: pdu.error_index,
        bindings: pdu.bindings.clone(),
    })
}

/// A synchronous SNMP manager bound to one agent.
pub struct SnmpClient<T: Transport> {
    transport: T,
    community: String,
    next_id: i32,
    /// How many stale (wrong request-id) responses to skip per request
    /// before giving up.
    stale_tolerance: u32,
    telemetry: ClientTelemetry,
    tracer: Tracer,
}

impl<T: Transport> SnmpClient<T> {
    /// Creates a client using the given transport and community string.
    pub fn new(transport: T, community: &str) -> Self {
        SnmpClient {
            transport,
            community: community.to_owned(),
            next_id: 1,
            stale_tolerance: 4,
            telemetry: ClientTelemetry::global(),
            tracer: Tracer::disabled(),
        }
    }

    /// Routes this client's metrics to `telemetry` instead of the
    /// process-wide registry (used by services with their own registry).
    pub fn set_telemetry(&mut self, telemetry: ClientTelemetry) {
        self.telemetry = telemetry;
    }

    /// Routes this client's causal spans into `tracer` (disabled by
    /// default, which costs one atomic load per request).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Access to the underlying transport (e.g. to adjust timeouts).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    fn fresh_id(&mut self) -> i32 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        id
    }

    fn exchange_checked(&mut self, request: &[u8], id: i32) -> Result<Response, SnmpError> {
        self.telemetry.requests.inc();
        self.telemetry.bytes_sent.add(request.len() as u64);
        let start = Instant::now();
        let mut stale = 0;
        let result = loop {
            let bytes = match self.transport.exchange(request) {
                Ok(b) => b,
                Err(e) => break Err(e),
            };
            self.telemetry.bytes_received.add(bytes.len() as u64);
            let resp = match parse_response(&bytes) {
                Ok(r) => r,
                Err(e) => break Err(e),
            };
            if resp.request_id == id {
                break Ok(resp);
            }
            // A late retransmission answer from an earlier request: skip a
            // bounded number of them.
            self.telemetry.stale_responses.inc();
            stale += 1;
            if stale > self.stale_tolerance {
                break Err(SnmpError::RequestIdMismatch {
                    expected: id,
                    got: resp.request_id,
                });
            }
        };
        match &result {
            Ok(_) => {
                self.telemetry.responses.inc();
                self.telemetry.rtt_ns.record_duration(start.elapsed());
            }
            Err(_) => self.telemetry.errors.inc(),
        }
        result
    }

    /// `GetRequest` for several objects; returns the bound values in
    /// request order.
    pub fn get_many(&mut self, oids: &[Oid]) -> Result<Vec<VarBind>, SnmpError> {
        let id = self.fresh_id();
        let req = {
            let mut span = self.tracer.span("snmp.codec", "encode");
            let req = build_get(&self.community, id, oids)?;
            span.set_attr("bytes", req.len());
            span.set_attr("oids", oids.len());
            req
        };
        let resp = {
            let _span = self.tracer.span("snmp.client", "exchange");
            self.exchange_checked(&req, id)?
        };
        let mut span = self.tracer.span("snmp.codec", "decode");
        let bindings = resp.into_result()?;
        span.set_attr("bindings", bindings.len());
        Ok(bindings)
    }

    /// `GetRequest` for one object.
    pub fn get_one(&mut self, oid: &Oid) -> Result<SnmpValue, SnmpError> {
        let mut vbs = self.get_many(std::slice::from_ref(oid))?;
        if vbs.is_empty() {
            return Err(SnmpError::MissingBinding(oid.to_string()));
        }
        Ok(vbs.swap_remove(0).value)
    }

    /// One `GetNextRequest` step.
    pub fn get_next(&mut self, oids: &[Oid]) -> Result<Vec<VarBind>, SnmpError> {
        let id = self.fresh_id();
        let req = build_get_next(&self.community, id, oids)?;
        self.exchange_checked(&req, id)?.into_result()
    }

    /// Walks a subtree with SNMPv2c `GetBulkRequest`s (`max_repetitions`
    /// successors per round trip), returning all instances under `prefix`
    /// in MIB order. Dramatically fewer messages than [`SnmpClient::walk`]
    /// on large tables — see the `ablation` bench.
    pub fn bulk_walk(
        &mut self,
        prefix: &Oid,
        max_repetitions: u32,
    ) -> Result<Vec<VarBind>, SnmpError> {
        let mut out = Vec::new();
        let mut cur = prefix.clone();
        'outer: loop {
            let id = self.fresh_id();
            let req = build_get_bulk(
                &self.community,
                id,
                0,
                max_repetitions.max(1),
                &[cur.clone()],
            )?;
            let resp = self.exchange_checked(&req, id)?;
            let bindings = resp.into_result()?;
            if bindings.is_empty() {
                break;
            }
            for vb in bindings {
                if vb.value == crate::value::SnmpValue::EndOfMibView || !vb.oid.starts_with(prefix)
                {
                    break 'outer;
                }
                if vb.oid == cur {
                    break 'outer; // defensive against broken agents
                }
                cur = vb.oid.clone();
                out.push(vb);
            }
        }
        Ok(out)
    }

    /// Walks an entire subtree with repeated `GetNextRequest`s, returning
    /// all instances under `prefix` in MIB order.
    pub fn walk(&mut self, prefix: &Oid) -> Result<Vec<VarBind>, SnmpError> {
        let mut out = Vec::new();
        let mut cur = prefix.clone();
        loop {
            let step = match self.get_next(std::slice::from_ref(&cur)) {
                Ok(vbs) => vbs,
                // End of MIB within v1 is signalled by noSuchName.
                Err(SnmpError::ErrorStatus {
                    status: ErrorStatus::NoSuchName,
                    ..
                }) => break,
                Err(e) => return Err(e),
            };
            let Some(vb) = step.into_iter().next() else {
                break;
            };
            if !vb.oid.starts_with(prefix) {
                break; // walked past the subtree
            }
            if vb.oid == cur {
                break; // defensive: a broken agent echoing the same OID
            }
            cur = vb.oid.clone();
            out.push(vb);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::SnmpAgent;
    use crate::mib::ScalarMib;
    use crate::mib2::{self, interfaces::IfEntry, SystemInfo};
    use crate::transport::LoopbackTransport;

    fn demo_mib() -> ScalarMib {
        let mut mib = ScalarMib::new();
        mib2::system::install(&mut mib, &SystemInfo::new("L"), 777);
        mib2::interfaces::install(
            &mut mib,
            &[
                IfEntry::ethernet(1, "eth0", 100_000_000, [2, 0, 0, 0, 0, 1]),
                IfEntry::ethernet(2, "eth1", 10_000_000, [2, 0, 0, 0, 0, 2]),
            ],
        );
        mib
    }

    fn client() -> SnmpClient<LoopbackTransport> {
        let t = LoopbackTransport::new(SnmpAgent::new("public"), demo_mib());
        SnmpClient::new(t, "public")
    }

    #[test]
    fn get_one_uptime() {
        let mut c = client();
        let v = c.get_one(&mib2::system::sys_uptime_instance()).unwrap();
        assert_eq!(v, SnmpValue::TimeTicks(777));
    }

    #[test]
    fn get_many_order_preserved() {
        let mut c = client();
        let oids = vec![
            mib2::interfaces::instance_oid(mib2::interfaces::column::IF_SPEED, 2),
            mib2::system::sys_uptime_instance(),
        ];
        let vbs = c.get_many(&oids).unwrap();
        assert_eq!(vbs[0].value, SnmpValue::Gauge32(10_000_000));
        assert_eq!(vbs[1].value, SnmpValue::TimeTicks(777));
    }

    #[test]
    fn get_missing_maps_to_error_status() {
        let mut c = client();
        let err = c.get_one(&"1.3.9.9".parse().unwrap()).unwrap_err();
        assert!(matches!(
            err,
            SnmpError::ErrorStatus {
                status: ErrorStatus::NoSuchName,
                index: 1
            }
        ));
    }

    #[test]
    fn walk_iftable_octets_column() {
        let mut c = client();
        let col = mib2::interfaces::column_oid(mib2::interfaces::column::IF_IN_OCTETS);
        let vbs = c.walk(&col).unwrap();
        assert_eq!(vbs.len(), 2);
        assert_eq!(
            vbs[0].oid,
            mib2::interfaces::instance_oid(mib2::interfaces::column::IF_IN_OCTETS, 1)
        );
        assert_eq!(
            vbs[1].oid,
            mib2::interfaces::instance_oid(mib2::interfaces::column::IF_IN_OCTETS, 2)
        );
    }

    #[test]
    fn walk_whole_mib() {
        let mut c = client();
        let vbs = c.walk(&Oid::from([1, 3])).unwrap();
        // 7 system + ifNumber + 2 * 21 table cells.
        assert_eq!(vbs.len(), 7 + 1 + 42);
    }

    #[test]
    fn bulk_walk_matches_getnext_walk() {
        let mut c = client();
        let prefix: Oid = "1.3.6.1.2.1.2".parse().unwrap();
        let via_next = c.walk(&prefix).unwrap();
        let mut c = client();
        for reps in [1u32, 5, 10, 100] {
            let via_bulk = c.bulk_walk(&prefix, reps).unwrap();
            assert_eq!(via_bulk, via_next, "max_repetitions={reps}");
        }
    }

    #[test]
    fn bulk_walk_empty_subtree() {
        let mut c = client();
        let vbs = c.bulk_walk(&"1.3.6.1.2.1.99".parse().unwrap(), 10).unwrap();
        assert!(vbs.is_empty());
    }

    #[test]
    fn wrong_community_times_out() {
        let t = LoopbackTransport::new(SnmpAgent::new("secret"), demo_mib());
        let mut c = SnmpClient::new(t, "public");
        let err = c.get_one(&mib2::system::sys_uptime_instance()).unwrap_err();
        assert!(matches!(err, SnmpError::Transport(_)), "{err:?}");
    }

    #[test]
    fn response_value_lookup() {
        let r = Response {
            request_id: 1,
            error_status: ErrorStatus::NoError,
            error_index: 0,
            bindings: vec![VarBind::new(
                mib2::system::sys_uptime_instance(),
                SnmpValue::TimeTicks(5),
            )],
        };
        assert_eq!(
            r.value_of(&mib2::system::sys_uptime_instance()),
            Some(&SnmpValue::TimeTicks(5))
        );
        assert_eq!(r.value_of(&Oid::from([1, 2])), None);
    }

    #[test]
    fn request_ids_increment_and_skip_zero() {
        let mut c = client();
        c.next_id = i32::MAX;
        // Must not panic and must keep ids positive.
        let _ = c.get_one(&mib2::system::sys_uptime_instance()).unwrap();
        let _ = c.get_one(&mib2::system::sys_uptime_instance()).unwrap();
        assert!(c.next_id >= 1);
    }
}
