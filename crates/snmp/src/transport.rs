//! Request/response transports for the synchronous manager.
//!
//! * [`LoopbackTransport`] — an in-process agent; zero configuration, used
//!   by tests and by single-host deployments.
//! * [`UdpTransport`] — real sockets on port 161 (or any port), with
//!   timeout and retry; used by the threaded "distributed monitoring"
//!   runtime.
//!
//! The event-driven simulator transport lives in `netqos-monitor` (it needs
//! the simulator types); it bypasses this trait entirely because the sim is
//! not blocking.

use crate::agent::SnmpAgent;
use crate::error::SnmpError;
use crate::mib::{MibView, ScalarMib};
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::Duration;

/// A blocking request/response exchange with one agent.
pub trait Transport {
    /// Sends `request` and returns the next response datagram.
    fn exchange(&mut self, request: &[u8]) -> Result<Vec<u8>, SnmpError>;
}

/// In-process transport: requests are handled immediately by an owned
/// agent over an owned MIB.
pub struct LoopbackTransport {
    agent: SnmpAgent,
    mib: ScalarMib,
}

impl LoopbackTransport {
    /// Creates a loopback transport.
    pub fn new(agent: SnmpAgent, mib: ScalarMib) -> Self {
        LoopbackTransport { agent, mib }
    }

    /// Mutable access to the MIB, so tests can change counters between
    /// polls.
    pub fn mib_mut(&mut self) -> &mut ScalarMib {
        &mut self.mib
    }

    /// The agent's statistics.
    pub fn agent_stats(&self) -> crate::agent::AgentStats {
        self.agent.stats()
    }
}

impl Transport for LoopbackTransport {
    fn exchange(&mut self, request: &[u8]) -> Result<Vec<u8>, SnmpError> {
        self.agent
            .handle(request, &self.mib)
            .ok_or_else(|| SnmpError::Transport("agent dropped the request".to_owned()))
    }
}

/// A closure-backed transport for fault-injection tests: the handler may
/// drop (return `None`), delay, corrupt, or duplicate responses.
pub struct FnTransport<F>(pub F);

impl<F> Transport for FnTransport<F>
where
    F: FnMut(&[u8]) -> Option<Vec<u8>>,
{
    fn exchange(&mut self, request: &[u8]) -> Result<Vec<u8>, SnmpError> {
        (self.0)(request).ok_or_else(|| SnmpError::Transport("handler dropped request".to_owned()))
    }
}

/// UDP transport with timeout and retransmission.
pub struct UdpTransport {
    socket: UdpSocket,
    peer: SocketAddr,
    timeout: Duration,
    retries: u32,
    telemetry: crate::telemetry::TransportTelemetry,
}

impl UdpTransport {
    /// Connects a fresh ephemeral socket to `peer` (e.g.
    /// `"127.0.0.1:10161"`). Default timeout 1 s, 2 retransmissions.
    pub fn connect(peer: impl ToSocketAddrs) -> Result<Self, SnmpError> {
        let peer = peer
            .to_socket_addrs()
            .map_err(|e| SnmpError::Transport(e.to_string()))?
            .next()
            .ok_or_else(|| SnmpError::Transport("peer address resolved to nothing".into()))?;
        let bind_addr = if peer.is_ipv4() {
            "0.0.0.0:0"
        } else {
            "[::]:0"
        };
        let socket = UdpSocket::bind(bind_addr).map_err(|e| SnmpError::Transport(e.to_string()))?;
        socket
            .connect(peer)
            .map_err(|e| SnmpError::Transport(e.to_string()))?;
        Ok(UdpTransport {
            socket,
            peer,
            timeout: Duration::from_secs(1),
            retries: 2,
            telemetry: crate::telemetry::TransportTelemetry::global(),
        })
    }

    /// Routes this transport's metrics to `telemetry` instead of the
    /// process-wide registry.
    pub fn set_telemetry(&mut self, telemetry: crate::telemetry::TransportTelemetry) {
        self.telemetry = telemetry;
    }

    /// Sets the per-attempt receive timeout.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Sets how many times a request is retransmitted after a timeout.
    pub fn set_retries(&mut self, retries: u32) {
        self.retries = retries;
    }

    /// The agent address this transport talks to.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }
}

impl Transport for UdpTransport {
    fn exchange(&mut self, request: &[u8]) -> Result<Vec<u8>, SnmpError> {
        self.socket
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| SnmpError::Transport(e.to_string()))?;
        let mut buf = vec![0u8; 65_535];
        let mut last_err = String::from("no attempt made");
        for attempt in 0..=self.retries {
            if attempt > 0 {
                self.telemetry.retransmits.inc();
            }
            self.socket
                .send(request)
                .map_err(|e| SnmpError::Transport(e.to_string()))?;
            match self.socket.recv(&mut buf) {
                Ok(n) => return Ok(buf[..n].to_vec()),
                Err(e) => {
                    self.telemetry.timeouts.inc();
                    last_err = e.to_string();
                }
            }
        }
        self.telemetry.exchange_failures.inc();
        Err(SnmpError::Transport(format!(
            "no response from {} after {} attempts: {last_err}",
            self.peer,
            self.retries + 1
        )))
    }
}

/// A minimal blocking UDP agent server: binds a socket and answers
/// requests against MIB snapshots produced by `view_fn`. Runs until the
/// returned [`UdpAgentHandle`] is stopped.
///
/// This is the building block of the "distributed network monitoring"
/// extension: each managed host runs one of these.
pub struct UdpAgentServer;

/// Handle controlling a background [`UdpAgentServer`].
pub struct UdpAgentHandle {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    local_addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl UdpAgentHandle {
    /// The bound address of the agent socket.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the server and joins its thread.
    pub fn stop(mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for UdpAgentHandle {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl UdpAgentServer {
    /// Spawns an agent thread bound to `addr` (use port 0 for ephemeral).
    /// `view_fn` is called per request to produce the current MIB.
    pub fn spawn<F>(
        addr: impl ToSocketAddrs,
        community: &str,
        mut view_fn: F,
    ) -> Result<UdpAgentHandle, SnmpError>
    where
        F: FnMut() -> ScalarMib + Send + 'static,
    {
        let socket = UdpSocket::bind(addr).map_err(|e| SnmpError::Transport(e.to_string()))?;
        let local_addr = socket
            .local_addr()
            .map_err(|e| SnmpError::Transport(e.to_string()))?;
        socket
            .set_read_timeout(Some(Duration::from_millis(50)))
            .map_err(|e| SnmpError::Transport(e.to_string()))?;
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = stop.clone();
        let mut agent = SnmpAgent::new(community);
        let thread = std::thread::spawn(move || {
            let mut buf = vec![0u8; 65_535];
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                match socket.recv_from(&mut buf) {
                    Ok((n, from)) => {
                        let view = view_fn();
                        if let Some(resp) = agent.handle(&buf[..n], &view) {
                            let _ = socket.send_to(&resp, from);
                        }
                    }
                    Err(_) => continue, // timeout tick: check stop flag
                }
            }
        });
        Ok(UdpAgentHandle {
            stop,
            local_addr,
            thread: Some(thread),
        })
    }
}

/// Convenience: a transport whose view of the MIB is refreshed by the
/// caller; used by deployments embedding both manager and agent.
pub struct SharedMibTransport {
    agent: SnmpAgent,
    mib: std::sync::Arc<std::sync::Mutex<ScalarMib>>,
}

impl SharedMibTransport {
    /// Creates a transport over a shared MIB.
    pub fn new(community: &str, mib: std::sync::Arc<std::sync::Mutex<ScalarMib>>) -> Self {
        SharedMibTransport {
            agent: SnmpAgent::new(community),
            mib,
        }
    }
}

impl Transport for SharedMibTransport {
    fn exchange(&mut self, request: &[u8]) -> Result<Vec<u8>, SnmpError> {
        let mib = self
            .mib
            .lock()
            .map_err(|_| SnmpError::Transport("poisoned MIB lock".into()))?;
        self.agent
            .handle(request, &*mib as &dyn MibView)
            .ok_or_else(|| SnmpError::Transport("agent dropped the request".to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SnmpClient;
    use crate::mib2::{self, SystemInfo};

    fn mib_with_uptime(ticks: u32) -> ScalarMib {
        let mut mib = ScalarMib::new();
        mib2::system::install(&mut mib, &SystemInfo::new("udp-test"), ticks);
        mib
    }

    #[test]
    fn udp_end_to_end() {
        let server = UdpAgentServer::spawn("127.0.0.1:0", "public", || mib_with_uptime(31337))
            .expect("spawn agent");
        let t = UdpTransport::connect(server.local_addr()).unwrap();
        let mut client = SnmpClient::new(t, "public");
        let v = client
            .get_one(&mib2::system::sys_uptime_instance())
            .unwrap();
        assert_eq!(v, crate::value::SnmpValue::TimeTicks(31337));
        server.stop();
    }

    #[test]
    fn udp_timeout_and_retry_reported() {
        // Nothing listening here.
        let mut t = UdpTransport::connect("127.0.0.1:1").unwrap();
        t.set_timeout(Duration::from_millis(30));
        t.set_retries(1);
        let mut client = SnmpClient::new(t, "public");
        let err = client
            .get_one(&mib2::system::sys_uptime_instance())
            .unwrap_err();
        match err {
            SnmpError::Transport(msg) => assert!(msg.contains("2 attempts"), "{msg}"),
            other => panic!("expected transport error, got {other:?}"),
        }
    }

    #[test]
    fn udp_wrong_community_gets_no_answer() {
        let server = UdpAgentServer::spawn("127.0.0.1:0", "secret", || mib_with_uptime(1))
            .expect("spawn agent");
        let mut t = UdpTransport::connect(server.local_addr()).unwrap();
        t.set_timeout(Duration::from_millis(30));
        t.set_retries(0);
        let mut client = SnmpClient::new(t, "public");
        assert!(client
            .get_one(&mib2::system::sys_uptime_instance())
            .is_err());
        server.stop();
    }

    #[test]
    fn shared_mib_transport_sees_updates() {
        let shared = std::sync::Arc::new(std::sync::Mutex::new(mib_with_uptime(1)));
        let t = SharedMibTransport::new("public", shared.clone());
        let mut client = SnmpClient::new(t, "public");
        assert_eq!(
            client
                .get_one(&mib2::system::sys_uptime_instance())
                .unwrap(),
            crate::value::SnmpValue::TimeTicks(1)
        );
        *shared.lock().unwrap() = mib_with_uptime(2);
        assert_eq!(
            client
                .get_one(&mib2::system::sys_uptime_instance())
                .unwrap(),
            crate::value::SnmpValue::TimeTicks(2)
        );
    }

    #[test]
    fn fn_transport_fault_injection() {
        // Drop the first request, answer the second.
        let mut agent = SnmpAgent::new("public");
        let mib = mib_with_uptime(9);
        let mut calls = 0;
        let t = FnTransport(move |req: &[u8]| {
            calls += 1;
            if calls == 1 {
                None
            } else {
                agent.handle(req, &mib)
            }
        });
        let mut client = SnmpClient::new(t, "public");
        // First get fails (drop)...
        assert!(client
            .get_one(&mib2::system::sys_uptime_instance())
            .is_err());
        // ...second succeeds.
        assert!(client.get_one(&mib2::system::sys_uptime_instance()).is_ok());
    }
}
