//! Metric handles for the SNMP stack.
//!
//! Handle bundles are resolved once from a [`Registry`] and then recorded
//! through lock-free; the codec handles live in a process-wide
//! `OnceLock` so `SnmpMessage::encode`/`decode` stay allocation- and
//! lock-free on the hot path.

use netqos_telemetry::{Counter, Histogram, Registry};
use std::sync::OnceLock;

/// Manager-side metrics, recorded by [`crate::client::SnmpClient`].
#[derive(Clone)]
pub struct ClientTelemetry {
    /// Requests sent (one per logical operation attempt).
    pub requests: Counter,
    /// Successful request/response exchanges.
    pub responses: Counter,
    /// Responses discarded for a request-id mismatch.
    pub stale_responses: Counter,
    /// Exchanges that ended in a transport or protocol error.
    pub errors: Counter,
    /// Round-trip time of successful exchanges, nanoseconds.
    pub rtt_ns: Histogram,
    /// Request bytes handed to the transport.
    pub bytes_sent: Counter,
    /// Response bytes received from the transport.
    pub bytes_received: Counter,
}

impl ClientTelemetry {
    /// Resolves the client metric handles from `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        ClientTelemetry {
            requests: registry.counter("netqos_snmp_client_requests_total"),
            responses: registry.counter("netqos_snmp_client_responses_total"),
            stale_responses: registry.counter("netqos_snmp_client_stale_responses_total"),
            errors: registry.counter("netqos_snmp_client_errors_total"),
            rtt_ns: registry.histogram("netqos_snmp_client_rtt_ns"),
            bytes_sent: registry.counter("netqos_snmp_client_bytes_sent_total"),
            bytes_received: registry.counter("netqos_snmp_client_bytes_received_total"),
        }
    }

    /// Handles bound to the process-wide registry.
    pub fn global() -> Self {
        Self::from_registry(netqos_telemetry::global())
    }
}

/// UDP transport metrics, recorded by [`crate::transport::UdpTransport`].
#[derive(Clone)]
pub struct TransportTelemetry {
    /// Receive timeouts (per attempt).
    pub timeouts: Counter,
    /// Retransmissions after a timeout.
    pub retransmits: Counter,
    /// Exchanges that exhausted every retry.
    pub exchange_failures: Counter,
}

impl TransportTelemetry {
    /// Resolves the transport metric handles from `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        TransportTelemetry {
            timeouts: registry.counter("netqos_snmp_udp_timeouts_total"),
            retransmits: registry.counter("netqos_snmp_udp_retransmits_total"),
            exchange_failures: registry.counter("netqos_snmp_udp_exchange_failures_total"),
        }
    }

    /// Handles bound to the process-wide registry.
    pub fn global() -> Self {
        Self::from_registry(netqos_telemetry::global())
    }
}

/// Codec metrics, recorded by `SnmpMessage::{encode, decode}`.
pub struct CodecTelemetry {
    /// Messages encoded.
    pub encodes: Counter,
    /// Bytes produced by encoding.
    pub encoded_bytes: Counter,
    /// Wall-clock nanoseconds spent encoding.
    pub encode_ns: Counter,
    /// Successfully decoded messages.
    pub decodes: Counter,
    /// Bytes consumed by successful decodes.
    pub decoded_bytes: Counter,
    /// Wall-clock nanoseconds spent decoding.
    pub decode_ns: Counter,
    /// Decode attempts rejected as malformed.
    pub decode_errors: Counter,
}

/// The codec handles, resolved once against the global registry.
pub fn codec() -> &'static CodecTelemetry {
    static CODEC: OnceLock<CodecTelemetry> = OnceLock::new();
    CODEC.get_or_init(|| {
        let registry = netqos_telemetry::global();
        CodecTelemetry {
            encodes: registry.counter("netqos_snmp_codec_encodes_total"),
            encoded_bytes: registry.counter("netqos_snmp_codec_encoded_bytes_total"),
            encode_ns: registry.counter("netqos_snmp_codec_encode_ns_total"),
            decodes: registry.counter("netqos_snmp_codec_decodes_total"),
            decoded_bytes: registry.counter("netqos_snmp_codec_decoded_bytes_total"),
            decode_ns: registry.counter("netqos_snmp_codec_decode_ns_total"),
            decode_errors: registry.counter("netqos_snmp_codec_decode_errors_total"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_handles_are_shared() {
        let before = codec().encodes.get();
        codec().encodes.inc();
        assert_eq!(codec().encodes.get(), before + 1);
    }

    #[test]
    fn client_telemetry_from_private_registry() {
        let reg = Registry::new();
        let t = ClientTelemetry::from_registry(&reg);
        t.requests.inc();
        t.rtt_ns.record(1_000);
        assert_eq!(reg.counter("netqos_snmp_client_requests_total").get(), 1);
        assert_eq!(reg.histogram("netqos_snmp_client_rtt_ns").count(), 1);
    }
}
