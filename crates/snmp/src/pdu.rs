//! SNMPv1 protocol data units (RFC 1157 §4.1).
//!
//! The four request/response PDUs share one layout:
//!
//! ```text
//! PDU ::= [context N] IMPLICIT SEQUENCE {
//!     request-id   INTEGER,
//!     error-status INTEGER,
//!     error-index  INTEGER,
//!     variable-bindings SEQUENCE OF SEQUENCE { name OID, value ANY }
//! }
//! ```
//!
//! The Trap-PDU (context 4) has its own layout and is modelled separately
//! as [`TrapPdu`].

use crate::ber::{self, tag, Reader};
use crate::error::{BerError, SnmpError};
use crate::oid::Oid;
use crate::value::SnmpValue;
use std::fmt;

/// The request/response PDU kinds of SNMPv1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PduType {
    /// Retrieve exact variables.
    GetRequest,
    /// Retrieve the lexicographic successors of variables.
    GetNextRequest,
    /// Agent's reply to any request.
    GetResponse,
    /// Write variables (this implementation's agents are read-only).
    SetRequest,
}

impl PduType {
    /// The BER context tag of this PDU type.
    pub fn tag(self) -> u8 {
        match self {
            PduType::GetRequest => tag::GET_REQUEST,
            PduType::GetNextRequest => tag::GET_NEXT_REQUEST,
            PduType::GetResponse => tag::GET_RESPONSE,
            PduType::SetRequest => tag::SET_REQUEST,
        }
    }

    /// Maps a BER context tag back to a PDU type.
    pub fn from_tag(t: u8) -> Option<Self> {
        match t {
            tag::GET_REQUEST => Some(PduType::GetRequest),
            tag::GET_NEXT_REQUEST => Some(PduType::GetNextRequest),
            tag::GET_RESPONSE => Some(PduType::GetResponse),
            tag::SET_REQUEST => Some(PduType::SetRequest),
            _ => None,
        }
    }
}

/// SNMPv1 error-status codes (RFC 1157 §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorStatus {
    /// No error.
    NoError,
    /// The reply would not fit in a single message.
    TooBig,
    /// A named variable does not exist (also: end of MIB on GetNext).
    NoSuchName,
    /// A Set value was of the wrong type/range.
    BadValue,
    /// A Set targeted a read-only variable.
    ReadOnly,
    /// Any other failure.
    GenErr,
}

impl ErrorStatus {
    /// Wire code.
    pub fn code(self) -> i64 {
        match self {
            ErrorStatus::NoError => 0,
            ErrorStatus::TooBig => 1,
            ErrorStatus::NoSuchName => 2,
            ErrorStatus::BadValue => 3,
            ErrorStatus::ReadOnly => 4,
            ErrorStatus::GenErr => 5,
        }
    }

    /// Parses a wire code; unknown codes map to `GenErr` (liberal, since
    /// SNMPv2 agents can reply with richer codes).
    pub fn from_code(code: i64) -> Self {
        match code {
            0 => ErrorStatus::NoError,
            1 => ErrorStatus::TooBig,
            2 => ErrorStatus::NoSuchName,
            3 => ErrorStatus::BadValue,
            4 => ErrorStatus::ReadOnly,
            _ => ErrorStatus::GenErr,
        }
    }

    /// True when the status signals success.
    pub fn is_ok(self) -> bool {
        matches!(self, ErrorStatus::NoError)
    }
}

impl fmt::Display for ErrorStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorStatus::NoError => "noError",
            ErrorStatus::TooBig => "tooBig",
            ErrorStatus::NoSuchName => "noSuchName",
            ErrorStatus::BadValue => "badValue",
            ErrorStatus::ReadOnly => "readOnly",
            ErrorStatus::GenErr => "genErr",
        };
        f.write_str(s)
    }
}

/// One variable binding: a name and its value (NULL in requests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarBind {
    /// Object instance name.
    pub oid: Oid,
    /// Bound value.
    pub value: SnmpValue,
}

impl VarBind {
    /// A request-side binding (`value = NULL`).
    pub fn null(oid: Oid) -> Self {
        VarBind {
            oid,
            value: SnmpValue::Null,
        }
    }

    /// A response-side binding.
    pub fn new(oid: Oid, value: SnmpValue) -> Self {
        VarBind { oid, value }
    }

    fn encode(&self) -> Result<Vec<u8>, BerError> {
        let name = ber::encode_oid(&self.oid)?;
        let value = ber::encode_value(&self.value)?;
        Ok(ber::encode_sequence(&[&name, &value]))
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, BerError> {
        let mut seq = r.expect_element(tag::SEQUENCE)?;
        let oid = seq.read_oid()?;
        let value = seq.read_value()?;
        seq.finish()?;
        Ok(VarBind { oid, value })
    }
}

/// A request/response PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pdu {
    /// Which PDU this is.
    pub pdu_type: PduType,
    /// Correlates responses with requests.
    pub request_id: i32,
    /// Result of the operation (responses only; zero in requests).
    pub error_status: ErrorStatus,
    /// 1-based index of the failing binding, 0 when none.
    pub error_index: u32,
    /// The variable bindings.
    pub bindings: Vec<VarBind>,
}

impl Pdu {
    /// Builds a request PDU with NULL-valued bindings.
    pub fn request(pdu_type: PduType, request_id: i32, oids: &[Oid]) -> Self {
        Pdu {
            pdu_type,
            request_id,
            error_status: ErrorStatus::NoError,
            error_index: 0,
            bindings: oids.iter().cloned().map(VarBind::null).collect(),
        }
    }

    /// Builds the success response to `self` with the given bindings.
    pub fn response(&self, bindings: Vec<VarBind>) -> Pdu {
        Pdu {
            pdu_type: PduType::GetResponse,
            request_id: self.request_id,
            error_status: ErrorStatus::NoError,
            error_index: 0,
            bindings,
        }
    }

    /// Builds the error response to `self`: SNMPv1 echoes the original
    /// bindings and flags the failing index (RFC 1157 §4.1.2).
    pub fn error_response(&self, status: ErrorStatus, index: u32) -> Pdu {
        Pdu {
            pdu_type: PduType::GetResponse,
            request_id: self.request_id,
            error_status: status,
            error_index: index,
            bindings: self.bindings.clone(),
        }
    }

    /// Encodes the PDU (without the message wrapper).
    pub fn encode(&self) -> Result<Vec<u8>, BerError> {
        let rid = ber::encode_integer(i64::from(self.request_id));
        let status = ber::encode_integer(self.error_status.code());
        let index = ber::encode_integer(i64::from(self.error_index));
        let mut binds = Vec::new();
        for b in &self.bindings {
            binds.push(b.encode()?);
        }
        let bind_refs: Vec<&[u8]> = binds.iter().map(|v| v.as_slice()).collect();
        let bindings_seq = ber::encode_sequence(&bind_refs);
        Ok(ber::encode_constructed(
            self.pdu_type.tag(),
            &[&rid, &status, &index, &bindings_seq],
        ))
    }

    /// Decodes a PDU from a reader positioned at the PDU tag.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, SnmpError> {
        let (t, mut content) = r.read_element().map_err(SnmpError::from)?;
        let pdu_type = PduType::from_tag(t).ok_or(SnmpError::UnknownPduType(t))?;
        let request_id = content.read_integer()? as i32;
        let error_status = ErrorStatus::from_code(content.read_integer()?);
        let error_index = content.read_integer()?.max(0) as u32;
        let mut binds_seq = content.expect_element(tag::SEQUENCE)?;
        let mut bindings = Vec::new();
        while !binds_seq.is_empty() {
            bindings.push(VarBind::decode(&mut binds_seq)?);
        }
        content.finish()?;
        Ok(Pdu {
            pdu_type,
            request_id,
            error_status,
            error_index,
            bindings,
        })
    }
}

/// An SNMPv2c GetBulkRequest-PDU (RFC 1905 §4.2.3).
///
/// Same wire layout as the other request PDUs, but the two integers after
/// the request-id are `non-repeaters` and `max-repetitions` instead of an
/// error status/index: the first `non_repeaters` bindings receive one
/// GetNext step each; every remaining binding is stepped up to
/// `max_repetitions` times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BulkPdu {
    /// Correlates the response.
    pub request_id: i32,
    /// Leading bindings answered with a single successor.
    pub non_repeaters: u32,
    /// Successor count for each remaining binding.
    pub max_repetitions: u32,
    /// The starting names.
    pub bindings: Vec<VarBind>,
}

impl BulkPdu {
    /// Builds a bulk request with NULL-valued bindings.
    pub fn request(
        request_id: i32,
        non_repeaters: u32,
        max_repetitions: u32,
        oids: &[Oid],
    ) -> Self {
        BulkPdu {
            request_id,
            non_repeaters,
            max_repetitions,
            bindings: oids.iter().cloned().map(VarBind::null).collect(),
        }
    }

    /// Encodes the PDU (without the message wrapper).
    pub fn encode(&self) -> Result<Vec<u8>, BerError> {
        let rid = ber::encode_integer(i64::from(self.request_id));
        let nr = ber::encode_integer(i64::from(self.non_repeaters));
        let mr = ber::encode_integer(i64::from(self.max_repetitions));
        let mut binds = Vec::new();
        for b in &self.bindings {
            binds.push(b.encode()?);
        }
        let bind_refs: Vec<&[u8]> = binds.iter().map(|v| v.as_slice()).collect();
        let bindings_seq = ber::encode_sequence(&bind_refs);
        Ok(ber::encode_constructed(
            tag::GET_BULK_REQUEST,
            &[&rid, &nr, &mr, &bindings_seq],
        ))
    }

    /// Decodes a GetBulk PDU from a reader positioned at its tag.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, SnmpError> {
        let mut content = r
            .expect_element(tag::GET_BULK_REQUEST)
            .map_err(SnmpError::from)?;
        let request_id = content.read_integer()? as i32;
        let non_repeaters = content.read_integer()?.max(0) as u32;
        let max_repetitions = content.read_integer()?.max(0) as u32;
        let mut binds_seq = content.expect_element(tag::SEQUENCE)?;
        let mut bindings = Vec::new();
        while !binds_seq.is_empty() {
            bindings.push(VarBind::decode(&mut binds_seq)?);
        }
        content.finish()?;
        Ok(BulkPdu {
            request_id,
            non_repeaters,
            max_repetitions,
            bindings,
        })
    }
}

/// Generic trap codes (RFC 1157 §4.1.6).
pub mod generic_trap {
    /// coldStart(0)
    pub const COLD_START: i32 = 0;
    /// warmStart(1)
    pub const WARM_START: i32 = 1;
    /// linkDown(2)
    pub const LINK_DOWN: i32 = 2;
    /// linkUp(3)
    pub const LINK_UP: i32 = 3;
    /// authenticationFailure(4)
    pub const AUTHENTICATION_FAILURE: i32 = 4;
    /// egpNeighborLoss(5)
    pub const EGP_NEIGHBOR_LOSS: i32 = 5;
    /// enterpriseSpecific(6)
    pub const ENTERPRISE_SPECIFIC: i32 = 6;
}

/// An SNMPv1 Trap-PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrapPdu {
    /// Object identifying the trap's origin subsystem.
    pub enterprise: Oid,
    /// Address of the emitting agent.
    pub agent_addr: [u8; 4],
    /// Generic trap code (see [`generic_trap`]).
    pub generic_trap: i32,
    /// Enterprise-specific trap code.
    pub specific_trap: i32,
    /// `sysUpTime` at emission.
    pub time_stamp: u32,
    /// Interesting variables.
    pub bindings: Vec<VarBind>,
}

impl TrapPdu {
    /// Encodes the Trap-PDU (without the message wrapper).
    pub fn encode(&self) -> Result<Vec<u8>, BerError> {
        let enterprise = ber::encode_oid(&self.enterprise)?;
        let addr = ber::encode_value(&SnmpValue::IpAddress(self.agent_addr))?;
        let generic = ber::encode_integer(i64::from(self.generic_trap));
        let specific = ber::encode_integer(i64::from(self.specific_trap));
        let stamp = ber::encode_unsigned(tag::TIME_TICKS, self.time_stamp);
        let mut binds = Vec::new();
        for b in &self.bindings {
            binds.push(b.encode()?);
        }
        let bind_refs: Vec<&[u8]> = binds.iter().map(|v| v.as_slice()).collect();
        let bindings_seq = ber::encode_sequence(&bind_refs);
        Ok(ber::encode_constructed(
            tag::TRAP,
            &[
                &enterprise,
                &addr,
                &generic,
                &specific,
                &stamp,
                &bindings_seq,
            ],
        ))
    }

    /// Decodes a Trap-PDU from a reader positioned at the trap tag.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, SnmpError> {
        let mut content = r.expect_element(tag::TRAP).map_err(SnmpError::from)?;
        let enterprise = content.read_oid()?;
        let addr_val = content.read_value()?;
        let agent_addr = match addr_val {
            SnmpValue::IpAddress(a) => a,
            _ => return Err(SnmpError::Ber(BerError::BadIpAddress)),
        };
        let generic_trap = content.read_integer()? as i32;
        let specific_trap = content.read_integer()? as i32;
        let time_stamp = content.read_unsigned(tag::TIME_TICKS)?;
        let mut binds_seq = content.expect_element(tag::SEQUENCE)?;
        let mut bindings = Vec::new();
        while !binds_seq.is_empty() {
            bindings.push(VarBind::decode(&mut binds_seq)?);
        }
        content.finish()?;
        Ok(TrapPdu {
            enterprise,
            agent_addr,
            generic_trap,
            specific_trap,
            time_stamp,
            bindings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(s: &str) -> Oid {
        s.parse().unwrap()
    }

    #[test]
    fn pdu_round_trip() {
        let pdu = Pdu {
            pdu_type: PduType::GetRequest,
            request_id: 0x0102_0304,
            error_status: ErrorStatus::NoError,
            error_index: 0,
            bindings: vec![
                VarBind::null(oid("1.3.6.1.2.1.1.3.0")),
                VarBind::null(oid("1.3.6.1.2.1.2.2.1.10.1")),
            ],
        };
        let enc = pdu.encode().unwrap();
        let mut r = Reader::new(&enc);
        let back = Pdu::decode(&mut r).unwrap();
        assert_eq!(back, pdu);
        r.finish().unwrap();
    }

    #[test]
    fn response_round_trip_with_values() {
        let pdu = Pdu {
            pdu_type: PduType::GetResponse,
            request_id: -7,
            error_status: ErrorStatus::NoSuchName,
            error_index: 2,
            bindings: vec![
                VarBind::new(oid("1.3.6.1.2.1.1.3.0"), SnmpValue::TimeTicks(123)),
                VarBind::new(oid("1.3.6.1.2.1.1.5.0"), SnmpValue::text("S1")),
            ],
        };
        let enc = pdu.encode().unwrap();
        let back = Pdu::decode(&mut Reader::new(&enc)).unwrap();
        assert_eq!(back, pdu);
    }

    #[test]
    fn error_response_echoes_bindings() {
        let req = Pdu::request(PduType::GetRequest, 9, &[oid("1.3.6.1.9.9")]);
        let resp = req.error_response(ErrorStatus::NoSuchName, 1);
        assert_eq!(resp.pdu_type, PduType::GetResponse);
        assert_eq!(resp.request_id, 9);
        assert_eq!(resp.error_status, ErrorStatus::NoSuchName);
        assert_eq!(resp.error_index, 1);
        assert_eq!(resp.bindings, req.bindings);
    }

    #[test]
    fn empty_bindings_ok() {
        let pdu = Pdu::request(PduType::GetNextRequest, 1, &[]);
        let enc = pdu.encode().unwrap();
        let back = Pdu::decode(&mut Reader::new(&enc)).unwrap();
        assert!(back.bindings.is_empty());
    }

    #[test]
    fn unknown_pdu_tag_rejected() {
        // Tag 0xA7 is not a v1 PDU.
        let body = [0xA7, 0x00];
        let err = Pdu::decode(&mut Reader::new(&body)).unwrap_err();
        assert_eq!(err, SnmpError::UnknownPduType(0xA7));
    }

    #[test]
    fn error_status_codes_round_trip() {
        for s in [
            ErrorStatus::NoError,
            ErrorStatus::TooBig,
            ErrorStatus::NoSuchName,
            ErrorStatus::BadValue,
            ErrorStatus::ReadOnly,
            ErrorStatus::GenErr,
        ] {
            assert_eq!(ErrorStatus::from_code(s.code()), s);
        }
        // Unknown codes degrade to genErr.
        assert_eq!(ErrorStatus::from_code(17), ErrorStatus::GenErr);
    }

    #[test]
    fn bulk_round_trip() {
        let bulk = BulkPdu::request(
            123,
            1,
            20,
            &[oid("1.3.6.1.2.1.1.3.0"), oid("1.3.6.1.2.1.2.2.1.10")],
        );
        let enc = bulk.encode().unwrap();
        assert_eq!(enc[0], 0xA5);
        let back = BulkPdu::decode(&mut Reader::new(&enc)).unwrap();
        assert_eq!(back, bulk);
    }

    #[test]
    fn bulk_negative_fields_clamp_to_zero() {
        // Hand-encode a bulk PDU with negative non-repeaters.
        let rid = crate::ber::encode_integer(1);
        let nr = crate::ber::encode_integer(-5);
        let mr = crate::ber::encode_integer(-1);
        let empty = crate::ber::encode_sequence(&[]);
        let enc = crate::ber::encode_constructed(0xA5, &[&rid, &nr, &mr, &empty]);
        let back = BulkPdu::decode(&mut Reader::new(&enc)).unwrap();
        assert_eq!(back.non_repeaters, 0);
        assert_eq!(back.max_repetitions, 0);
    }

    #[test]
    fn trap_round_trip() {
        let trap = TrapPdu {
            enterprise: oid("1.3.6.1.4.1.9999"),
            agent_addr: [10, 0, 0, 7],
            generic_trap: generic_trap::ENTERPRISE_SPECIFIC,
            specific_trap: 42,
            time_stamp: 555,
            bindings: vec![VarBind::new(
                oid("1.3.6.1.4.1.9999.1"),
                SnmpValue::Gauge32(12),
            )],
        };
        let enc = trap.encode().unwrap();
        let back = TrapPdu::decode(&mut Reader::new(&enc)).unwrap();
        assert_eq!(back, trap);
    }

    #[test]
    fn pdu_type_tags_round_trip() {
        for t in [
            PduType::GetRequest,
            PduType::GetNextRequest,
            PduType::GetResponse,
            PduType::SetRequest,
        ] {
            assert_eq!(PduType::from_tag(t.tag()), Some(t));
        }
        assert_eq!(PduType::from_tag(0xA4), None); // Trap has its own struct
    }
}
