//! # netqos — facade crate
//!
//! Re-exports the public API of every netqos crate under one roof, so that
//! examples and downstream users can depend on a single crate:
//!
//! * [`topology`] — network graph, path traversal, bandwidth algorithms
//! * [`spec`] — the DeSiDeRaTa specification language (network extension)
//! * [`snmp`] — SNMPv1 / BER / MIB-II agent and manager
//! * [`sim`] — discrete-event Ethernet LAN simulator
//! * [`loadgen`] — UDP network load generator
//! * [`monitor`] — the network QoS monitor (the paper's contribution)
//! * [`rm`] — DeSiDeRaTa-style resource-manager substrate
//! * [`telemetry`] — self-observability: metrics registry and event sink

pub use netqos_loadgen as loadgen;
pub use netqos_monitor as monitor;
pub use netqos_rm as rm;
pub use netqos_sim as sim;
pub use netqos_snmp as snmp;
pub use netqos_spec as spec;
pub use netqos_telemetry as telemetry;
pub use netqos_topology as topology;
