//! `netqos` — command-line front end for the network QoS monitor.
//!
//! ```text
//! netqos check   <spec>                      validate a specification file
//! netqos fmt     <spec>                      canonical pretty-print
//! netqos paths   <spec>                      show qospath traversals
//! netqos monitor <spec> [--duration N]       run the monitor in the simulator
//!                       [--load FROM:TO:KBPS[:START:END]]...
//!                       [--telemetry PATH]   write PATH.prom + PATH.jsonl
//!                       [--serve ADDR]       live /metrics /healthz /snapshot
//!                       [--pace-ms MS]       wall-clock pacing per tick
//!                       [--trace-sample N]   trace with 1-in-N head sampling
//!                       [--trace-adaptive]   adapt head rate to ring pressure
//!                       [--otlp-push URL]    push flight snapshots to a collector
//!                       [--otlp-push-delta]  push only cycles newer than the
//!                                            last acknowledged push
//!                       [--alert-rules PATH] load alert rules (atop builtins)
//!                       [--alert-webhook URL] POST alert transitions
//!                       [--baseline-state PATH]  restore/save baselines
//!                       [--baseline-save-ticks N]  save/flush cadence
//!                       [--lts DIR]          long-term stats store + /query
//!                       [--lts-compact]      compact the store on save ticks
//! netqos federate <spec>... [--duration N]   run one shard per spec file behind
//!                       [--serve ADDR]       a merged /metrics /healthz /snapshot
//!                       [--lts DIR]          per-shard stores under DIR/<shard>
//! netqos query   'EXPR' --lts DIR | --url U  evaluate a PromQL-subset expression
//!                       [--time T]           against a store or a live monitor
//!                       [--range A:B | --last 15m] [--step S]
//!                       [--format json|prom|csv]
//! netqos lts     info|verify|compact DIR     inspect / check / rewrite a store
//! netqos lts     query DIR [--series SEL]    query a store offline
//!                       [--range A:B | --last 15m] [--step 1s|1m|1h]
//!                       [--format json|prom|csv]
//! netqos alerts  <rules> | --builtin         lint an alert rules file / list
//!                                            the built-in rules
//! netqos stats   <spec> [--duration N]       run quietly, print Prometheus metrics
//! netqos audit   <spec>                      verify spec against forwarding evidence
//! netqos trace   <spec> [--duration N]       run with causal tracing, snapshot the
//!                       [--load ...]         flight recorder to --out DIR
//!                       [--out DIR]
//! netqos flight  dump PATH [--otlp]          re-emit a snapshot (Chrome or OTLP)
//! netqos flight  show|check PATH             inspect / validate snapshots
//! netqos profile --url U | PATH.jsonl        tick-phase profile of a live monitor
//!                       [--shard NAME]       (or offline over a flight snapshot)
//!                       [--format json|folded]
//! netqos gen-topology [--hosts N] ...        emit a synthetic ISP-scale spec
//! netqos bench   check OLD NEW               gate BENCH_*.json regressions
//!                       [--tolerance PCT]
//! ```
//!
//! Exit codes: 0 success, 1 usage error, 2 validation/runtime failure.

use netqos::loadgen::{LoadProfile, ProfiledSource};
use netqos::monitor::discovery::{self, Verdict};
use netqos::monitor::service::{MonitoringService, ServiceConfig};
use netqos::monitor::simnet::{SimNetwork, SimNetworkOptions};
use netqos::monitor::NetworkMonitor;
use netqos::sim::time::SimDuration;
use netqos::spec;
use netqos_telemetry::{EventSink, Level};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

/// Default `/api/v1` slow-query warning threshold, milliseconds
/// (override with `--slow-query-ms`).
const DEFAULT_SLOW_QUERY_MS: u64 = 50;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(1);
    };
    let result = match cmd.as_str() {
        "check" => cmd_check(&args[1..]),
        "fmt" => cmd_fmt(&args[1..]),
        "paths" => cmd_paths(&args[1..]),
        "monitor" => cmd_monitor(&args[1..]),
        "federate" => cmd_federate(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "lts" => cmd_lts(&args[1..]),
        "alerts" => cmd_alerts(&args[1..]),
        "record" => cmd_record(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "audit" => cmd_audit(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "flight" => cmd_flight(&args[1..]),
        "profile" => cmd_profile(&args[1..]),
        "gen-topology" => cmd_gen_topology(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("netqos: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  netqos check   <spec>                      validate a specification file
  netqos fmt     <spec>                      canonical pretty-print to stdout
  netqos paths   <spec>                      show qospath traversals
  netqos monitor <spec> [--duration N] [--load FROM:TO:KBPS[:START:END]]...
                        [--telemetry PATH]   also write PATH.prom + PATH.jsonl
                        [--serve ADDR]       serve GET /metrics /healthz /snapshot
                                             (bound address printed to stderr)
                        [--pace-ms MS]       sleep MS wall-clock ms per tick
                        [--trace-sample N]   enable tracing, keep 1-in-N cycles
                                             (tail triggers always kept)
                        [--trace-adaptive]   let the head rate adapt to flight
                                             ring pressure (implies tracing)
                        [--otlp-push URL]    push flight snapshots to an OTLP
                                             collector at http://host:port/path
                                             on violation and at exit
                                             (implies tracing)
                        [--otlp-push-delta]  delta temporality: each push only
                                             carries cycles newer than the last
                                             acknowledged push
                        [--alert-rules PATH] load alert rules from PATH on top
                                             of the built-ins (same-name rules
                                             override); see `netqos alerts`
                        [--alert-webhook URL] POST alert transition batches
                                             (JSON) to http://host:port/path
                        [--baseline-state PATH]  restore baselines from PATH at
                                             start, save them back on exit
                        [--baseline-save-ticks N]  ticks between baseline saves
                                             and long-term store flushes
                                             (default 60)
                        [--lts DIR]          keep a long-term stats store under
                                             DIR: every tick samples the
                                             registry and per-path QoS signals
                                             at 1s resolution (downsampled to
                                             1m/1h); --serve gains GET /query
                        [--lts-compact]      compact the store on every save
                                             tick (instead of only flushing),
                                             keeping read amplification flat
                                             on long runs; queries see
                                             byte-identical results across it
                        [--record-rules PATH] evaluate recording rules from
                                             PATH against the --lts store on
                                             every save tick, appending results
                                             as derived series (see `netqos
                                             record lint`)
                        [--slow-query-ms MS] flag /api/v1 evaluations slower
                                             than MS in response warnings and
                                             the event stream (default 50);
                                             with tracing on, --serve also
                                             gains GET /profile (tick-phase
                                             profile; ?format=folded for
                                             flamegraph folded stacks)
  netqos federate <spec> <spec>... [--duration N] [--serve ADDR] [--pace-ms MS]
                        [--trace-sample N] [--trace-adaptive] [--alert-rules PATH]
                        [--record-rules PATH] per-shard recording rules

                        [--lts DIR]          per-shard stores under DIR/<shard>;
                                             /query?shard=NAME serves them
                                             run one monitoring shard per spec
                                             file (threads) behind one merged
                                             export plane: /metrics carries
                                             shard=\"...\" labelled series plus
                                             unlabelled aggregates; /healthz is
                                             503 if any shard stalls
  netqos alerts  <rules>                     lint an alert rules file: parse and
                                             echo each rule in canonical form
  netqos alerts  --builtin                   list the built-in alert rules
  netqos record  lint <rules>                lint a recording-rules file
                                             (record:/expr: stanzas; see
                                             specs/record.rules)
  netqos stats   <spec> [--duration N]       run the monitor quietly, print
                                             its own telemetry (Prometheus text)
  netqos audit   <spec>                      verify spec against forwarding evidence
  netqos trace   <spec> [--duration N] [--load FROM:TO:KBPS[:START:END]]...
                        [--out DIR]          run with causal tracing; write the
                                             flight recorder to DIR (default flight/)
                        [--trace-sample N] [--baseline-state PATH]   as above
  netqos flight  dump  PATH.jsonl [--otlp]   convert a JSONL snapshot to Chrome
                                             trace_event JSON (or OTLP/JSON) on stdout
  netqos flight  show  PATH.jsonl            summarize a snapshot's cycles
  netqos flight  check PATH                  validate a Chrome trace or OTLP/JSON
                                             export; nonzero exit on failure
  netqos lts     info    DIR                 summarize a long-term store (series,
                                             segments, points, bytes)
  netqos lts     verify  DIR                 check store invariants; nonzero exit
                                             and one line per issue on failure
  netqos lts     compact DIR                 rewrite each series into one segment
                                             per resolution (offline only)
  netqos lts     migrate DIR [--codec C]     rewrite sealed segments into codec C
                                             (binary|v2, the default, or
                                             jsonl|v1); atomic per segment,
                                             queries are byte-identical across
                                             the migration
  netqos lts     info    DIR [--segments]    add per-resolution byte/codec
                                             breakdown; --segments lists every
                                             segment with its codec version
  netqos query   'EXPR' --lts DIR            evaluate a PromQL-subset expression
                 | --url http://host:port    offline against a store, or online
                                             against a monitor's /api/v1/query
                        [--time T]           instant evaluation time (unix s;
                                             default: newest sample)
                        [--range START:END]  range query over unix seconds, or
                        [--last 15m]         the trailing window (s/m/h/d/w)
                        [--step S]           range step (default 1m)
                        [--format json|prom|csv]   output shape (default json:
                                             the /api/v1 response body)
                                             supported: rate/increase/delta,
                                             histogram_quantile, sum/avg/min/
                                             max/count by/without, scalar
                                             arithmetic and comparisons
  netqos lts     query   DIR [--series SEL] [--range START:END] [--step 1s|1m|1h]
                        [--last 15m]         trailing window instead of --range
                        [--format json|prom|csv]   points as JSON (default),
                                             Prometheus text, or CSV rows
                                             print the same JSON GET /query
                                             serves (SEL takes * wildcards)
  netqos profile --url http://host:port      fetch a live monitor's tick-phase
                        [--shard NAME]       profile (federations need the shard
                                             name); the monitor must be tracing
                                             (--trace-sample/--trace-adaptive)
  netqos profile PATH.jsonl                  profile a flight-recorder snapshot
                        [--window N]         offline (rolling window, default
                                             every cycle in the snapshot)
                        [--format json|folded]   phase tree as JSON (default) or
                                             flamegraph-compatible folded stacks
  netqos gen-topology [--hosts N]            emit a synthetic core/site/access
                        [--hosts-per-ap N]   topology spec on stdout (10^3-10^5
                        [--aps-per-site N]   hosts; deterministic for fixed
                        [--hub-every N]      parameters); every N-th access
                        [--qos-paths N]      point is a shared hub
                        [--out FILE]         write the spec to FILE instead
  netqos bench   check OLD.json NEW.json     compare two netqos-bench/v1 result
                        [--tolerance PCT]    documents; nonzero exit when any
                                             metric regresses more than PCT%
                                             (default 10; *_per_sec up is good,
                                             *_ns/*_bytes down is good)";

fn read_spec(args: &[String]) -> Result<(String, String), String> {
    let path = args
        .first()
        .ok_or_else(|| format!("missing <spec> argument\n{USAGE}"))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok((path.clone(), text))
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let (path, text) = read_spec(args)?;
    match spec::parse_and_validate(&text) {
        Ok(model) => {
            let hosts = model
                .topology
                .nodes()
                .filter(|(_, n)| n.kind.is_host())
                .count();
            println!(
                "{path}: OK — {} nodes ({hosts} hosts), {} connections, {} SNMP agents, {} qospaths",
                model.topology.node_count(),
                model.topology.connection_count(),
                model.snmp_nodes().len(),
                model.qos_paths.len()
            );
            Ok(())
        }
        Err(e) => Err(match e.span() {
            Some(span) => format!("{path}:{span}: {e}"),
            None => format!("{path}: {e}"),
        }),
    }
}

fn cmd_fmt(args: &[String]) -> Result<(), String> {
    let (_, text) = read_spec(args)?;
    let ast = spec::parse(&text).map_err(|e| e.to_string())?;
    print!("{}", spec::write_spec(&ast));
    Ok(())
}

fn cmd_paths(args: &[String]) -> Result<(), String> {
    let (_, text) = read_spec(args)?;
    let model = spec::parse_and_validate(&text).map_err(|e| e.to_string())?;
    let monitor = NetworkMonitor::new(model.topology.clone());
    if model.qos_paths.is_empty() {
        println!("no qospath declarations; showing all host pairs:");
        for p in netqos::topology::path::all_host_pairs(&model.topology) {
            println!("  {}", p.describe(&model.topology));
        }
        return Ok(());
    }
    for q in &model.qos_paths {
        let p = monitor.path(q.from, q.to).map_err(|e| e.to_string())?;
        let req = q
            .min_available_bps
            .map(|b| format!(" (min_available {} KB/s)", b / 8000))
            .unwrap_or_default();
        println!("{:<10} {}{req}", q.name, p.describe(&model.topology));
    }
    Ok(())
}

/// `FROM:TO:KBPS[:START:END]`
fn parse_load(s: &str) -> Result<(String, String, LoadProfile), String> {
    let parts: Vec<&str> = s.split(':').collect();
    let bad = || format!("bad --load `{s}` (expected FROM:TO:KBPS[:START:END])");
    match parts.as_slice() {
        [from, to, kbps] => {
            let rate: u64 = kbps.parse().map_err(|_| bad())?;
            Ok((
                (*from).to_owned(),
                (*to).to_owned(),
                LoadProfile::constant(rate * 1000),
            ))
        }
        [from, to, kbps, start, end] => {
            let rate: u64 = kbps.parse().map_err(|_| bad())?;
            let start: u64 = start.parse().map_err(|_| bad())?;
            let end: u64 = end.parse().map_err(|_| bad())?;
            Ok((
                (*from).to_owned(),
                (*to).to_owned(),
                LoadProfile::pulse(start, end, rate * 1000),
            ))
        }
        _ => Err(bad()),
    }
}

/// Options shared by `monitor`, `stats`, and `trace`.
struct MonitorOptions {
    duration: u64,
    loads: Vec<(String, String, LoadProfile)>,
    telemetry: Option<String>,
    out: Option<PathBuf>,
    serve: Option<String>,
    pace_ms: u64,
    trace_sample: Option<u64>,
    trace_adaptive: bool,
    otlp_push: Option<String>,
    otlp_push_delta: bool,
    alert_rules: Option<PathBuf>,
    alert_webhook: Option<String>,
    baseline_state: Option<PathBuf>,
    baseline_save_ticks: Option<u64>,
    lts: Option<PathBuf>,
    lts_compact: bool,
    record_rules: Option<PathBuf>,
    slow_query_ms: u64,
}

fn parse_monitor_options(args: &[String]) -> Result<MonitorOptions, String> {
    let mut opts = MonitorOptions {
        duration: 30,
        loads: Vec::new(),
        telemetry: None,
        out: None,
        serve: None,
        pace_ms: 0,
        trace_sample: None,
        trace_adaptive: false,
        otlp_push: None,
        otlp_push_delta: false,
        alert_rules: None,
        alert_webhook: None,
        baseline_state: None,
        baseline_save_ticks: None,
        lts: None,
        lts_compact: false,
        record_rules: None,
        slow_query_ms: DEFAULT_SLOW_QUERY_MS,
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--duration" => {
                i += 1;
                opts.duration = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--duration needs a number of seconds")?;
            }
            "--load" => {
                i += 1;
                opts.loads.push(parse_load(
                    args.get(i).ok_or("--load needs FROM:TO:KBPS[:START:END]")?,
                )?);
            }
            "--telemetry" => {
                i += 1;
                opts.telemetry = Some(
                    args.get(i)
                        .ok_or("--telemetry needs an output path prefix")?
                        .clone(),
                );
            }
            "--out" => {
                i += 1;
                opts.out = Some(PathBuf::from(
                    args.get(i).ok_or("--out needs a directory path")?,
                ));
            }
            "--serve" => {
                i += 1;
                opts.serve = Some(
                    args.get(i)
                        .ok_or("--serve needs a listen address (e.g. 127.0.0.1:9100)")?
                        .clone(),
                );
            }
            "--pace-ms" => {
                i += 1;
                opts.pace_ms = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--pace-ms needs a number of milliseconds")?;
            }
            "--trace-sample" => {
                i += 1;
                opts.trace_sample = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--trace-sample needs a cycle count N (keep 1 in N)")?,
                );
            }
            "--trace-adaptive" => {
                opts.trace_adaptive = true;
            }
            "--otlp-push" => {
                i += 1;
                opts.otlp_push = Some(
                    args.get(i)
                        .ok_or("--otlp-push needs a collector URL (http://host:port/path)")?
                        .clone(),
                );
            }
            "--otlp-push-delta" => {
                opts.otlp_push_delta = true;
            }
            "--alert-rules" => {
                i += 1;
                opts.alert_rules = Some(PathBuf::from(
                    args.get(i).ok_or("--alert-rules needs a rules file path")?,
                ));
            }
            "--alert-webhook" => {
                i += 1;
                opts.alert_webhook = Some(
                    args.get(i)
                        .ok_or("--alert-webhook needs a receiver URL (http://host:port/path)")?
                        .clone(),
                );
            }
            "--baseline-state" => {
                i += 1;
                opts.baseline_state = Some(PathBuf::from(
                    args.get(i).ok_or("--baseline-state needs a file path")?,
                ));
            }
            "--baseline-save-ticks" => {
                i += 1;
                opts.baseline_save_ticks = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|n| *n > 0)
                        .ok_or("--baseline-save-ticks needs a positive tick count")?,
                );
            }
            "--lts" => {
                i += 1;
                opts.lts = Some(PathBuf::from(
                    args.get(i).ok_or("--lts needs a directory path")?,
                ));
            }
            "--lts-compact" => {
                opts.lts_compact = true;
            }
            "--record-rules" => {
                i += 1;
                opts.record_rules = Some(PathBuf::from(
                    args.get(i)
                        .ok_or("--record-rules needs a rules file path")?,
                ));
            }
            "--slow-query-ms" => {
                i += 1;
                opts.slow_query_ms = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--slow-query-ms needs a number of milliseconds")?;
            }
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
        i += 1;
    }
    Ok(opts)
}

/// Folds the sampling/persistence/alerting options into a service
/// config. User alert rules are appended after the built-ins so a
/// same-name rule overrides its built-in (the engine keeps the last).
fn apply_service_options(
    mut config: ServiceConfig,
    opts: &MonitorOptions,
) -> Result<ServiceConfig, String> {
    if let Some(n) = opts.trace_sample {
        config.sample = netqos_telemetry::SampleConfig {
            head_every: n.max(1),
            ..netqos_telemetry::SampleConfig::default()
        };
    }
    if opts.trace_adaptive {
        config.adaptive_sample = Some(netqos_telemetry::AdaptiveConfig::default());
    }
    if let Some(path) = &opts.alert_rules {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rules = netqos_telemetry::parse_alert_rules(&src)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        config.alert_rules.extend(rules);
    }
    if opts.otlp_push_delta {
        if opts.otlp_push.is_none() {
            return Err("--otlp-push-delta needs --otlp-push".into());
        }
        config.otlp_push_delta = true;
    }
    config.baseline_state = opts.baseline_state.clone();
    if let Some(n) = opts.baseline_save_ticks {
        config.baseline_save_ticks = n;
    }
    config.lts_dir = opts.lts.clone();
    if opts.lts_compact {
        if opts.lts.is_none() {
            return Err("--lts-compact needs --lts".into());
        }
        config.lts_compact = true;
    }
    if let Some(path) = &opts.record_rules {
        if opts.lts.is_none() {
            return Err("--record-rules needs --lts".into());
        }
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        config.record_rules = netqos_telemetry::parse_record_rules(&src)
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }
    Ok(config)
}

/// Whether any of the options imply causal tracing.
fn wants_tracing(opts: &MonitorOptions) -> bool {
    opts.trace_sample.is_some() || opts.trace_adaptive || opts.otlp_push.is_some()
}

/// Starts the OTLP push worker when `--otlp-push` is given; delivery
/// counters land in the service's registry as `netqos_monitor_otlp_*`.
fn start_otlp_push(
    service: &mut MonitoringService,
    opts: &MonitorOptions,
) -> Result<Option<Arc<netqos_telemetry::OtlpPusher>>, String> {
    let Some(url) = &opts.otlp_push else {
        return Ok(None);
    };
    let target = netqos_telemetry::parse_push_url(url)?;
    eprintln!(
        "pushing OTLP to http://{}:{}{}",
        target.host, target.port, target.path
    );
    Ok(Some(service.enable_otlp_push(
        netqos_telemetry::PushConfig::new(target),
    )))
}

/// Pushes the final flight snapshot (so short runs without violations
/// still deliver their traces — under delta temporality only the cycles
/// not yet acknowledged), drains the queue, and reports delivery
/// counters.
fn finish_otlp_push(service: &mut MonitoringService, pusher: Arc<netqos_telemetry::OtlpPusher>) {
    service.flush_otlp_push();
    pusher.shutdown();
    let c = pusher.counters();
    eprintln!(
        "otlp push: {} delivered, {} retries, {} dropped",
        c.pushed.get(),
        c.retries.get(),
        c.dropped.get()
    );
}

/// Starts the alert webhook worker when `--alert-webhook` is given;
/// delivery counters land in the service's registry as
/// `netqos_alert_webhook_*`.
fn start_alert_webhook(
    service: &mut MonitoringService,
    opts: &MonitorOptions,
) -> Result<Option<Arc<netqos_telemetry::WebhookNotifier>>, String> {
    let Some(url) = &opts.alert_webhook else {
        return Ok(None);
    };
    let target = netqos_telemetry::parse_webhook_url(url)?;
    eprintln!(
        "alert webhook at http://{}:{}{}",
        target.host, target.port, target.path
    );
    Ok(Some(service.enable_alert_webhook(
        netqos_telemetry::PushConfig::new(target),
    )))
}

/// Drains the webhook queue and reports delivery counters.
fn finish_alert_webhook(hook: Arc<netqos_telemetry::WebhookNotifier>) {
    hook.shutdown();
    let c = hook.counters();
    eprintln!(
        "alert webhook: {} delivered, {} retries, {} dropped",
        c.pushed.get(),
        c.retries.get(),
        c.dropped.get()
    );
}

/// Serving state for `--serve`: the HTTP server plus the shared status
/// handle the tick loop publishes into.
struct ServePlane {
    server: netqos_telemetry::HttpServer,
    live: Arc<netqos::monitor::live::LiveStatus>,
}

/// Starts the export plane when `--serve` is given: binds ADDR, prints
/// the bound address to stderr (`:0` picks an ephemeral port), and wires
/// `/metrics`, `/healthz`, and `/snapshot` to the service's registry and
/// live status.
fn start_serve_plane(
    service: &MonitoringService,
    opts: &MonitorOptions,
) -> Result<Option<ServePlane>, String> {
    let Some(addr) = &opts.serve else {
        return Ok(None);
    };
    let live = service.live().clone();
    // The loop must be quiet for several paced ticks (or 2 s, whichever
    // is larger) before /healthz reports stale.
    live.set_stale_after_ns((opts.pace_ms.saturating_mul(10_000_000)).max(2_000_000_000));
    // /query reads the long-term store straight from disk, so the
    // handler threads never touch the service.
    let reader = match &opts.lts {
        Some(dir) if service.lts_enabled() => Some(netqos_telemetry::LtsReader::open(dir)),
        _ => None,
    };
    let has_query = reader.is_some();
    // /profile only answers when spans actually flow into the profiler,
    // i.e. when tracing is on; otherwise the route 404s with a hint.
    let profile = wants_tracing(opts).then(|| service.profile().clone());
    let has_profile = profile.is_some();
    let router = netqos::monitor::live::build_router_full(netqos::monitor::live::RouterOptions {
        lts: reader,
        events: Some(service.event_sink().clone()),
        profile,
        slow_query_ns: opts.slow_query_ms.saturating_mul(1_000_000),
        ..netqos::monitor::live::RouterOptions::new(service.registry().clone(), live.clone())
    });
    let server = netqos_telemetry::HttpServer::serve(addr.as_str(), router)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    eprintln!(
        "serving http://{}/ (metrics, healthz, snapshot, alerts{}{})",
        server.local_addr(),
        if has_query { ", query" } else { "" },
        if has_profile { ", profile" } else { "" }
    );
    Ok(Some(ServePlane { server, live }))
}

/// Builds the assembled monitoring service for `monitor`/`stats`: the
/// spec's first SNMP-capable host runs the monitor, `--load` sources are
/// installed as simulated apps, and `--telemetry` routes the service's
/// structured events to `PATH.jsonl`.
fn build_service(
    model: spec::SpecModel,
    opts: &MonitorOptions,
    config: ServiceConfig,
) -> Result<MonitoringService, String> {
    let topology = model.topology.clone();
    let monitor_host = model
        .snmp_nodes()
        .into_iter()
        .find(|&n| topology.node(n).map(|x| x.kind.is_host()).unwrap_or(false))
        .ok_or("no SNMP-capable host to run the monitor on")?;
    let net_options = SimNetworkOptions {
        monitor_host: topology
            .node(monitor_host)
            .map_err(|e| e.to_string())?
            .name
            .clone(),
        ..SimNetworkOptions::default()
    };
    let loads = opts.loads.clone();
    let mut service =
        MonitoringService::from_model_with(model, net_options, config, |builder, map, m| {
            for (from, to, profile) in &loads {
                let (Ok(f), Ok(t)) = (m.topology.node_by_name(from), m.topology.node_by_name(to))
                else {
                    continue;
                };
                if let Some(ip) = m.addresses.get(&t).and_then(|a| a.parse().ok()) {
                    let _ = builder.install_app(
                        map[&f],
                        Box::new(ProfiledSource::new(ip, profile.clone())),
                        None,
                    );
                }
            }
        })
        .map_err(|e| e.to_string())?;
    if let Some(prefix) = &opts.telemetry {
        let sink = EventSink::to_file(format!("{prefix}.jsonl"))
            .map_err(|e| format!("cannot open {prefix}.jsonl: {e}"))?;
        // The trail should include the per-tick Debug events, not just
        // violations; operators narrow it with per-target levels instead.
        sink.set_default_level(Level::Debug);
        service.set_event_sink(Arc::new(sink));
    }
    Ok(service)
}

/// Echo-probes every qospath destination and prints RTT p50/p99 (derived
/// from the `netqos_monitor_path_rtt_us` histogram) as `#`-prefixed
/// summary lines after the CSV body.
fn print_latency_summary(
    service: &mut MonitoringService,
    qos_paths: &[spec::QosPathSpec],
) -> Result<(), String> {
    for q in qos_paths {
        let _ = service
            .net_mut()
            .measure_rtt(q.to, 8, 64, SimDuration::from_millis(250));
    }
    let rtt = service.telemetry().path_rtt_us.clone();
    if rtt.count() > 0 {
        println!(
            "# path_rtt: p50 {:.3} ms, p99 {:.3} ms over {} probes ({} lost)",
            rtt.quantile(0.5) as f64 / 1000.0,
            rtt.quantile(0.99) as f64 / 1000.0,
            rtt.count(),
            service.telemetry().probes_lost.get(),
        );
    }
    Ok(())
}

fn write_telemetry_files(service: &MonitoringService, prefix: &str) -> Result<(), String> {
    let prom_path = format!("{prefix}.prom");
    std::fs::write(&prom_path, service.registry().render_prometheus())
        .map_err(|e| format!("cannot write {prom_path}: {e}"))?;
    service.event_sink().flush();
    Ok(())
}

fn cmd_monitor(args: &[String]) -> Result<(), String> {
    let (_, text) = read_spec(args)?;
    let model = spec::parse_and_validate(&text).map_err(|e| e.to_string())?;
    let qos_paths = model.qos_paths.clone();
    if qos_paths.is_empty() {
        return Err("the spec declares no qospath to monitor".into());
    }
    let opts = parse_monitor_options(args)?;
    let config = apply_service_options(ServiceConfig::default(), &opts)?;
    let mut service = build_service(model, &opts, config)?;
    if let Some(warning) = service.baseline_load_warning() {
        eprintln!("netqos: baseline state ignored: {warning}");
    }
    if let Some(warning) = service.lts_open_warning() {
        eprintln!("netqos: {warning}");
    }
    if wants_tracing(&opts) {
        service.set_tracing(true);
    }
    let pusher = start_otlp_push(&mut service, &opts)?;
    let webhook = start_alert_webhook(&mut service, &opts)?;
    let plane = start_serve_plane(&service, &opts)?;

    // Header.
    print!("t_s");
    for q in &qos_paths {
        print!(",{}_used_kBps,{}_avail_kBps", q.name, q.name);
    }
    println!();

    let start = service.net_mut().lan.now();
    for _ in 0..opts.duration {
        service.tick().map_err(|e| e.to_string())?;
        let t_s = service
            .net_mut()
            .lan
            .now()
            .duration_since(start)
            .as_secs_f64();
        print!("{t_s:.0}");
        for q in &qos_paths {
            match service.monitor().path_bandwidth(q.from, q.to) {
                Ok(bw) => print!(
                    ",{:.1},{:.1}",
                    bw.used_bps as f64 / 8000.0,
                    bw.available_bps as f64 / 8000.0
                ),
                Err(_) => print!(",,"),
            }
        }
        println!();
        if opts.pace_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(opts.pace_ms));
        }
    }

    print_latency_summary(&mut service, &qos_paths)?;
    if service
        .persist_baselines()
        .map_err(|e| format!("cannot save baseline state: {e}"))?
    {
        eprintln!(
            "baseline state saved to {}",
            opts.baseline_state.as_ref().unwrap().display()
        );
    }
    // Final long-term store flush so the run's tail is on disk (and
    // queryable by `netqos lts` / the next run) before exit.
    if service.flush_lts().is_some() {
        eprintln!(
            "long-term stats flushed to {}",
            opts.lts.as_ref().unwrap().display()
        );
    }
    if let Some(prefix) = &opts.telemetry {
        write_telemetry_files(&service, prefix)?;
        eprintln!("telemetry written to {prefix}.prom and {prefix}.jsonl");
    }
    if let Some(pusher) = pusher {
        finish_otlp_push(&mut service, pusher);
    }
    if let Some(hook) = webhook {
        finish_alert_webhook(hook);
    }
    if let Some(plane) = plane {
        plane.live.mark_finished();
        // Linger so a scraper that started this run can still read the
        // final state (the smoke job curls after the CSV ends).
        if opts.pace_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(opts.pace_ms.min(500)));
        }
        eprintln!("served {} request(s)", plane.server.requests_served());
        plane.server.stop();
    }
    Ok(())
}

/// Runs one monitoring shard per spec file, each on its own thread,
/// behind a single federated export plane. Shard names come from the
/// spec file stems (deduplicated); the merged `/metrics` carries every
/// shard's series labelled `shard="..."` plus unlabelled aggregates,
/// `/healthz` is 503 if any shard stalls, and `/snapshot` lists every
/// shard's tick digest.
fn cmd_federate(args: &[String]) -> Result<(), String> {
    // Positional spec paths first, then options (shared with monitor).
    let mut specs = Vec::new();
    let mut rest = 0;
    while rest < args.len() && !args[rest].starts_with("--") {
        specs.push(args[rest].clone());
        rest += 1;
    }
    if specs.len() < 2 {
        return Err(format!(
            "federate needs at least two <spec> files (got {})\n{USAGE}",
            specs.len()
        ));
    }
    // parse_monitor_options skips args[0] (the spec slot); hand it the
    // last positional so only the options after it are parsed.
    let opts = parse_monitor_options(&args[specs.len() - 1..])?;
    for flag in [
        "--load",
        "--telemetry",
        "--otlp-push",
        "--alert-webhook",
        "--baseline-state",
    ] {
        if args.iter().any(|a| a == flag) {
            return Err(format!(
                "{flag} is not supported under federate (per-shard state)"
            ));
        }
    }

    // Shard names: file stems, deduplicated by suffixing an index.
    let mut names: Vec<String> = Vec::new();
    for path in &specs {
        let stem = std::path::Path::new(path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        let mut name = stem.clone();
        let mut n = 2;
        while names.contains(&name) {
            name = format!("{stem}-{n}");
            n += 1;
        }
        names.push(name);
    }

    // Each shard builds and runs its service inside its own thread
    // (the service itself never crosses threads); only the registry and
    // live-status handles come back for federation.
    let fed = netqos_telemetry::ShardRegistry::new();
    type ShardHandles = (
        String,
        Arc<netqos_telemetry::Registry>,
        Arc<netqos::monitor::live::LiveStatus>,
        Arc<netqos_telemetry::ProfileHub>,
    );
    let (handle_tx, handle_rx) = std::sync::mpsc::channel::<Result<ShardHandles, String>>();
    let mut workers = Vec::new();
    for (name, path) in names.iter().cloned().zip(specs.iter().cloned()) {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let tx = handle_tx.clone();
        let shard_opts = MonitorOptions {
            duration: opts.duration,
            loads: Vec::new(),
            telemetry: None,
            out: None,
            serve: None,
            pace_ms: opts.pace_ms,
            trace_sample: opts.trace_sample,
            trace_adaptive: opts.trace_adaptive,
            otlp_push: None,
            otlp_push_delta: false,
            alert_rules: opts.alert_rules.clone(),
            alert_webhook: None,
            baseline_state: None,
            baseline_save_ticks: opts.baseline_save_ticks,
            // Each shard keeps its own store under DIR/<shard>, the
            // same layout the federated /query?shard=NAME reads.
            lts: opts.lts.as_ref().map(|d| d.join(&name)),
            lts_compact: opts.lts_compact,
            record_rules: opts.record_rules.clone(),
            slow_query_ms: opts.slow_query_ms,
        };
        let worker = std::thread::Builder::new()
            .name(format!("netqos-shard-{name}"))
            .spawn(move || -> Result<(String, u64, usize), String> {
                let build = (|| -> Result<MonitoringService, String> {
                    let model =
                        spec::parse_and_validate(&text).map_err(|e| format!("{path}: {e}"))?;
                    if model.qos_paths.is_empty() {
                        return Err(format!("{path}: declares no qospath to monitor"));
                    }
                    let config = apply_service_options(ServiceConfig::default(), &shard_opts)?;
                    let mut service = build_service(model, &shard_opts, config)?;
                    if wants_tracing(&shard_opts) {
                        service.set_tracing(true);
                    }
                    Ok(service)
                })();
                let mut service = match build {
                    Ok(service) => {
                        let live = service.live().clone();
                        live.set_stale_after_ns(
                            (shard_opts.pace_ms.saturating_mul(10_000_000)).max(2_000_000_000),
                        );
                        let _ = tx.send(Ok((
                            name.clone(),
                            service.registry().clone(),
                            live,
                            service.profile().clone(),
                        )));
                        // Close this worker's sender now: the main
                        // thread serves as soon as every shard has
                        // checked in, not when the runs end.
                        drop(tx);
                        service
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e.clone()));
                        return Err(e);
                    }
                };
                let mut violations = 0usize;
                for _ in 0..shard_opts.duration {
                    for event in service.tick().map_err(|e| format!("{name}: {e}"))? {
                        if matches!(event, netqos::monitor::qos::QosEvent::Violated { .. }) {
                            violations += 1;
                        }
                    }
                    if shard_opts.pace_ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(shard_opts.pace_ms));
                    }
                }
                service.flush_lts();
                service.live().mark_finished();
                Ok((name, service.telemetry().ticks.get(), violations))
            })
            .map_err(|e| format!("cannot spawn shard thread: {e}"))?;
        workers.push(worker);
    }
    drop(handle_tx);

    // Register every shard before serving, so the first scrape already
    // sees the whole federation.
    let mut startup_errors = Vec::new();
    for handles in handle_rx {
        match handles {
            Ok((name, registry, live, profile)) => {
                let mut shard =
                    netqos::monitor::live::shard_for(name.clone(), registry.clone(), live);
                // /profile?shard=NAME serves this shard's phase tree;
                // the hub only fills while the shard traces.
                if wants_tracing(&opts) {
                    shard = shard
                        .with_profile(move |req| netqos_telemetry::profile_response(&profile, req));
                }
                // The cross-shard /api/v1 engine reads each shard's
                // store from disk when one exists, else answers instant
                // queries from the shard's live registry.
                let source: Arc<dyn netqos_telemetry::SeriesSource> = match &opts.lts {
                    Some(root) => Arc::new(netqos_telemetry::LtsSource::new(
                        netqos_telemetry::LtsReader::open(root.join(&name)),
                    )),
                    None => Arc::new(netqos_telemetry::RegistrySource::new(registry)),
                };
                shard = shard.with_promql(source);
                if let Some(root) = &opts.lts {
                    let reader = netqos_telemetry::LtsReader::open(root.join(&name));
                    shard = shard
                        .with_query(move |req| netqos::monitor::live::query_response(&reader, req));
                }
                fed.register(shard).map_err(|e| e.to_string())?;
            }
            Err(e) => startup_errors.push(e),
        }
    }
    if !startup_errors.is_empty() {
        for w in workers {
            let _ = w.join();
        }
        return Err(startup_errors.join("\n"));
    }

    let addr = opts.serve.clone().unwrap_or_else(|| "127.0.0.1:0".into());
    let server = netqos_telemetry::HttpServer::serve(addr.as_str(), fed.router())
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    eprintln!(
        "federation serving http://{}/ ({} shards: metrics, healthz, snapshot)",
        server.local_addr(),
        fed.len()
    );

    let mut failures = Vec::new();
    for worker in workers {
        match worker.join() {
            Ok(Ok((name, ticks, violations))) => {
                println!("shard {name}: {ticks} ticks, {violations} violation(s)");
            }
            Ok(Err(e)) => failures.push(e),
            Err(_) => failures.push("shard thread panicked".into()),
        }
    }
    // Linger so a scraper started alongside this run can still read the
    // final merged state.
    if opts.pace_ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(opts.pace_ms.min(500)));
    }
    eprintln!("served {} request(s)", server.requests_served());
    server.stop();
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

/// Lints an alert rules file: parses it and echoes every rule in
/// canonical form, or lists the built-in rules with `--builtin`.
/// Nonzero exit (with `file:line:` context) on the first syntax error,
/// so CI can gate on rules files the way it gates on specs.
fn cmd_alerts(args: &[String]) -> Result<(), String> {
    if args.first().map(|s| s.as_str()) == Some("--builtin") {
        for rule in netqos_telemetry::builtin_alert_rules() {
            println!("{rule}");
        }
        return Ok(());
    }
    let path = args
        .first()
        .ok_or_else(|| format!("missing <rules> argument (or --builtin)\n{USAGE}"))?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let rules = netqos_telemetry::parse_alert_rules(&src).map_err(|e| format!("{path}: {e}"))?;
    if rules.is_empty() {
        return Err(format!("{path}: no rules found"));
    }
    for rule in &rules {
        println!("{rule}");
    }
    eprintln!("{path}: {} rule(s) OK", rules.len());
    Ok(())
}

/// `netqos record lint FILE`: parse a recording-rules file and echo
/// each rule back, mirroring what `netqos alerts` does for alert rules.
fn cmd_record(args: &[String]) -> Result<(), String> {
    let sub = args
        .first()
        .ok_or_else(|| format!("missing record subcommand (try `record lint FILE`)\n{USAGE}"))?;
    if sub != "lint" {
        return Err(format!("unknown record subcommand `{sub}`\n{USAGE}"));
    }
    let path = args
        .get(1)
        .ok_or_else(|| format!("missing <rules> argument\n{USAGE}"))?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let rules = netqos_telemetry::parse_record_rules(&src).map_err(|e| format!("{path}: {e}"))?;
    if rules.is_empty() {
        return Err(format!("{path}: no rules found"));
    }
    for rule in &rules {
        println!("record: {}", rule.name);
        println!("expr: {}", rule.expr);
    }
    eprintln!("{path}: {} rule(s) OK", rules.len());
    Ok(())
}

/// Runs the monitor for `--duration` simulated seconds without the CSV
/// body and prints the telemetry registry in Prometheus text format —
/// the monitor monitoring itself, on demand.
fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (_, text) = read_spec(args)?;
    let model = spec::parse_and_validate(&text).map_err(|e| e.to_string())?;
    if model.qos_paths.is_empty() {
        return Err("the spec declares no qospath to monitor".into());
    }
    let qos_paths = model.qos_paths.clone();
    let opts = parse_monitor_options(args)?;
    let mut service = build_service(model, &opts, ServiceConfig::default())?;
    for _ in 0..opts.duration {
        service.tick().map_err(|e| e.to_string())?;
    }
    for q in &qos_paths {
        let _ = service
            .net_mut()
            .measure_rtt(q.to, 8, 64, SimDuration::from_millis(250));
    }
    print!("{}", service.registry().render_prometheus());
    if let Some(prefix) = &opts.telemetry {
        write_telemetry_files(&service, prefix)?;
    }
    Ok(())
}

fn cmd_audit(args: &[String]) -> Result<(), String> {
    let (_, text) = read_spec(args)?;
    let model = spec::parse_and_validate(&text).map_err(|e| e.to_string())?;
    let topology = model.topology.clone();
    let monitor_host = model
        .snmp_nodes()
        .into_iter()
        .find(|&n| topology.node(n).map(|x| x.kind.is_host()).unwrap_or(false))
        .ok_or("no SNMP-capable host to run the audit from")?;
    let options = SimNetworkOptions {
        monitor_host: topology
            .node(monitor_host)
            .map_err(|e| e.to_string())?
            .name
            .clone(),
        ..SimNetworkOptions::default()
    };
    let mut net = SimNetwork::from_model(model, options).map_err(|e| e.to_string())?;

    // Make every agent transmit once so switches learn their MACs.
    let mut monitor = NetworkMonitor::new(topology);
    let _ = net.poll_round(&mut monitor);

    let findings = discovery::audit(&mut net).map_err(|e| e.to_string())?;
    if findings.is_empty() {
        println!("no managed switches to audit");
        return Ok(());
    }
    let mut mismatches = 0;
    for f in &findings {
        let verdict = match &f.verdict {
            Verdict::Confirmed => "CONFIRMED".to_owned(),
            Verdict::Unverified => "unverified".to_owned(),
            Verdict::Mismatch {
                specified_port,
                learned_port,
            } => {
                mismatches += 1;
                format!("MISMATCH (spec: port {specified_port}, learned: port {learned_port})")
            }
        };
        println!("{:<40} {verdict}", f.description);
    }
    if mismatches > 0 {
        Err(format!(
            "{mismatches} connection(s) contradict the specification"
        ))
    } else {
        Ok(())
    }
}

/// Runs the monitor with causal tracing on and writes the flight
/// recorder to `--out DIR` (default `flight/`): `last.jsonl` +
/// `last.trace.json` always hold the newest snapshot, and each QoS
/// violation additionally leaves a tagged `flight-<seq>.*` pair behind.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    let (_, text) = read_spec(args)?;
    let model = spec::parse_and_validate(&text).map_err(|e| e.to_string())?;
    if model.qos_paths.is_empty() {
        return Err("the spec declares no qospath to trace".into());
    }
    let qos_paths = model.qos_paths.clone();
    let opts = parse_monitor_options(args)?;
    let out = opts.out.clone().unwrap_or_else(|| PathBuf::from("flight"));
    let config = apply_service_options(
        ServiceConfig {
            flight_dir: Some(out.clone()),
            ..ServiceConfig::default()
        },
        &opts,
    )?;
    let mut service = build_service(model, &opts, config)?;
    if let Some(warning) = service.baseline_load_warning() {
        eprintln!("netqos: baseline state ignored: {warning}");
    }
    if let Some(warning) = service.lts_open_warning() {
        eprintln!("netqos: {warning}");
    }
    service.set_tracing(true);
    let mut violations = 0usize;
    for _ in 0..opts.duration {
        for event in service.tick().map_err(|e| e.to_string())? {
            if matches!(event, netqos::monitor::qos::QosEvent::Violated { .. }) {
                violations += 1;
            }
        }
    }
    let cycles = service.flight().snapshot();
    if cycles.is_empty() {
        return Err("no cycles were traced (duration 0?)".into());
    }
    // Final snapshot regardless of violations, so every run leaves a
    // loadable trace behind.
    let tag = cycles.last().map(|c| c.seq).unwrap_or(0);
    let paths = netqos_telemetry::write_snapshot(&out, tag, &cycles)
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    let spans: usize = cycles.iter().map(|c| c.spans.len()).sum();
    println!(
        "traced {} cycles ({spans} spans), {violations} violation(s), {} snapshot(s) on violation",
        cycles.len(),
        service.snapshots().len(),
    );
    for q in &qos_paths {
        if let Some(b) = service.path_baseline(&q.name) {
            println!(
                "baseline {}: p50 {:.1} kB/s, p99 {:.1} kB/s over {} samples",
                q.name,
                b.quantile(0.5) as f64 / 8000.0,
                b.quantile(0.99) as f64 / 8000.0,
                b.count(),
            );
        }
    }
    println!("jsonl:  {}", paths.jsonl.display());
    println!("chrome: {}", paths.chrome.display());
    println!("otlp:   {}", paths.otlp.display());
    service.flush_lts();
    if service
        .persist_baselines()
        .map_err(|e| format!("cannot save baseline state: {e}"))?
    {
        eprintln!(
            "baseline state saved to {}",
            opts.baseline_state.as_ref().unwrap().display()
        );
    }
    if let Some(prefix) = &opts.telemetry {
        write_telemetry_files(&service, prefix)?;
    }
    Ok(())
}

/// Inspects flight-recorder snapshots: `dump` re-emits a JSONL snapshot
/// as Chrome `trace_event` JSON (or OTLP/JSON with `--otlp`), `show`
/// prints a per-cycle summary, and `check` validates a Chrome trace or
/// OTLP export file (used by CI).
fn cmd_flight(args: &[String]) -> Result<(), String> {
    let sub = args
        .first()
        .ok_or_else(|| format!("missing flight subcommand\n{USAGE}"))?;
    let path = args
        .get(1)
        .ok_or_else(|| format!("missing PATH argument\n{USAGE}"))?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    match sub.as_str() {
        "dump" => {
            let cycles =
                netqos_telemetry::cycles_from_jsonl(&src).map_err(|e| format!("{path}: {e}"))?;
            if args.iter().any(|a| a == "--otlp") {
                // No trailing newline: the output is byte-identical to
                // the `*.otlp.json` the live run wrote.
                print!("{}", netqos_telemetry::parsed_to_otlp(&cycles));
            } else {
                print!("{}", netqos_telemetry::parsed_to_chrome_trace(&cycles));
            }
            Ok(())
        }
        "show" => {
            let cycles =
                netqos_telemetry::cycles_from_jsonl(&src).map_err(|e| format!("{path}: {e}"))?;
            println!("{} cycle(s) in {path}", cycles.len());
            for c in &cycles {
                let dur_us = c.end_ns.saturating_sub(c.start_ns) / 1_000;
                println!(
                    "cycle {:>4}  trace {:#018x}  {:>7} µs  {:>3} spans",
                    c.seq,
                    c.trace_id,
                    dur_us,
                    c.spans.len()
                );
                for s in &c.samples {
                    println!(
                        "    {}: used {:.1} kB/s (rank {:.3}, baseline p50 {:.1} p99 {:.1}) on {}",
                        s.path,
                        s.used_bps as f64 / 8000.0,
                        s.used_rank,
                        s.baseline_p50 as f64 / 8000.0,
                        s.baseline_p99 as f64 / 8000.0,
                        s.connection,
                    );
                }
                for e in &c.events {
                    println!("    ! {e}");
                }
            }
            Ok(())
        }
        "check" => {
            // Sniff the format: OTLP exports start with a resourceSpans
            // document; everything else is treated as Chrome trace JSON.
            if src.trim_start().starts_with("{\"resourceSpans\"") {
                let stats =
                    netqos_telemetry::validate_otlp(&src).map_err(|e| format!("{path}: {e}"))?;
                println!(
                    "{path}: OK — OTLP, {} spans, {} traces, {} child spans",
                    stats.spans, stats.traces, stats.child_spans
                );
            } else {
                let stats = validate_trace_file(path, &src)?;
                println!(
                    "{path}: OK — {} events, {} spans, {} cycles",
                    stats.events, stats.spans, stats.cycles
                );
            }
            Ok(())
        }
        other => Err(format!("unknown flight subcommand `{other}`\n{USAGE}")),
    }
}

fn validate_trace_file(
    path: &str,
    src: &str,
) -> Result<netqos_telemetry::ChromeTraceStats, String> {
    netqos_telemetry::validate_chrome_trace(src).map_err(|e| format!("{path}: {e}"))
}

/// Renders a monitor's tick-phase profile: online from a live (or
/// federated) export plane's `GET /profile`, or offline by folding a
/// flight-recorder JSONL snapshot through the same profiler the live
/// endpoint uses — identical span stream, identical document.
fn cmd_profile(args: &[String]) -> Result<(), String> {
    let mut url: Option<String> = None;
    let mut file: Option<String> = None;
    let mut shard: Option<String> = None;
    let mut window: Option<usize> = None;
    let mut format = String::from("json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--url" => {
                i += 1;
                url = Some(args.get(i).ok_or("--url needs http://host:port")?.clone());
            }
            "--shard" => {
                i += 1;
                shard = Some(args.get(i).ok_or("--shard needs a shard name")?.clone());
            }
            "--window" => {
                i += 1;
                window = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|n| *n > 0)
                        .ok_or("--window needs a positive cycle count")?,
                );
            }
            "--format" => {
                i += 1;
                format = args.get(i).ok_or("--format needs json or folded")?.clone();
            }
            other if !other.starts_with("--") && file.is_none() => {
                file = Some(other.to_string());
            }
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
        i += 1;
    }
    if !matches!(format.as_str(), "json" | "folded") {
        return Err(format!("bad --format `{format}` (expected json or folded)"));
    }
    if url.is_some() == file.is_some() {
        return Err(format!(
            "profile needs exactly one of --url http://host:port or PATH.jsonl\n{USAGE}"
        ));
    }

    if let Some(url) = url {
        let (host, port) = parse_base_url(&url)?;
        let mut path = format!("/profile?format={format}");
        if let Some(name) = &shard {
            path.push_str(&format!("&shard={}", percent_encode(name)));
        }
        let (status, body) = netqos_telemetry::http_get(&host, port, &path)
            .map_err(|e| format!("{host}:{port}: {e}"))?;
        if status != 200 {
            return Err(format!("profile failed (HTTP {status}): {}", body.trim()));
        }
        print!("{body}");
        return Ok(());
    }

    if shard.is_some() {
        return Err("--shard only applies with --url (offline snapshots are one shard)".into());
    }
    let path = file.unwrap();
    let src = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let cycles = netqos_telemetry::cycles_from_jsonl(&src).map_err(|e| format!("{path}: {e}"))?;
    // Default window: the whole snapshot, so offline analysis sees every
    // recorded cycle (a live hub rolls at DEFAULT_PROFILE_WINDOW).
    let hub = netqos_telemetry::ProfileHub::new(window.unwrap_or(cycles.len().max(1)));
    for cycle in &cycles {
        hub.record_parsed(&cycle.spans);
    }
    match format.as_str() {
        "folded" => print!("{}", hub.to_folded()),
        _ => print!("{}", hub.to_json()),
    }
    Ok(())
}

/// Emits a synthetic ISP-scale topology spec (see
/// `netqos_spec::generate_spec`); validated before it leaves the tool
/// so the output is always monitor-ready.
fn cmd_gen_topology(args: &[String]) -> Result<(), String> {
    let mut params = spec::GenParams::default();
    let mut out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let parse_n = |args: &[String], i: usize, what: &str| -> Result<usize, String> {
            args.get(i)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("{what} needs a number"))
        };
        match args[i].as_str() {
            "--hosts" => {
                i += 1;
                params.hosts = parse_n(args, i, "--hosts")?;
                if params.hosts == 0 {
                    return Err("--hosts needs at least 1".into());
                }
            }
            "--hosts-per-ap" => {
                i += 1;
                params.hosts_per_ap = parse_n(args, i, "--hosts-per-ap")?;
                if !(1..=249).contains(&params.hosts_per_ap) {
                    return Err("--hosts-per-ap must be 1..=249".into());
                }
            }
            "--aps-per-site" => {
                i += 1;
                params.aps_per_site = parse_n(args, i, "--aps-per-site")?;
                if params.aps_per_site == 0 {
                    return Err("--aps-per-site needs at least 1".into());
                }
            }
            "--hub-every" => {
                i += 1;
                params.hub_every = parse_n(args, i, "--hub-every")?;
            }
            "--qos-paths" => {
                i += 1;
                params.qos_paths = parse_n(args, i, "--qos-paths")?;
            }
            "--out" => {
                i += 1;
                out = Some(PathBuf::from(args.get(i).ok_or("--out needs a file path")?));
            }
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
        i += 1;
    }
    let src = spec::generate_spec(&params);
    let model = spec::parse_and_validate(&src)
        .map_err(|e| format!("internal error: generated spec does not validate: {e}"))?;
    eprintln!(
        "generated {} node(s): {} host(s), {} access point(s), {} site(s), {} qospath(s)",
        model.topology.node_count(),
        params.hosts,
        params.ap_count(),
        params.site_count(),
        model.qos_paths.len()
    );
    match out {
        Some(path) => {
            std::fs::write(&path, &src)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!("wrote {}", path.display());
        }
        None => print!("{src}"),
    }
    Ok(())
}

/// Compares two unified `BENCH_*.json` documents and fails when any
/// shared metric regresses beyond the tolerance. Direction comes from
/// the metric-name suffix: `*_per_sec` should not drop, `*_ns` and
/// `*_bytes` should not grow; other metrics are informational.
fn cmd_bench(args: &[String]) -> Result<(), String> {
    let sub = args
        .first()
        .ok_or_else(|| format!("missing bench subcommand\n{USAGE}"))?;
    if sub != "check" {
        return Err(format!("unknown bench subcommand `{sub}`\n{USAGE}"));
    }
    let old_path = args
        .get(1)
        .ok_or_else(|| format!("bench check needs OLD.json NEW.json\n{USAGE}"))?;
    let new_path = args
        .get(2)
        .ok_or_else(|| format!("bench check needs OLD.json NEW.json\n{USAGE}"))?;
    let mut tolerance = 10.0f64;
    let mut i = 3;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|t: &f64| *t >= 0.0)
                    .ok_or("--tolerance needs a non-negative percentage")?;
            }
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
        i += 1;
    }

    let load = |path: &str| -> Result<netqos_telemetry::JsonValue, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let doc = netqos_telemetry::parse_json(&text).map_err(|e| format!("{path}: {e}"))?;
        match doc.get("schema").and_then(|v| v.as_str()) {
            Some("netqos-bench/v1") => Ok(doc),
            Some(other) => Err(format!("{path}: unsupported schema `{other}`")),
            None => Err(format!(
                "{path}: not a netqos-bench/v1 document (missing \"schema\")"
            )),
        }
    };
    let old_doc = load(old_path)?;
    let new_doc = load(new_path)?;

    // Row name -> metric name -> value.
    let rows_of = |doc: &netqos_telemetry::JsonValue| -> Vec<(String, Vec<(String, f64)>)> {
        let mut rows = Vec::new();
        for row in doc
            .get("rows")
            .and_then(|v| v.as_array())
            .unwrap_or_default()
        {
            let Some(name) = row.get("name").and_then(|v| v.as_str()) else {
                continue;
            };
            let mut metrics = Vec::new();
            if let Some(netqos_telemetry::JsonValue::Object(m)) = row.get("metrics") {
                for (k, v) in m {
                    if let Some(x) = v.as_f64() {
                        metrics.push((k.clone(), x));
                    }
                }
            }
            rows.push((name.to_string(), metrics));
        }
        rows
    };
    let old_rows = rows_of(&old_doc);
    let new_rows = rows_of(&new_doc);

    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for (name, old_metrics) in &old_rows {
        let Some((_, new_metrics)) = new_rows.iter().find(|(n, _)| n == name) else {
            println!("{name}: only in {old_path}, skipped");
            continue;
        };
        for (metric, old_v) in old_metrics {
            let Some((_, new_v)) = new_metrics.iter().find(|(m, _)| m == metric) else {
                println!("{name}/{metric}: only in {old_path}, skipped");
                continue;
            };
            let higher_better = metric.ends_with("_per_sec");
            let lower_better = metric.ends_with("_ns") || metric.ends_with("_bytes");
            if !higher_better && !lower_better {
                continue;
            }
            // A worst-single-iteration figure is scheduler jitter, not a
            // code property; report it but gate on the percentiles.
            if metric.ends_with("max_ns") {
                let change_pct = if *old_v != 0.0 {
                    (new_v - old_v) / old_v * 100.0
                } else {
                    0.0
                };
                println!(
                    "{name}/{metric}: {old_v:.0} -> {new_v:.0} ({change_pct:+.1}%) informational"
                );
                continue;
            }
            compared += 1;
            let change_pct = if *old_v != 0.0 {
                (new_v - old_v) / old_v * 100.0
            } else {
                0.0
            };
            let regressed = if higher_better {
                *new_v < old_v * (1.0 - tolerance / 100.0)
            } else {
                *new_v > old_v * (1.0 + tolerance / 100.0)
            };
            let verdict = if regressed { "REGRESSION" } else { "ok" };
            println!("{name}/{metric}: {old_v:.0} -> {new_v:.0} ({change_pct:+.1}%) {verdict}");
            if regressed {
                regressions.push(format!("{name}/{metric} ({change_pct:+.1}%)"));
            }
        }
    }
    for (name, _) in &new_rows {
        if !old_rows.iter().any(|(n, _)| n == name) {
            println!("{name}: only in {new_path}, skipped");
        }
    }
    if compared == 0 {
        return Err("no comparable metrics between the two documents".into());
    }
    if regressions.is_empty() {
        println!("bench check: OK — {compared} metric(s) within {tolerance}% of {old_path}");
        Ok(())
    } else {
        Err(format!(
            "bench check: {} regression(s) beyond {tolerance}%: {}",
            regressions.len(),
            regressions.join(", ")
        ))
    }
}

/// Offline tools for a long-term stats store: `info` summarizes it,
/// `verify` checks its invariants (CI-friendly nonzero exit), `compact`
/// rewrites every series into one canonical segment per resolution, and
/// `query` prints the same JSON document the live `GET /query` serves.
/// Current Unix time in seconds (0 on a pre-1970 clock).
fn unix_now_s() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Percent-encodes a query-string value (everything but unreserved
/// characters), so PromQL operators like `{`, `"` and spaces survive the
/// trip through a URL.
fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => {
                out.push('%');
                out.push_str(&format!("{b:02X}"));
            }
        }
    }
    out
}

/// Splits `http://host:port[/...]` (scheme optional) into host and port.
fn parse_base_url(url: &str) -> Result<(String, u16), String> {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    let authority = rest.split('/').next().unwrap_or(rest);
    let (host, port) = authority
        .rsplit_once(':')
        .ok_or_else(|| format!("--url needs http://host:port (got `{url}`)"))?;
    let port: u16 = port
        .parse()
        .map_err(|_| format!("bad port in --url `{url}`"))?;
    if host.is_empty() {
        return Err(format!("--url needs http://host:port (got `{url}`)"));
    }
    Ok((host.to_string(), port))
}

/// One CSV field: quoted (with doubled inner quotes) only when needed.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders an `/api/v1` metric object (`{"__name__":...,"path":...}`)
/// back into selector notation: `name{label="value",...}`.
fn render_metric(metric: &netqos_telemetry::JsonValue) -> String {
    let netqos_telemetry::JsonValue::Object(m) = metric else {
        return String::new();
    };
    let name = m
        .get("__name__")
        .and_then(|v| v.as_str())
        .unwrap_or_default();
    let labels: Vec<String> = m
        .iter()
        .filter(|(k, _)| k.as_str() != "__name__")
        .map(|(k, v)| {
            format!(
                "{k}={}",
                netqos_telemetry::json_escape(v.as_str().unwrap_or_default())
            )
        })
        .collect();
    if labels.is_empty() {
        if name.is_empty() {
            "{}".to_string()
        } else {
            name.to_string()
        }
    } else {
        format!("{name}{{{}}}", labels.join(","))
    }
}

/// Reshapes an `/api/v1/query[_range]` response body: `json` passes it
/// through, `prom` emits Prometheus text lines (`metric value t_ms`),
/// `csv` emits `series,t,value` rows.
fn format_api_query(body: &str, format: &str) -> Result<String, String> {
    if format == "json" {
        let mut out = body.to_string();
        if !out.ends_with('\n') {
            out.push('\n');
        }
        return Ok(out);
    }
    if format != "prom" && format != "csv" {
        return Err(format!(
            "bad --format `{format}` (expected json, prom or csv)"
        ));
    }
    let doc = netqos_telemetry::parse_json(body).map_err(|e| format!("bad response JSON: {e}"))?;
    let data = doc
        .get("data")
        .ok_or("response has no `data` (was the query rejected?)")?;
    let rtype = data
        .get("resultType")
        .and_then(|v| v.as_str())
        .unwrap_or_default();
    let empty = netqos_telemetry::JsonValue::Null;
    let mut out = String::new();
    if format == "csv" {
        out.push_str("series,t,value\n");
    }
    let mut push_sample = |series: &str, t: f64, v: &str| {
        if format == "csv" {
            out.push_str(&format!("{},{t},{v}\n", csv_field(series)));
        } else {
            out.push_str(&format!("{series} {v} {}\n", (t * 1000.0) as i64));
        }
    };
    match rtype {
        "scalar" => {
            let pair = data.get("result").and_then(|v| v.as_array());
            if let Some([t, v]) = pair.and_then(|p| <&[_; 2]>::try_from(p).ok()) {
                push_sample(
                    "scalar",
                    t.as_f64().unwrap_or(0.0),
                    v.as_str().unwrap_or_default(),
                );
            }
        }
        "vector" => {
            for item in data
                .get("result")
                .and_then(|v| v.as_array())
                .unwrap_or_default()
            {
                let series = render_metric(item.get("metric").unwrap_or(&empty));
                if let Some([t, v]) = item
                    .get("value")
                    .and_then(|v| v.as_array())
                    .and_then(|p| <&[_; 2]>::try_from(p).ok())
                {
                    push_sample(
                        &series,
                        t.as_f64().unwrap_or(0.0),
                        v.as_str().unwrap_or_default(),
                    );
                }
            }
        }
        "matrix" => {
            for item in data
                .get("result")
                .and_then(|v| v.as_array())
                .unwrap_or_default()
            {
                let series = render_metric(item.get("metric").unwrap_or(&empty));
                for pair in item
                    .get("values")
                    .and_then(|v| v.as_array())
                    .unwrap_or_default()
                {
                    if let Some([t, v]) = pair.as_array().and_then(|p| <&[_; 2]>::try_from(p).ok())
                    {
                        push_sample(
                            &series,
                            t.as_f64().unwrap_or(0.0),
                            v.as_str().unwrap_or_default(),
                        );
                    }
                }
            }
        }
        other => return Err(format!("unexpected resultType `{other}`")),
    }
    Ok(out)
}

/// Reshapes a `netqos lts query` / `GET /query` response body. Counter
/// and gauge points become one line/row each; a histogram point fans out
/// into `_count`/`_sum` series plus `quantile="0.5"`/`"0.99"` samples,
/// mirroring the Prometheus summary idiom.
fn format_store_query(body: &str, format: &str) -> Result<String, String> {
    if format == "json" {
        let mut out = body.to_string();
        if !out.ends_with('\n') {
            out.push('\n');
        }
        return Ok(out);
    }
    if format != "prom" && format != "csv" {
        return Err(format!(
            "bad --format `{format}` (expected json, prom or csv)"
        ));
    }
    let doc = netqos_telemetry::parse_json(body).map_err(|e| format!("bad store JSON: {e}"))?;
    let mut out = String::new();
    if format == "csv" {
        out.push_str("series,t,value\n");
    }
    let mut push_sample = |series: &str, t: u64, v: String| {
        if format == "csv" {
            out.push_str(&format!("{},{t},{v}\n", csv_field(series)));
        } else {
            out.push_str(&format!("{series} {v} {}\n", t * 1000));
        }
    };
    // `name` carries its label set inline (`base{k="v"}`), so derived
    // histogram series re-split it to graft `_count` / `quantile=` on.
    let derived = |name: &str, suffix: &str, extra: Option<(&str, &str)>| -> String {
        let (base, labels) = netqos_telemetry::parse_series_name(name);
        let mut parts: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}={}", netqos_telemetry::json_escape(v)))
            .collect();
        if let Some((k, v)) = extra {
            parts.push(format!("{k}=\"{v}\""));
        }
        if parts.is_empty() {
            format!("{base}{suffix}")
        } else {
            format!("{base}{suffix}{{{}}}", parts.join(","))
        }
    };
    for series in doc
        .get("series")
        .and_then(|v| v.as_array())
        .unwrap_or_default()
    {
        let name = series
            .get("name")
            .and_then(|v| v.as_str())
            .unwrap_or_default()
            .to_string();
        for point in series
            .get("points")
            .and_then(|v| v.as_array())
            .unwrap_or_default()
        {
            if let Some([t, v]) = point.as_array().and_then(|p| <&[_; 2]>::try_from(p).ok()) {
                // Counter/gauge: [t, value].
                push_sample(
                    &name,
                    t.as_u64().unwrap_or(0),
                    netqos_telemetry::fmt_value(v.as_f64().unwrap_or(0.0)),
                );
            } else if let Some(t) = point.get("t").and_then(|v| v.as_u64()) {
                // Histogram: {"t":..,"count":..,"sum":..,"p50":..,"p99":..}.
                for (field, suffix, quantile) in [
                    ("count", "_count", None),
                    ("sum", "_sum", None),
                    ("p50", "", Some(("quantile", "0.5"))),
                    ("p99", "", Some(("quantile", "0.99"))),
                ] {
                    if let Some(v) = point.get(field).and_then(|v| v.as_f64()) {
                        push_sample(
                            &derived(&name, suffix, quantile),
                            t,
                            netqos_telemetry::fmt_value(v),
                        );
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Evaluates a PromQL-subset expression offline against a long-term
/// store (`--lts DIR`) or online against a live monitor or federation
/// plane (`--url http://host:port`, proxied to `/api/v1/query[_range]`).
fn cmd_query(args: &[String]) -> Result<(), String> {
    let expr = args
        .first()
        .filter(|s| !s.starts_with("--"))
        .ok_or_else(|| format!("missing EXPR argument\n{USAGE}"))?
        .clone();
    let mut lts: Option<PathBuf> = None;
    let mut url: Option<String> = None;
    let mut time: Option<u64> = None;
    let mut range: Option<String> = None;
    let mut last: Option<u64> = None;
    let mut step: Option<String> = None;
    let mut format = String::from("json");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--lts" => {
                i += 1;
                lts = Some(PathBuf::from(
                    args.get(i).ok_or("--lts needs a directory path")?,
                ));
            }
            "--url" => {
                i += 1;
                url = Some(args.get(i).ok_or("--url needs http://host:port")?.clone());
            }
            "--time" => {
                i += 1;
                time = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--time needs a Unix timestamp in seconds")?,
                );
            }
            "--range" => {
                i += 1;
                range = Some(args.get(i).ok_or("--range needs START:END")?.clone());
            }
            "--last" => {
                i += 1;
                let spec = args.get(i).ok_or("--last needs a duration (e.g. 15m)")?;
                last =
                    Some(netqos_telemetry::parse_duration(spec).ok_or_else(|| {
                        format!("bad --last `{spec}` (expected e.g. 90s, 15m, 2h)")
                    })?);
            }
            "--step" => {
                i += 1;
                step = Some(
                    args.get(i)
                        .ok_or("--step needs a duration (e.g. 1m)")?
                        .clone(),
                );
            }
            "--format" => {
                i += 1;
                format = args
                    .get(i)
                    .ok_or("--format needs json, prom or csv")?
                    .clone();
            }
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
        i += 1;
    }
    if lts.is_some() == url.is_some() {
        return Err(format!(
            "query needs exactly one of --lts DIR or --url http://host:port\n{USAGE}"
        ));
    }
    if last.is_some() && range.is_some() {
        return Err("--last and --range are mutually exclusive".into());
    }
    let step_secs = match &step {
        Some(s) => netqos_telemetry::parse_duration(s)
            .filter(|n| *n > 0)
            .ok_or_else(|| format!("bad --step `{s}` (expected e.g. 1s, 1m, 1h)"))?,
        None => 60,
    };
    let is_range = last.is_some() || range.is_some();

    if let Some(dir) = lts {
        if !dir.is_dir() {
            return Err(format!("{}: no long-term store there", dir.display()));
        }
        let engine = netqos_telemetry::QueryEngine::new().with_source(
            None,
            Arc::new(netqos_telemetry::LtsSource::new(
                netqos_telemetry::LtsReader::open(&dir),
            )),
        );
        let outcome = if is_range {
            let (start, end) = match last {
                Some(window) => {
                    let end = engine.newest_t().unwrap_or_else(unix_now_s);
                    (end.saturating_sub(window.saturating_sub(1)), end)
                }
                None => {
                    let spec = range.as_deref().unwrap_or(":");
                    netqos_telemetry::parse_range(spec)
                        .ok_or_else(|| format!("bad --range `{spec}` (expected START:END)"))?
                }
            };
            engine.range(&expr, start, end, step_secs)?
        } else {
            let t = time
                .or_else(|| engine.newest_t())
                .unwrap_or_else(unix_now_s);
            let res = match step {
                Some(_) => netqos_telemetry::resolution_for_step(step_secs),
                None => netqos_telemetry::Resolution::Raw1s,
            };
            engine.instant(&expr, t, res)?
        };
        print!("{}", format_api_query(&outcome.to_api_json(), &format)?);
        return Ok(());
    }

    let (host, port) = parse_base_url(url.as_deref().unwrap_or_default())?;
    let path = if is_range {
        let (start, end) = match last {
            // Online, the client clock anchors the trailing window (the
            // server's newest sample is not knowable up front).
            Some(window) => {
                let end = unix_now_s();
                (end.saturating_sub(window.saturating_sub(1)), end)
            }
            None => {
                let spec = range.as_deref().unwrap_or(":");
                netqos_telemetry::parse_range(spec)
                    .ok_or_else(|| format!("bad --range `{spec}` (expected START:END)"))?
            }
        };
        format!(
            "/api/v1/query_range?query={}&start={start}&end={end}&step={step_secs}",
            percent_encode(&expr)
        )
    } else {
        let mut p = format!("/api/v1/query?query={}", percent_encode(&expr));
        if let Some(t) = time {
            p.push_str(&format!("&time={t}"));
        }
        if step.is_some() {
            // The instant endpoint takes a resolution, not an arbitrary
            // step: snap to the coarsest store resolution that fits.
            p.push_str(&format!(
                "&step={}",
                netqos_telemetry::resolution_for_step(step_secs).dir_name()
            ));
        }
        p
    };
    let (status, body) = netqos_telemetry::http_get(&host, port, &path)
        .map_err(|e| format!("{host}:{port}: {e}"))?;
    if status != 200 {
        return Err(format!("query failed (HTTP {status}): {}", body.trim()));
    }
    print!("{}", format_api_query(&body, &format)?);
    Ok(())
}

fn cmd_lts(args: &[String]) -> Result<(), String> {
    let sub = args
        .first()
        .ok_or_else(|| format!("missing lts subcommand\n{USAGE}"))?;
    let dir = args
        .get(1)
        .map(PathBuf::from)
        .ok_or_else(|| format!("missing DIR argument\n{USAGE}"))?;
    match sub.as_str() {
        "info" => {
            let mut show_segments = false;
            for arg in &args[2..] {
                match arg.as_str() {
                    "--segments" => show_segments = true,
                    other => return Err(format!("unknown option `{other}`\n{USAGE}")),
                }
            }
            let reader = netqos_telemetry::LtsReader::open(&dir);
            let index = reader.index();
            let report = netqos_telemetry::verify_store(&dir)
                .map_err(|e| format!("{}: {e}", dir.display()))?;
            println!(
                "{}: {} series, {} segment(s), {} point(s), {} bytes",
                dir.display(),
                index.len(),
                report.segments,
                report.points,
                report.bytes
            );
            let stats = netqos_telemetry::store_stats(&dir)
                .map_err(|e| format!("{}: {e}", dir.display()))?;
            for (res, r) in [
                netqos_telemetry::Resolution::Raw1s,
                netqos_telemetry::Resolution::Min1,
                netqos_telemetry::Resolution::Hour1,
            ]
            .iter()
            .zip(stats.resolutions.iter())
            {
                println!(
                    "  {:<3} {} bytes, {} point(s), {} sealed segment(s) ({} v1 jsonl, {} v2 binary), {} open tail(s)",
                    res.dir_name(),
                    r.bytes,
                    r.points,
                    r.segments,
                    r.v1_segments,
                    r.v2_segments,
                    r.open_tails
                );
            }
            for info in &index {
                println!("  {:<9} {}", info.kind.as_str(), info.name);
            }
            if show_segments {
                for seg in &stats.segments {
                    println!(
                        "  v{} {:<6} {:>8} point(s) {:>10} bytes  {}",
                        seg.codec_version,
                        if seg.sealed { "sealed" } else { "open" },
                        seg.points,
                        seg.bytes,
                        seg.path
                    );
                }
            }
            if !report.issues.is_empty() {
                eprintln!("{} issue(s) — run `netqos lts verify`", report.issues.len());
            }
            Ok(())
        }
        "verify" => {
            let report = netqos_telemetry::verify_store(&dir)
                .map_err(|e| format!("{}: {e}", dir.display()))?;
            for issue in &report.issues {
                eprintln!("{}: {issue}", dir.display());
            }
            if report.issues.is_empty() {
                println!(
                    "{}: OK — {} series, {} segment(s), {} point(s), {} bytes",
                    dir.display(),
                    report.series,
                    report.segments,
                    report.points,
                    report.bytes
                );
                Ok(())
            } else {
                Err(format!(
                    "{}: {} issue(s) found",
                    dir.display(),
                    report.issues.len()
                ))
            }
        }
        "migrate" => {
            let mut codec = netqos_telemetry::SegmentCodec::Binary;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--codec" => {
                        i += 1;
                        let spec = args.get(i).ok_or("--codec needs jsonl|v1 or binary|v2")?;
                        codec = netqos_telemetry::SegmentCodec::parse(spec).ok_or_else(|| {
                            format!("bad --codec `{spec}` (expected jsonl|v1 or binary|v2)")
                        })?;
                    }
                    other => return Err(format!("unknown option `{other}`\n{USAGE}")),
                }
                i += 1;
            }
            let report = netqos_telemetry::migrate_store(&dir, codec)
                .map_err(|e| format!("{}: {e}", dir.display()))?;
            println!(
                "{}: {} segment(s) converted to v{}, {} already there, {} -> {} bytes",
                dir.display(),
                report.segments_converted,
                codec.version(),
                report.segments_skipped,
                report.bytes_before,
                report.bytes_after
            );
            Ok(())
        }
        "compact" => {
            let report = netqos_telemetry::compact_store(&dir)
                .map_err(|e| format!("{}: {e}", dir.display()))?;
            println!(
                "{}: {} -> {} segment(s), {} -> {} bytes",
                dir.display(),
                report.segments_before,
                report.segments_after,
                report.bytes_before,
                report.bytes_after
            );
            Ok(())
        }
        "query" => {
            let mut selector = String::from("*");
            let mut range = String::from(":");
            let mut last = None;
            let mut step = String::from("1s");
            let mut format = String::from("json");
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--series" => {
                        i += 1;
                        selector = args.get(i).ok_or("--series needs a selector")?.clone();
                    }
                    "--range" => {
                        i += 1;
                        range = args.get(i).ok_or("--range needs START:END")?.clone();
                    }
                    "--last" => {
                        i += 1;
                        let spec = args.get(i).ok_or("--last needs a duration (e.g. 15m)")?;
                        last = Some(netqos_telemetry::parse_duration(spec).ok_or_else(|| {
                            format!("bad --last `{spec}` (expected e.g. 90s, 15m, 2h)")
                        })?);
                    }
                    "--step" => {
                        i += 1;
                        step = args.get(i).ok_or("--step needs 1s, 1m or 1h")?.clone();
                    }
                    "--format" => {
                        i += 1;
                        format = args
                            .get(i)
                            .ok_or("--format needs json, prom or csv")?
                            .clone();
                    }
                    other => return Err(format!("unknown option `{other}`\n{USAGE}")),
                }
                i += 1;
            }
            let reader = netqos_telemetry::LtsReader::open(&dir);
            let (start, end) = match last {
                Some(window) => {
                    if range != ":" {
                        return Err("--last and --range are mutually exclusive".into());
                    }
                    // Anchor the trailing window at the newest stored
                    // sample, so `--last 15m` works on historical stores
                    // as naturally as on one still being written.
                    let end = reader.newest_t().unwrap_or(0);
                    (end.saturating_sub(window.saturating_sub(1)), end)
                }
                None => netqos_telemetry::parse_range(&range)
                    .ok_or_else(|| format!("bad --range `{range}` (expected START:END)"))?,
            };
            let res = netqos_telemetry::Resolution::parse(&step)
                .ok_or_else(|| format!("bad --step `{step}` (expected 1s, 1m or 1h)"))?;
            let body = reader.query(&selector, start, end, res);
            print!("{}", format_store_query(&body, &format)?);
            Ok(())
        }
        other => Err(format!("unknown lts subcommand `{other}`\n{USAGE}")),
    }
}
