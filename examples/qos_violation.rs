//! QoS violation detection and reallocation advice: the full RM loop.
//!
//! Overloads the 10 Mb/s hub segment of the LIRTSS testbed, watches the
//! resource manager detect the `s1n1` qospath violation, diagnose the
//! bottleneck connection, and — because every path to N1 crosses the hub —
//! report that no reallocation can remedy it. Then it moves the *sink*
//! scenario to a switch-side pair where a remedy exists.
//!
//! ```text
//! cargo run --example qos_violation
//! ```

use netqos::loadgen::LoadProfile;
use netqos::rm::{ResourceManager, RmEvent};
use netqos::sim::time::SimDuration;
use netqos_bench::testbed::{build_testbed, Load, TestbedOptions};

fn main() {
    // Saturating load into the hub: ~9.9 Mb/s on a 10 Mb/s medium.
    let loads = vec![Load::new("L", "N1", LoadProfile::pulse(2, 25, 1_200_000))];
    let mut tb = build_testbed(&loads, &TestbedOptions::default());

    // The LIRTSS spec declares the applications and binds `tracker` to
    // the s1n1 qospath — the RM assembles itself from the specification.
    let mut rm = ResourceManager::from_spec_model(&tb.monitor, tb.net.model()).unwrap();
    assert_eq!(rm.allocation().len(), 3); // tracker, display, archiver

    println!("requirement: path s1n1 (S1 <-> N1) needs 100 KB/s available");
    println!("injected:    1.2 MB/s of L->N1 traffic through the 10 Mb/s hub\n");

    for _ in 0..30 {
        let next = tb.net.lan.now() + SimDuration::from_secs(1);
        tb.net.run_until(next);
        tb.net.poll_round(&mut tb.monitor).unwrap();
        for event in rm.evaluate(&tb.monitor) {
            let t = tb.net.lan.now().as_secs_f64();
            match event {
                RmEvent::ViolationDetected {
                    path_name,
                    kind,
                    bottleneck_desc,
                    ..
                } => {
                    println!("[t={t:>4.0}s] VIOLATION on `{path_name}`: {kind:?}");
                    println!("          diagnosed bottleneck: {bottleneck_desc}");
                }
                RmEvent::Advice(a) => {
                    println!(
                        "[t={t:>4.0}s] ADVICE: move `{}` to a host avoiding the bottleneck \
                         (expected {} KB/s available)",
                        a.app,
                        a.expected_available_bps / 8000
                    );
                }
                RmEvent::NoRemedy { path_name } => {
                    println!(
                        "[t={t:>4.0}s] NO REMEDY for `{path_name}`: no candidate host \
                         avoids the congested segment"
                    );
                }
                RmEvent::Recovered { path_name } => {
                    println!("[t={t:>4.0}s] RECOVERED: `{path_name}` is back within its QoS");
                }
            }
        }
    }

    println!("\nRM event history: {} entries", rm.history().len());
}
