//! Tour of the paper's LIRTSS testbed (Figure 3): load the checked-in
//! specification, print the topology and the monitored communication
//! paths, run a short monitored load, and measure path latency.
//!
//! ```text
//! cargo run --example lirtss_testbed
//! ```

use netqos::loadgen::LoadProfile;
use netqos::sim::time::SimDuration;
use netqos_bench::testbed::{build_testbed, Load, TestbedOptions, LIRTSS_SPEC};

fn main() {
    let model = netqos::spec::parse_and_validate(LIRTSS_SPEC).expect("spec parses");

    println!("== Nodes ==");
    for (_, node) in model.topology.nodes() {
        let agent = if node.snmp_capable { " [SNMP]" } else { "" };
        println!(
            "  {:<8} {:<7} {} interface(s){agent}",
            node.name,
            node.kind.to_string(),
            node.interfaces.len()
        );
    }

    println!("\n== Connections ==");
    for (id, _) in model.topology.connections() {
        println!("  {}", model.topology.describe_connection(id));
    }

    println!("\n== Monitored communication paths (recursive traversal) ==");
    let tb0 = build_testbed(&[], &TestbedOptions::default());
    for q in &tb0.net.model().qos_paths {
        let p = tb0.monitor.path(q.from, q.to).expect("path exists");
        println!("  {:<6} {}", q.name, p.describe(tb0.monitor.topology()));
    }

    // A short monitored run: 300 KB/s from L to N1 for 6 seconds.
    println!("\n== 10-second monitored run (300 KB/s L->N1 during t=2..8) ==");
    let loads = vec![Load::new("L", "N1", LoadProfile::pulse(2, 8, 300_000))];
    let mut tb = build_testbed(&loads, &TestbedOptions::default());
    let s1 = tb.monitor.topology().node_by_name("S1").unwrap();
    let n1 = tb.monitor.topology().node_by_name("N1").unwrap();
    println!("  t(s)  S1<->N1 used (KB/s)   available (KB/s)");
    for _ in 0..10 {
        let next = tb.net.lan.now() + SimDuration::from_secs(1);
        tb.net.run_until(next);
        tb.net.poll_round(&mut tb.monitor).unwrap();
        if let Ok(bw) = tb.monitor.path_bandwidth(s1, n1) {
            println!(
                "  {:>4.0}  {:>19.1}  {:>16.1}",
                tb.net.lan.now().as_secs_f64(),
                bw.used_bps as f64 / 8000.0,
                bw.available_bps as f64 / 8000.0
            );
        }
    }

    // Latency extension: probe RTTs from the monitor host.
    println!("\n== Path RTTs from L (echo probes) ==");
    for name in ["S1", "N1"] {
        let node = tb.monitor.topology().node_by_name(name).unwrap();
        let stats = tb
            .net
            .measure_rtt(node, 5, 64, SimDuration::from_millis(100))
            .expect("probe succeeds");
        println!(
            "  L -> {:<3} mean {:.3} ms (min {:.3}, max {:.3}, lost {})",
            name,
            stats.mean_ms(),
            stats.min.as_secs_f64() * 1e3,
            stats.max.as_secs_f64() * 1e3,
            stats.lost
        );
    }
}
