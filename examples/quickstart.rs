//! Quickstart: specify a tiny network, run traffic through the simulator,
//! poll it over SNMP, and read the path bandwidth — the whole pipeline in
//! ~60 lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use netqos::loadgen::{LoadProfile, ProfiledSource};
use netqos::monitor::simnet::{SimNetwork, SimNetworkOptions};
use netqos::monitor::NetworkMonitor;
use netqos::sim::time::SimDuration;

fn main() {
    // 1. Describe the system in the DeSiDeRaTa specification language.
    let spec = r#"
        host alpha { address 10.0.0.1; snmp community "public";
                     interface eth0 { speed 100Mbps; } }
        host beta  { address 10.0.0.2; snmp community "public";
                     interface eth0 { speed 100Mbps; } }
        device sw switch { speed 100Mbps; interface p1; interface p2; }
        connection alpha.eth0 <-> sw.p1;
        connection sw.p2 <-> beta.eth0;
    "#;
    let model = netqos::spec::parse_and_validate(spec).expect("valid spec");
    let topology = model.topology.clone();

    // 2. Materialize it in the simulator, with a 2 MB/s load from alpha
    //    to beta's DISCARD port (the paper's load-generator setup).
    let options = SimNetworkOptions {
        monitor_host: "alpha".into(),
        ..SimNetworkOptions::default()
    };
    let mut net = SimNetwork::from_model_with(model, options, |builder, map, m| {
        let alpha = m.topology.node_by_name("alpha").unwrap();
        let beta = m.topology.node_by_name("beta").unwrap();
        let beta_ip = m.addresses[&beta].parse().unwrap();
        builder
            .install_app(
                map[&alpha],
                Box::new(ProfiledSource::new(
                    beta_ip,
                    LoadProfile::constant(2_000_000),
                )),
                None,
            )
            .unwrap();
    })
    .expect("network builds");

    // 3. Poll every second and print what the monitor sees.
    let mut monitor = NetworkMonitor::new(topology);
    let alpha = monitor.topology().node_by_name("alpha").unwrap();
    let beta = monitor.topology().node_by_name("beta").unwrap();

    println!("t(s)  used(KB/s)  available(KB/s)  bottleneck");
    for _ in 0..10 {
        let next = net.lan.now() + SimDuration::from_secs(1);
        net.run_until(next);
        net.poll_round(&mut monitor).expect("poll succeeds");
        if let Ok(bw) = monitor.path_bandwidth(alpha, beta) {
            println!(
                "{:>4.0}  {:>10.1}  {:>15.1}  {}",
                net.lan.now().as_secs_f64(),
                bw.used_bps as f64 / 8000.0,
                bw.available_bps as f64 / 8000.0,
                monitor.topology().describe_connection(bw.bottleneck),
            );
        }
    }
}
