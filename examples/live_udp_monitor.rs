//! Distributed monitoring over **real UDP sockets** — no simulator.
//!
//! Spawns two SNMP agents on localhost whose interface counters advance
//! with a real UDP load generator's traffic, then runs the distributed
//! poller (one thread per agent) and prints live measured rates. This is
//! the deployment shape of the paper's future-work item "distributed
//! network monitoring".
//!
//! ```text
//! cargo run --example live_udp_monitor
//! ```

use netqos::loadgen::udp::UdpLoadGenerator;
use netqos::loadgen::LoadProfile;
use netqos::monitor::threaded::{AgentTarget, DistributedPoller};
use netqos::monitor::NetworkMonitor;
use netqos::snmp::mib::ScalarMib;
use netqos::snmp::mib2::{self, IfEntry, SystemInfo};
use netqos::snmp::transport::UdpAgentServer;
use netqos::topology::{IfIx, NetworkTopology, NodeKind};
use std::net::UdpSocket;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    // A real UDP sink; every byte it receives is mirrored into agent A's
    // ifInOctets, so the SNMP view tracks genuine socket traffic.
    let sink = UdpSocket::bind("127.0.0.1:0").expect("bind sink");
    sink.set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let sink_addr = sink.local_addr().unwrap();
    let received = Arc::new(AtomicU64::new(0));

    let start = Instant::now();
    let make_mib = {
        let received = received.clone();
        move |name: &'static str| {
            let received = received.clone();
            move || {
                let mut mib = ScalarMib::new();
                let ticks = (start.elapsed().as_millis() / 10) as u32;
                mib2::system::install(&mut mib, &SystemInfo::new(name), ticks);
                let mut e = IfEntry::ethernet(1, "eth0", 100_000_000, [2, 0, 0, 0, 0, 1]);
                e.in_octets = (received.load(Ordering::Relaxed) % (1 << 32)) as u32;
                mib2::interfaces::install(&mut mib, &[e]);
                mib
            }
        }
    };

    let agent_a =
        UdpAgentServer::spawn("127.0.0.1:0", "public", make_mib("host-a")).expect("agent A");
    let agent_b =
        UdpAgentServer::spawn("127.0.0.1:0", "public", make_mib("host-b")).expect("agent B");
    println!(
        "agent A on {}, agent B on {}",
        agent_a.local_addr(),
        agent_b.local_addr()
    );

    // Topology: A <-> B over one 100 Mb/s connection.
    let mut topo = NetworkTopology::new();
    let a = topo.add_node("A", NodeKind::Host).unwrap();
    topo.add_interface(a, "eth0", 100_000_000).unwrap();
    topo.set_snmp(a, "public").unwrap();
    let b = topo.add_node("B", NodeKind::Host).unwrap();
    topo.add_interface(b, "eth0", 100_000_000).unwrap();
    topo.set_snmp(b, "public").unwrap();
    topo.connect((a, IfIx(0)), (b, IfIx(0))).unwrap();

    // Drain the sink into the shared counter on a helper thread.
    let drain = {
        let received = received.clone();
        std::thread::spawn(move || {
            let mut buf = vec![0u8; 65536];
            let until = Instant::now() + Duration::from_secs(5);
            while Instant::now() < until {
                if let Ok(n) = sink.recv(&mut buf) {
                    // Count IP-level bytes like a NIC would (+28 headers).
                    received.fetch_add(n as u64 + 28, Ordering::Relaxed);
                }
            }
        })
    };

    // 500 KB/s of real UDP load for 4 seconds.
    let generator =
        UdpLoadGenerator::new(sink_addr, LoadProfile::pulse(0, 4, 500_000)).expect("generator");
    let load = std::thread::spawn(move || generator.run_blocking(Duration::from_secs(5)));

    // Poll both agents every 500 ms and print the measured rate.
    let poller = DistributedPoller::spawn(
        vec![
            AgentTarget {
                node: a,
                addr: agent_a.local_addr(),
                community: "public".into(),
                if_count: 1,
            },
            AgentTarget {
                node: b,
                addr: agent_b.local_addr(),
                community: "public".into(),
                if_count: 1,
            },
        ],
        Duration::from_millis(500),
    );
    let mut monitor = NetworkMonitor::new(topo);

    println!("\nt(s)   A.eth0 in (KB/s)   path A<->B used (KB/s)");
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(500));
        poller.drain_into(&mut monitor);
        let in_kbps = monitor
            .if_rates(a, IfIx(0))
            .map(|r| r.in_bps as f64 / 8000.0)
            .unwrap_or(0.0);
        let path_kbps = monitor
            .path_bandwidth(a, b)
            .map(|bw| bw.used_bps as f64 / 8000.0)
            .unwrap_or(0.0);
        println!(
            "{:>4.1}   {:>16.1}   {:>22.1}",
            t0.elapsed().as_secs_f64(),
            in_kbps,
            path_kbps
        );
    }

    let report = load.join().unwrap().expect("generator finished");
    println!(
        "\ngenerator sent {} KB in {} datagrams; poller: {:?}",
        report.bytes_sent / 1000,
        report.datagrams,
        poller.stats()
    );
    poller.stop();
    drain.join().unwrap();
    agent_a.stop();
    agent_b.stop();
}
