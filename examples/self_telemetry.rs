//! The monitor monitoring itself: run the service for a few ticks, then
//! walk its own telemetry back out through the self-monitoring SNMP
//! sub-agent — the same GetNext machinery the monitor uses on everyone
//! else, pointed at the monitor.
//!
//! ```bash
//! cargo run --example self_telemetry
//! ```

use netqos::monitor::selfagent::{telemetry_base, SelfAgent};
use netqos::monitor::service::{MonitoringService, ServiceConfig};
use netqos::monitor::simnet::SimNetworkOptions;
use netqos::snmp::message::{MessageBody, SnmpMessage, SnmpVersion};
use netqos::snmp::oid::Oid;
use netqos::snmp::pdu::{ErrorStatus, Pdu, PduType, VarBind};
use netqos::snmp::value::SnmpValue;

const SPEC: &str = include_str!("../specs/lirtss.spec");

fn get_next(agent: &mut SelfAgent, oid: Oid) -> Option<(Oid, SnmpValue)> {
    let request = SnmpMessage {
        version: SnmpVersion::V1,
        community: b"public".to_vec(),
        body: MessageBody::Pdu(Pdu {
            pdu_type: PduType::GetNextRequest,
            request_id: 1,
            error_status: ErrorStatus::NoError,
            error_index: 0,
            bindings: vec![VarBind {
                oid,
                value: SnmpValue::Null,
            }],
        }),
    }
    .encode()
    .unwrap();
    let response = agent.handle(&request)?;
    match SnmpMessage::decode(&response).unwrap().body {
        MessageBody::Pdu(pdu) if pdu.error_status == ErrorStatus::NoError => {
            pdu.bindings.into_iter().next().map(|vb| (vb.oid, vb.value))
        }
        _ => None,
    }
}

fn main() {
    let options = SimNetworkOptions {
        monitor_host: "L".to_owned(),
        ..SimNetworkOptions::default()
    };
    let mut service =
        MonitoringService::from_spec(SPEC, options, ServiceConfig::default()).expect("spec valid");
    for _ in 0..5 {
        service.tick().expect("tick");
    }

    // An snmpwalk of the monitor's private-enterprise telemetry subtree.
    let mut agent = SelfAgent::new(service.registry().clone(), "public");
    let base = telemetry_base();
    println!("walking {base} (the monitor's own telemetry):");
    let mut cur = base.clone();
    let mut instances = 0;
    while let Some((oid, value)) = get_next(&mut agent, cur.clone()) {
        if !oid.starts_with(&base) {
            break;
        }
        match &value {
            SnmpValue::OctetString(b) => {
                println!("  {oid} = \"{}\"", String::from_utf8_lossy(b))
            }
            other => println!("  {oid} = {other:?}"),
        }
        cur = oid;
        instances += 1;
    }
    println!("{instances} instances served by the self-agent");
}
