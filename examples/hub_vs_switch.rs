//! Side-by-side demonstration of the paper's two bandwidth-accounting
//! rules. Two independent flows from hosts on a switch run to two sinks
//! that sit behind either a **hub** or a **second switch**:
//!
//! ```text
//!   A ──┐                        ┌── Y   (flow 1: A -> Y, 200 KB/s)
//!        sw1 ══ trunk ══ CORE ───┤
//!   B ──┘    (100 Mb/s)  (10Mb/s)└── Z   (flow 2: B -> Z, 200 KB/s)
//! ```
//!
//! Watching the path **A<->Y**:
//!
//! * when CORE is a **hub**, flow 2 is repeated onto Y's shared segment,
//!   so the hub-sum rule reports *both* flows (~400 KB/s);
//! * when CORE is a **switch**, unicast isolation keeps flow 2 off Y's
//!   connection and the monitor reports only flow 1 (~200 KB/s).
//!
//! ```text
//! cargo run --example hub_vs_switch
//! ```

use netqos::loadgen::{LoadProfile, ProfiledSource};
use netqos::monitor::simnet::{SimNetwork, SimNetworkOptions};
use netqos::monitor::NetworkMonitor;
use netqos::sim::time::SimDuration;

const RATE: u64 = 200_000; // 200 KB/s per flow

fn spec(core: &str) -> String {
    format!(
        r#"
        host A {{ address 10.0.0.1; snmp community "public"; interface eth0 {{ speed 100Mbps; }} }}
        host B {{ address 10.0.0.2; snmp community "public"; interface eth0 {{ speed 100Mbps; }} }}
        host Y {{ address 10.0.0.3; snmp community "public"; interface eth0 {{ speed 10Mbps; }} }}
        host Z {{ address 10.0.0.4; snmp community "public"; interface eth0 {{ speed 10Mbps; }} }}
        device sw1 switch {{ address 10.0.0.100; snmp community "public"; speed 100Mbps;
                             interface p1; interface p2; interface p3; }}
        device core {core} {{ speed 10Mbps; interface p1 {{ speed 100Mbps; }}
                              interface p2; interface p3; }}
        connection A.eth0 <-> sw1.p1;
        connection B.eth0 <-> sw1.p2;
        connection sw1.p3 <-> core.p1;
        connection Y.eth0 <-> core.p2;
        connection Z.eth0 <-> core.p3;
        "#
    )
}

/// Runs A->Y and B->Z for 8 s; returns the measured used bandwidth (KB/s)
/// of the path A<->Y.
fn measure(core: &str) -> f64 {
    let model = netqos::spec::parse_and_validate(&spec(core)).expect("valid spec");
    let topology = model.topology.clone();
    let options = SimNetworkOptions {
        monitor_host: "A".into(),
        ..SimNetworkOptions::default()
    };
    let mut net = SimNetwork::from_model_with(model, options, |builder, map, m| {
        for (src, dst) in [("A", "Y"), ("B", "Z")] {
            let s = m.topology.node_by_name(src).unwrap();
            let d = m.topology.node_by_name(dst).unwrap();
            let ip = m.addresses[&d].parse().unwrap();
            builder
                .install_app(
                    map[&s],
                    Box::new(ProfiledSource::new(ip, LoadProfile::constant(RATE))),
                    None,
                )
                .unwrap();
        }
    })
    .expect("network builds");

    let mut monitor = NetworkMonitor::new(topology);
    let a = monitor.topology().node_by_name("A").unwrap();
    let y = monitor.topology().node_by_name("Y").unwrap();
    let mut last = 0.0;
    for _ in 0..8 {
        let next = net.lan.now() + SimDuration::from_secs(1);
        net.run_until(next);
        net.poll_round(&mut monitor).unwrap();
        if let Ok(bw) = monitor.path_bandwidth(a, y) {
            last = bw.used_bps as f64 / 8000.0;
        }
    }
    last
}

fn main() {
    println!("flow 1: A -> Y at 200 KB/s      flow 2: B -> Z at 200 KB/s\n");
    let hub = measure("hub");
    let switch = measure("switch");
    println!("A<->Y used bandwidth, sinks behind a hub:    {hub:>7.1} KB/s  (hub-sum: both flows)");
    println!(
        "A<->Y used bandwidth, sinks behind a switch: {switch:>7.1} KB/s  (isolated: flow 1 only)"
    );
    println!();
    println!(
        "ratio hub/switch = {:.2} — the split the paper's §3.3 algorithms encode",
        hub / switch
    );
}
