//! The one-struct deployment: [`MonitoringService`] assembles the whole
//! monitoring program — simulated network, SNMP polling, path bandwidth,
//! QoS evaluation, trap emission, and time-series recording — from a
//! specification file, and runs it tick by tick.
//!
//! This example drives the two-switch scenario through a trunk-congestion
//! episode and prints the service's view: per-tick QoS events, the traps
//! it would send to a management station, and the final CSV series.
//!
//! ```text
//! cargo run --example monitoring_service
//! ```

use netqos::loadgen::{LoadProfile, ProfiledSource};
use netqos::monitor::qos::{self, QosEvent};
use netqos::monitor::service::{MonitoringService, ServiceConfig};
use netqos::monitor::simnet::SimNetworkOptions;
use netqos::sim::time::SimDuration;

const SPEC: &str = include_str!("../specs/two-switch.spec");

fn main() {
    let options = SimNetworkOptions {
        monitor_host: "console".into(),
        noise_mean: Some(SimDuration::from_millis(2000)),
        ..SimNetworkOptions::default()
    };
    let config = ServiceConfig {
        trap_destination: Some("192.168.10.21".parse().unwrap()), // archive as NMS
        ..ServiceConfig::default()
    };
    let model = netqos::spec::parse_and_validate(SPEC).expect("spec parses");
    // Sustained trunk congestion: sensor2 streams 11 MB/s to display
    // during t = 3..8 s, pushing the 100 Mb/s trunk near saturation.
    let mut service =
        MonitoringService::from_model_with(model, options, config, |builder, map, m| {
            let sensor2 = m.topology.node_by_name("sensor2").unwrap();
            let display = m.topology.node_by_name("display").unwrap();
            let ip = m.addresses[&display].parse().unwrap();
            builder
                .install_app(
                    map[&sensor2],
                    Box::new(ProfiledSource::new(
                        ip,
                        LoadProfile::pulse(3, 8, 11_000_000),
                    )),
                    None,
                )
                .unwrap();
        })
        .expect("service builds");

    println!("tick  events");
    for tick in 0..10 {
        let events = service.tick().expect("tick");
        for e in &events {
            match e {
                QosEvent::Violated { path_name, .. } => {
                    println!("{tick:>4}  VIOLATED  {path_name}")
                }
                QosEvent::Cleared { path_name } => {
                    println!("{tick:>4}  cleared   {path_name}")
                }
            }
        }
        if events.is_empty() {
            println!("{tick:>4}  -");
        }
    }

    println!("\ntraps emitted: {}", service.traps().len());
    for bytes in service.traps() {
        let (specific, name) = qos::decode_trap(bytes).unwrap();
        let kind = if specific == qos::TRAP_QOS_VIOLATED {
            "violated"
        } else {
            "cleared"
        };
        println!("  trap: {name} {kind} ({} bytes on the wire)", bytes.len());
    }

    println!("\nrecorded series (CSV):");
    print!("{}", service.recorder().to_csv());
}
